//! The mirror-fleet supervisor: crash plans, restarts, rollovers.
//!
//! A fleet is N mirrors serving the same benchmark layouts behind N
//! **stable slot addresses**. Each slot is a tiny byte-level proxy: a
//! listener that never moves, forwarding to whichever backend
//! incarnation of that mirror is currently alive. The indirection is
//! what makes *restart* honest on a real TCP stack: a killed listener's
//! port lingers in `TIME_WAIT`, so rebinding the same port immediately
//! is not portably possible with std sockets — instead the backend
//! reincarnates on a fresh ephemeral port and the slot repoints.
//! Clients keep one stable mirror list for the whole session; while a
//! mirror is down its slot accepts and immediately closes, which a
//! client experiences as an ordinary stream fault and fails over from.
//!
//! The supervisor's loop does three jobs, all seeded and deterministic
//! in schedule (wall-clock interleaving with clients is real
//! concurrency, which is the point):
//!
//! * **Crash plan**: each mirror draws its kill times from its own
//!   `SplitMix64` stream (`seed ^ mirror · φ`, the workspace's
//!   per-lane splitting convention) — a hard [`WireServer::kill`] at
//!   the drawn moment, no farewell frames, every socket torn down.
//! * **Restart**: after `restart_delay`, the mirror reincarnates from
//!   a freshly rebuilt [`ServePlan`] (the factory re-derives it, as a
//!   restarted origin would), and clients resume against it from their
//!   journal watermarks via ordinary negotiation.
//! * **Rollover**: on [`FleetSupervisor::rollover`] the fleet
//!   generation bumps and every mirror is *gracefully drained* —
//!   in-flight connections get an `Evict` fence at a unit boundary —
//!   then restarted serving the new generation's plans. Clients that
//!   pinned the old generation see the new one outrank their pin,
//!   discard the old bytes, and refetch under the new epoch.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::plan::ServePlan;
use crate::server::{ServerConfig, ServerStats, WireServer};
use crate::SplitMix64;

/// A seeded per-mirror kill schedule.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    /// Seed for the kill-time draws; each mirror splits its own stream
    /// from this.
    pub seed: u64,
    /// Hard kills each mirror suffers over the run.
    pub kills_per_mirror: u32,
    /// Minimum uptime before a scheduled kill fires.
    pub min_uptime: Duration,
    /// Uniform extra uptime drawn on top of the minimum.
    pub uptime_spread: Duration,
}

/// Tuning for a [`FleetSupervisor`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Mirrors in the fleet.
    pub mirrors: usize,
    /// Per-backend server tuning (shared by every incarnation).
    pub server: ServerConfig,
    /// Optional seeded kill/restart schedule.
    pub crash: Option<CrashPlan>,
    /// Downtime between a kill and the reincarnation.
    pub restart_delay: Duration,
    /// Interval between supervisor health probes (TCP connect) of each
    /// live backend.
    pub health_interval: Duration,
    /// Drain deadline enforced on every graceful shutdown (rollover
    /// fences and final shutdown); connections past it are
    /// force-closed and the drain reported unclean.
    pub drain_deadline: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            mirrors: 3,
            server: ServerConfig::default(),
            crash: None,
            restart_delay: Duration::from_millis(50),
            health_interval: Duration::from_millis(250),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// One mirror's lifetime accounting, across every incarnation.
#[derive(Debug, Clone, Default)]
pub struct MirrorStatus {
    /// Backend incarnations started (1 for a mirror that never died).
    pub starts: u32,
    /// Hard kills delivered by the crash plan.
    pub kills: u32,
    /// Supervisor health probes made.
    pub health_probes: u64,
    /// Probes that failed to connect.
    pub health_failures: u64,
    /// Server stats accumulated across every incarnation.
    pub stats: ServerStats,
}

/// What the fleet did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-mirror accounting, in slot order.
    pub mirrors: Vec<MirrorStatus>,
    /// Live epoch rollovers driven.
    pub rollovers: u32,
    /// Graceful drains (rollover fences and shutdown) that finished
    /// inside the deadline.
    pub clean_drains: u32,
    /// Drains that had to force-close connections at the deadline.
    pub forced_drains: u32,
}

impl FleetReport {
    /// Total hard kills across the fleet.
    #[must_use]
    pub fn total_kills(&self) -> u32 {
        self.mirrors.iter().map(|m| m.kills).sum()
    }

    /// Total backend incarnations across the fleet.
    #[must_use]
    pub fn total_starts(&self) -> u32 {
        self.mirrors.iter().map(|m| m.starts).sum()
    }
}

/// Builds the plans one generation of the fleet serves. Called again on
/// every restart and rollover — a reincarnated origin rebuilds its
/// `ServePlan` rather than trusting leftover state. The supervisor
/// stamps the generation onto every returned plan.
pub type PlanFactory = Arc<dyn Fn(u32) -> Vec<ServePlan> + Send + Sync>;

type SharedAddr = Arc<Mutex<Option<SocketAddr>>>;

fn set_backend_addr(shared: &SharedAddr, addr: Option<SocketAddr>) {
    *shared.lock().unwrap_or_else(PoisonError::into_inner) = addr;
}

fn get_backend_addr(shared: &SharedAddr) -> Option<SocketAddr> {
    *shared.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One mirror slot, owned by the control thread.
struct Slot {
    backend_addr: SharedAddr,
    backend: Option<WireServer>,
    rng: SplitMix64,
    kills_left: u32,
    next_kill: Option<Instant>,
    restart_at: Option<Instant>,
    last_probe: Instant,
    status: MirrorStatus,
}

/// The supervisor: spawn with [`FleetSupervisor::launch`], point
/// clients at [`FleetSupervisor::addrs`], drive rollovers, shut down
/// for the report.
pub struct FleetSupervisor {
    addrs: Vec<SocketAddr>,
    rollover_flag: Arc<AtomicBool>,
    shutdown_flag: Arc<AtomicBool>,
    generation: Arc<AtomicU32>,
    control: Option<JoinHandle<FleetReport>>,
}

impl FleetSupervisor {
    /// Binds every slot listener, starts every mirror's first backend
    /// incarnation at generation 0, and spawns the control loop. When
    /// this returns, every slot address accepts and serves.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures for the slot listeners; a
    /// backend that fails its first bind is retried by the control
    /// loop like any other restart.
    pub fn launch(config: FleetConfig, factory: PlanFactory) -> std::io::Result<FleetSupervisor> {
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let rollover_flag = Arc::new(AtomicBool::new(false));
        let generation = Arc::new(AtomicU32::new(0));
        let mut addrs = Vec::with_capacity(config.mirrors);
        let mut slots = Vec::with_capacity(config.mirrors);
        let mut listeners = Vec::with_capacity(config.mirrors);
        for mirror in 0..config.mirrors {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            listener.set_nonblocking(true)?;
            addrs.push(listener.local_addr()?);
            let backend_addr: SharedAddr = Arc::new(Mutex::new(None));
            listeners.push((listener, Arc::clone(&backend_addr)));
            let seed = config.crash.as_ref().map_or(0, |c| {
                c.seed ^ (mirror as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            });
            let mut slot = Slot {
                backend_addr,
                backend: None,
                rng: SplitMix64(seed),
                kills_left: config.crash.as_ref().map_or(0, |c| c.kills_per_mirror),
                next_kill: None,
                restart_at: None,
                last_probe: Instant::now(),
                status: MirrorStatus::default(),
            };
            start_backend(&mut slot, 0, &factory, &config);
            slots.push(slot);
        }
        let control = {
            let shutdown = Arc::clone(&shutdown_flag);
            let rollover = Arc::clone(&rollover_flag);
            let generation = Arc::clone(&generation);
            std::thread::spawn(move || {
                let slot_stop = Arc::new(AtomicBool::new(false));
                let slot_threads: Vec<JoinHandle<()>> = listeners
                    .into_iter()
                    .map(|(listener, backend_addr)| {
                        let stop = Arc::clone(&slot_stop);
                        std::thread::spawn(move || {
                            slot_accept_loop(&listener, &backend_addr, &stop)
                        })
                    })
                    .collect();
                let report =
                    control_loop(slots, &factory, &config, &shutdown, &rollover, &generation);
                slot_stop.store(true, Ordering::SeqCst);
                for t in slot_threads {
                    let _ = t.join();
                }
                report
            })
        };
        Ok(FleetSupervisor {
            addrs,
            rollover_flag,
            shutdown_flag,
            generation,
            control: Some(control),
        })
    }

    /// The stable slot addresses clients should use as their mirror
    /// list, in slot order.
    #[must_use]
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The fleet's current restructure generation.
    #[must_use]
    pub fn generation(&self) -> u32 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Drives a live epoch rollover: bumps the generation, drains every
    /// mirror behind an `Evict` fence, and restarts them serving the
    /// new generation's plans. Blocks until the control loop has
    /// performed the fence — otherwise a caller could shut the fleet
    /// down underneath a still-pending rollover and observe a report
    /// with `rollovers == 0`. Returns early if the fleet shuts down.
    pub fn rollover(&self) {
        let before = self.generation.load(Ordering::SeqCst);
        self.rollover_flag.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.generation.load(Ordering::SeqCst) == before
            && !self.shutdown_flag.load(Ordering::SeqCst)
            && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Shuts the fleet down: drains every live backend against the
    /// configured deadline, stops the slots, and returns the
    /// accumulated report.
    #[must_use]
    pub fn shutdown(mut self) -> FleetReport {
        self.shutdown_flag.store(true, Ordering::SeqCst);
        self.control
            .take()
            .and_then(|t| t.join().ok())
            .unwrap_or_default()
    }
}

impl Drop for FleetSupervisor {
    fn drop(&mut self) {
        self.shutdown_flag.store(true, Ordering::SeqCst);
        if let Some(t) = self.control.take() {
            let _ = t.join();
        }
    }
}

fn start_backend(slot: &mut Slot, generation: u32, factory: &PlanFactory, config: &FleetConfig) {
    let mut plans = factory(generation);
    for plan in &mut plans {
        plan.generation = generation;
    }
    match WireServer::bind("127.0.0.1:0", plans, config.server.clone()) {
        Ok(server) => {
            set_backend_addr(&slot.backend_addr, Some(server.local_addr()));
            slot.backend = Some(server);
            slot.restart_at = None;
            slot.status.starts += 1;
            slot.next_kill = if slot.kills_left > 0 {
                let crash = config.crash.as_ref().expect("kills imply a crash plan");
                let spread_ms = u64::try_from(crash.uptime_spread.as_millis()).unwrap_or(u64::MAX);
                let extra = Duration::from_millis(slot.rng.below(spread_ms.max(1)));
                Some(Instant::now() + crash.min_uptime + extra)
            } else {
                None
            };
        }
        Err(_) => {
            // Ephemeral-port bind failures are transient; retry on the
            // normal restart cadence.
            slot.restart_at = Some(Instant::now() + config.restart_delay);
        }
    }
}

/// Takes a slot's backend down (hard or graceful), folding its stats
/// into the slot's accounting. Returns the server for the caller to
/// kill or drain.
fn take_backend(slot: &mut Slot) -> Option<WireServer> {
    let server = slot.backend.take()?;
    set_backend_addr(&slot.backend_addr, None);
    accumulate(&mut slot.status.stats, server.stats());
    slot.next_kill = None;
    Some(server)
}

fn accumulate(into: &mut ServerStats, s: ServerStats) {
    into.accepted += s.accepted;
    into.admitted += s.admitted;
    into.retried += s.retried;
    into.resumed += s.resumed;
    into.evicted_slow += s.evicted_slow;
    into.evicted_drain += s.evicted_drain;
    into.incompatible += s.incompatible;
    into.completed += s.completed;
    into.units_sent += s.units_sent;
    into.bytes_sent += s.bytes_sent;
}

fn control_loop(
    mut slots: Vec<Slot>,
    factory: &PlanFactory,
    config: &FleetConfig,
    shutdown: &AtomicBool,
    rollover: &AtomicBool,
    generation: &AtomicU32,
) -> FleetReport {
    let mut report = FleetReport::default();
    while !shutdown.load(Ordering::SeqCst) {
        if rollover.swap(false, Ordering::SeqCst) {
            // The epoch fence: drain (Evict at unit boundaries), then
            // reincarnate under the next generation. Mirrors fence one
            // after another; clients that race the fence see a stale
            // generation from not-yet-rolled mirrors and simply back
            // off until the fence reaches them.
            let next_gen = generation.load(Ordering::SeqCst) + 1;
            report.rollovers += 1;
            for slot in &mut slots {
                if let Some(server) = take_backend(slot) {
                    let drained = server.drain(config.drain_deadline);
                    if drained.clean {
                        report.clean_drains += 1;
                    } else {
                        report.forced_drains += 1;
                    }
                }
                start_backend(slot, next_gen, factory, config);
            }
            generation.store(next_gen, Ordering::SeqCst);
            continue;
        }
        let now = Instant::now();
        let current_gen = generation.load(Ordering::SeqCst);
        for slot in &mut slots {
            if slot.backend.is_some() && slot.next_kill.is_some_and(|t| now >= t) {
                // The crash plan fires: no fence, no farewell — the
                // mirror is simply gone mid-stream.
                if let Some(server) = take_backend(slot) {
                    server.kill();
                    drop(server);
                }
                slot.status.kills += 1;
                slot.kills_left -= 1;
                slot.restart_at = Some(now + config.restart_delay);
                continue;
            }
            match &slot.backend {
                None => {
                    if slot.restart_at.is_none_or(|t| now >= t) {
                        start_backend(slot, current_gen, factory, config);
                    }
                }
                Some(server) => {
                    if now.duration_since(slot.last_probe) >= config.health_interval {
                        slot.last_probe = now;
                        slot.status.health_probes += 1;
                        let probe = TcpStream::connect_timeout(
                            &server.local_addr(),
                            Duration::from_millis(250),
                        );
                        match probe {
                            Ok(stream) => {
                                let _ = stream.shutdown(std::net::Shutdown::Both);
                            }
                            Err(_) => slot.status.health_failures += 1,
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Final shutdown: drain everything still alive against the
    // deadline, so in-flight sessions end on a resumable fence.
    for slot in &mut slots {
        if let Some(server) = take_backend(slot) {
            let drained = server.drain(config.drain_deadline);
            if drained.clean {
                report.clean_drains += 1;
            } else {
                report.forced_drains += 1;
            }
        }
    }
    report.mirrors = slots.into_iter().map(|s| s.status).collect();
    report
}

/// The slot proxy's accept loop: forward to the live backend, or
/// accept-and-close while the mirror is down (the client sees a stream
/// fault and fails over — exactly what a crashed process looks like
/// from outside).
fn slot_accept_loop(listener: &TcpListener, backend_addr: &SharedAddr, stop: &Arc<AtomicBool>) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Some(target) = get_backend_addr(backend_addr) else {
                    drop(client);
                    continue;
                };
                let Ok(server) = TcpStream::connect_timeout(&target, Duration::from_millis(500))
                else {
                    drop(client);
                    continue;
                };
                let stop = Arc::clone(stop);
                pumps.push(std::thread::spawn(move || pump_pair(client, server, &stop)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
        pumps.retain(|p| !p.is_finished());
    }
    for p in pumps {
        let _ = p.join();
    }
}

/// Bidirectional byte pump between one client and one backend socket.
/// Pure transport — no framing, no inspection; the slot must be
/// invisible when the backend is healthy.
fn pump_pair(client: TcpStream, server: TcpStream, stop: &Arc<AtomicBool>) {
    let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let down_stop = Arc::clone(stop);
    let down = std::thread::spawn(move || pump(&server_rx, &client, &down_stop));
    pump(&client_rx, &server, stop);
    let _ = down.join();
}

fn pump(mut from: &TcpStream, mut to: &TcpStream, stop: &Arc<AtomicBool>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Both);
    let _ = from.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn per_mirror_kill_streams_are_deterministic_and_distinct() {
        let seed = 42u64;
        let draws = |mirror: u64| {
            let mut rng = SplitMix64(seed ^ mirror.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            (0..8).map(|_| rng.below(1000)).collect::<Vec<_>>()
        };
        assert_eq!(draws(0), draws(0), "same mirror, same schedule");
        assert_ne!(draws(0), draws(1), "mirrors draw independent schedules");
        let mut distinct = HashSet::new();
        for m in 0..8u64 {
            distinct.insert(draws(m));
        }
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn stats_accumulate_across_incarnations() {
        let mut total = ServerStats::default();
        let incarnation = ServerStats {
            accepted: 3,
            admitted: 2,
            units_sent: 10,
            bytes_sent: 1000,
            completed: 1,
            ..ServerStats::default()
        };
        accumulate(&mut total, incarnation);
        accumulate(&mut total, incarnation);
        assert_eq!(total.accepted, 6);
        assert_eq!(total.units_sent, 20);
        assert_eq!(total.bytes_sent, 2000);
        assert_eq!(total.completed, 2);
    }
}
