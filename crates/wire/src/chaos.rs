//! The socket-level chaos proxy.
//!
//! Sits between client and server on loopback and injects faults on the
//! server→client stream **at frame boundaries** (it parses just enough
//! framing to know where one frame ends), while forwarding the
//! client→server stream untouched. The fault vocabulary is the
//! simulator's, knob for knob, mapped to its socket-level analogue:
//!
//! | knob        | simulated effect      | wire effect                      |
//! |-------------|-----------------------|----------------------------------|
//! | `loss`      | unit lost in flight   | frame cut mid-bytes, then abort  |
//! | `drop`      | connection dropped    | both sockets torn down           |
//! | `corrupt`   | unit payload flipped  | one byte flipped in frame body   |
//! | `droop`     | bandwidth sag         | stall before forwarding          |
//! | `semantic`  | plausible wrong bytes | adjacent frames swapped          |
//!
//! A seventh, deliberately *not* part of the shared knob vocabulary
//! (the simulator has no transport CRC to defeat): `forge`
//! ([`ChaosConfig::forge_pm`]) rewrites a Unit frame's payload and
//! re-seals the outer CRC, modeling a Byzantine mirror rather than a
//! noisy link. A `corrupt` fault is caught by the frame CRC; a `forge`
//! can only be caught by the client's pinned NSUM manifest digests.
//!
//! Fault draws are deterministic per accepted connection: connection
//! `n` uses `SplitMix64(seed ^ hash(n))`, so a failing run replays
//! exactly from its seed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::config::FaultKnobs;
use crate::crc::crc32;
use crate::frame::{read_raw_frame, FrameError, FRAME_OVERHEAD, KIND_UNIT};
use crate::SplitMix64;

/// Tuning for a [`ChaosProxy`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The six shared fault knobs (`seed` + five ppm rates).
    pub knobs: FaultKnobs,
    /// How long a `droop` stall holds a frame. Longer than the client's
    /// read timeout turns a stall into a forced reconnect.
    pub stall: Duration,
    /// Byzantine forgery rate, ppm per Unit frame: flip payload bytes
    /// and then **re-seal the frame CRC**, so the forgery is invisible
    /// to the transport integrity check and only the pinned-manifest
    /// digest can catch it. This is what separates "the client detects
    /// equivocation" from "the client got lucky with CRC32": a `corrupt`
    /// fault is caught by the frame CRC, a `forge` never is.
    pub forge_pm: u32,
}

impl ChaosConfig {
    /// A config from knobs with a default 50 ms stall and no forgery.
    #[must_use]
    pub fn new(knobs: FaultKnobs) -> ChaosConfig {
        ChaosConfig {
            knobs,
            stall: Duration::from_millis(50),
            forge_pm: 0,
        }
    }
}

/// Injected-fault counts, snapshotted by [`ChaosProxy::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames cut mid-bytes (loss).
    pub cuts: u64,
    /// Connections torn down (drop).
    pub aborts: u64,
    /// Bytes flipped (corrupt).
    pub corruptions: u64,
    /// Stalls inserted (droop).
    pub stalls: u64,
    /// Adjacent-frame swaps (semantic).
    pub reorders: u64,
    /// Unit payloads forged under a re-sealed CRC (Byzantine).
    pub forges: u64,
    /// Connections proxied.
    pub connections: u64,
}

impl ChaosStats {
    /// Total faults injected across every category.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.cuts + self.aborts + self.corruptions + self.stalls + self.reorders + self.forges
    }
}

#[derive(Default)]
struct StatsInner {
    cuts: AtomicU64,
    aborts: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
    reorders: AtomicU64,
    forges: AtomicU64,
    connections: AtomicU64,
}

/// The proxy: spawn, point clients at [`ChaosProxy::local_addr`], stop.
pub struct ChaosProxy {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    stats: Arc<StatsInner>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and proxies every accepted
    /// connection to `upstream` with faults from `config`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn spawn(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, upstream, &config, &accept_stop, &accept_stats);
        });
        Ok(ChaosProxy {
            local,
            stop,
            accept_thread: Some(accept_thread),
            stats,
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A snapshot of the injected-fault counters.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            cuts: self.stats.cuts.load(Ordering::Relaxed),
            aborts: self.stats.aborts.load(Ordering::Relaxed),
            corruptions: self.stats.corruptions.load(Ordering::Relaxed),
            stalls: self.stats.stalls.load(Ordering::Relaxed),
            reorders: self.stats.reorders.load(Ordering::Relaxed),
            forges: self.stats.forges.load(Ordering::Relaxed),
            connections: self.stats.connections.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and tears the proxy down.
    pub fn stop(mut self) -> ChaosStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    config: &ChaosConfig,
    stop: &Arc<AtomicBool>,
    stats: &Arc<StatsInner>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    let mut conn_index = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let n = conn_index;
                conn_index += 1;
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(2))
                else {
                    continue;
                };
                let config = config.clone();
                let stop = Arc::clone(stop);
                let stats = Arc::clone(stats);
                pumps.push(std::thread::spawn(move || {
                    proxy_connection(client, server, n, &config, &stop, &stats);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
        pumps.retain(|p| !p.is_finished());
    }
    for p in pumps {
        let _ = p.join();
    }
}

/// A reader that converts socket read timeouts into retries until the
/// stop flag rises, so frame parsing never desyncs on a mid-frame
/// timeout but the pump still exits promptly on shutdown.
struct RetryReader<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for RetryReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            let mut stream = self.stream;
            match stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) && !self.stop.load(Ordering::SeqCst) =>
                {
                    continue;
                }
                other => return other,
            }
        }
    }
}

fn proxy_connection(
    client: TcpStream,
    server: TcpStream,
    conn_index: u64,
    config: &ChaosConfig,
    stop: &Arc<AtomicBool>,
    stats: &Arc<StatsInner>,
) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(50)));

    // Client → server: forwarded untouched (Hellos are small and the
    // interesting failure surface is the streamed response).
    let up_client = match client.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let up_server = match server.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let up_stop = Arc::clone(stop);
    let upstream_pump = std::thread::spawn(move || {
        let mut reader = RetryReader {
            stream: &up_client,
            stop: &up_stop,
        };
        let mut buf = [0u8; 4096];
        loop {
            match reader.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if (&up_server).write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = up_server.shutdown(std::net::Shutdown::Write);
    });

    // Server → client: frame-boundary faults, seeded per connection.
    let mut rng = SplitMix64(config.knobs.seed ^ conn_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let knobs = config.knobs;
    let mut reader = RetryReader {
        stream: &server,
        stop,
    };
    let mut held: Option<Vec<u8>> = None;
    let mut down = &client;
    loop {
        let frame = match read_raw_frame(&mut reader) {
            Ok(f) => f,
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => break,
            Err(_) => break,
        };
        if knobs.drop_pm > 0 && rng.hit_pm(knobs.drop_pm) {
            stats.aborts.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(std::net::Shutdown::Both);
            let _ = server.shutdown(std::net::Shutdown::Both);
            break;
        }
        if knobs.loss_pm > 0 && rng.hit_pm(knobs.loss_pm) {
            // Cut the frame mid-bytes, then tear the connection down:
            // the wire version of a unit lost in flight.
            stats.cuts.fetch_add(1, Ordering::Relaxed);
            let cut = frame.len() / 2;
            let _ = down.write_all(&frame[..cut]);
            let _ = client.shutdown(std::net::Shutdown::Both);
            let _ = server.shutdown(std::net::Shutdown::Both);
            break;
        }
        if knobs.droop_pm > 0 && rng.hit_pm(knobs.droop_pm) {
            stats.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(config.stall);
        }
        let mut frame = frame;
        if config.forge_pm > 0
            && frame.first() == Some(&KIND_UNIT)
            && frame.len() > FRAME_OVERHEAD + 8
            && rng.hit_pm(config.forge_pm)
        {
            // The Byzantine mirror: flip a payload byte *past* the
            // class/unit header, then recompute the outer CRC so the
            // frame is transport-perfect. Only the client's pinned
            // NSUM digest can tell these bytes are not the program.
            stats.forges.fetch_add(1, Ordering::Relaxed);
            let body_at = 5 + 8; // kind+len, then class+unit ids
            let span = frame.len() - 4 - body_at;
            let at = body_at + usize::try_from(rng.below(span as u64)).unwrap_or(0);
            frame[at] ^= 0x55;
            let crc_at = frame.len() - 4;
            let crc = crc32(&frame[..crc_at]);
            frame[crc_at..].copy_from_slice(&crc.to_le_bytes());
        }
        if knobs.corrupt_pm > 0 && rng.hit_pm(knobs.corrupt_pm) {
            // Flip one byte past the length field (payload or CRC), so
            // framing stays parseable and the client's CRC check is
            // what must catch it.
            stats.corruptions.fetch_add(1, Ordering::Relaxed);
            let at = 5 + usize::try_from(rng.below((frame.len() - 5) as u64)).unwrap_or(0);
            frame[at] ^= 0x20;
        }
        if knobs.semantic_pm > 0 && held.is_none() && rng.hit_pm(knobs.semantic_pm) {
            // Hold this frame and release it after the next one: a
            // reorder at an exact frame boundary.
            stats.reorders.fetch_add(1, Ordering::Relaxed);
            held = Some(frame);
            continue;
        }
        if down.write_all(&frame).is_err() {
            break;
        }
        if let Some(h) = held.take() {
            if down.write_all(&h).is_err() {
                break;
            }
        }
    }
    if let Some(h) = held.take() {
        let _ = down.write_all(&h);
    }
    let _ = client.shutdown(std::net::Shutdown::Both);
    let _ = server.shutdown(std::net::Shutdown::Both);
    let _ = upstream_pump.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_connection_rngs_are_deterministic_and_distinct() {
        let seed = 7u64;
        let mut a0 = SplitMix64(seed ^ 0u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut b0 = SplitMix64(seed ^ 0u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut a1 = SplitMix64(seed ^ 1u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        assert_eq!(a0.next_u64(), b0.next_u64());
        assert_ne!(a0.next_u64(), a1.next_u64());
    }

    #[test]
    fn forged_unit_frames_stay_transport_perfect() {
        // Replicate the forge transform on an encoded Unit frame and
        // prove the result still decodes cleanly — the transport CRC
        // must NOT catch a forge; only the manifest digest can.
        let original = crate::frame::Frame::Unit {
            class: 1,
            unit: 2,
            payload: b"honest program bytes".to_vec(),
        };
        let mut frame = original.encode();
        let body_at = 5 + 8;
        frame[body_at] ^= 0x55;
        let crc_at = frame.len() - 4;
        let crc = crc32(&frame[..crc_at]);
        frame[crc_at..].copy_from_slice(&crc.to_le_bytes());
        let (decoded, _) = crate::frame::Frame::decode(&frame).expect("forged frame decodes");
        match decoded {
            crate::frame::Frame::Unit {
                class,
                unit,
                payload,
            } => {
                assert_eq!(class, 1);
                assert_eq!(unit, 2);
                assert_ne!(payload, b"honest program bytes", "bytes were forged");
            }
            other => panic!("forge changed the frame kind: {other:?}"),
        }
    }

    #[test]
    fn quiet_knobs_never_fire() {
        let knobs = FaultKnobs::default();
        assert!(knobs.is_quiet());
        let mut rng = SplitMix64(1);
        assert!((0..1000).all(|_| !rng.hit_pm(knobs.loss_pm)));
    }
}
