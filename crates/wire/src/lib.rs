//! # nonstrict-wire
//!
//! The non-strict transfer protocol promoted to a real wire.
//!
//! Everything below the session simulator in this workspace models the
//! paper's protocol — unit-delimited class streaming, CRC'd units, the
//! NSJR resume journal, the NSUM unit manifest — at cycle granularity.
//! This crate defines the **actual byte protocol** those models stand in
//! for, and a small threaded server/client stack that speaks it over
//! TCP:
//!
//! * [`crc`] — the canonical CRC32 (IEEE 802.3, reflected). The netsim
//!   unit trailer, the NSJR journal, the NSUM manifest, and every wire
//!   frame all use this one implementation, so the simulator is a test
//!   double for the same integrity arithmetic the wire uses.
//! * [`frame`] — CRC-framed protocol messages with length-prefix sanity
//!   caps: a decoder rejects an absurd declared length with a typed
//!   [`frame::FrameError::Oversized`] *before* allocating anything.
//! * [`config`] — the shared link / ordering / fault-knob vocabulary.
//!   The CLI simulator, the server, and the loadgen all parse the same
//!   spellings through this module, so a scenario moves between the
//!   simulated and real wire without translation.
//! * [`manifest`] — the NSUM unit manifest: the content-addressed
//!   digest table a client pins from its first Welcome and verifies
//!   every delivered unit against. Moving it here (from `core`) puts
//!   the integrity arithmetic at the bottom of the stack, where both
//!   the simulator and the wire client reach it.
//! * [`plan`] — the server's content model ([`plan::ServePlan`]): real
//!   restructured class-file bytes split at unit boundaries, plus the
//!   watermark-based resume negotiation with typed
//!   [`plan::ResumeVerdict`]s.
//! * [`server`] — a threaded accept/stream server with the full
//!   robustness ladder: accept-side token-bucket admission with typed
//!   retry-after, per-connection read/write deadlines, slow-consumer
//!   (slow-loris) detection and eviction, bounded send-queue
//!   backpressure, and graceful drain at unit boundaries.
//! * [`client`] — the resumable mirror-fleet client: watermark
//!   journal, capped-backoff reconnect, EWMA mirror health scoring,
//!   mid-stream failover at unit boundaries, trust-on-first-use
//!   manifest pinning with per-unit digest verification, and
//!   quarantine of equivocating or forging mirrors.
//! * [`fleet`] — the process-level supervisor: N mirrors behind stable
//!   slot addresses, seeded crash/restart plans, health probes, and
//!   live epoch rollovers behind graceful drain fences.
//! * [`loadgen`] — replays a seeded fleet arrival schedule against a
//!   server (or mirror fleet) and reports wall-clock tail latency plus
//!   the cross-client convergence invariant.
//! * [`chaos`] — an interposed proxy that injects socket-level faults
//!   (mid-frame cuts, aborts, byte corruption, stalls, frame
//!   reordering) between client and server, deterministically per
//!   seeded connection.
//!
//! The crate is dependency-free on the rest of the workspace on
//! purpose: it sits at the *bottom* of the stack so the simulator
//! crates can reuse its primitives, and the `core::serve` bridge (which
//! knows how to build a [`plan::ServePlan`] from a benchmark) sits
//! above both.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod config;
pub mod crc;
pub mod fleet;
pub mod frame;
pub mod loadgen;
pub mod manifest;
pub mod plan;
pub mod server;

pub use chaos::{ChaosConfig, ChaosProxy};
pub use client::{
    boost_health, decay_health, ClientConfig, ClientError, ClientReport, SessionStore, StoreFault,
    WarmClass, WarmSession, WireClient, HEALTH_FULL_PPM,
};
pub use config::{parse_mirrors, ConfigError, FaultKnobs, LinkSpec};
pub use crc::crc32;
pub use fleet::{CrashPlan, FleetConfig, FleetReport, FleetSupervisor, MirrorStatus, PlanFactory};
pub use frame::{
    ClassAdvert, EvictReason, Frame, FrameError, ResumeEntry, MAX_FRAME_PAYLOAD, PROTOCOL_VERSION,
};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use manifest::{
    content_digest_of, ManifestError, UnitManifest, MANIFEST_MAGIC, MANIFEST_VERSION,
};
pub use plan::{ClassPlan, ResumeVerdict, ServePlan};
pub use server::{DrainReport, ServerConfig, ServerStats, WireServer};

/// Sanity caps shared by every length-prefixed decoder in the
/// workspace: the wire frames here, and the NSJR journal and NSUM
/// manifest decoders in `nonstrict-core`. A decoder must check the
/// declared count against the cap (and against the bytes actually
/// remaining) *before* allocating — a forged length field may ask for
/// gigabytes the frame never carries.
pub mod caps {
    /// Maximum classes any frame, journal, or manifest may declare.
    pub const MAX_CLASSES: usize = 1 << 20;
    /// Maximum units a single class may declare (same dimension, and
    /// therefore the same cap, as the per-method bitmaps).
    pub const MAX_UNITS_PER_CLASS: usize = 1 << 24;
    /// Maximum entries in a per-method bitmap.
    pub const MAX_BITMAP_BITS: usize = 1 << 24;
    /// Maximum entries in a journal fetch log.
    pub const MAX_FETCH_LOG: usize = 1 << 24;
}

/// SplitMix64: the workspace's standard small seeded generator, used
/// here for arrival jitter and per-connection chaos plans.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in parts-per-million space: true with probability
    /// `rate_pm / 1_000_000`.
    pub fn hit_pm(&mut self, rate_pm: u32) -> bool {
        if rate_pm == 0 {
            return false;
        }
        self.next_u64() % 1_000_000 < u64::from(rate_pm)
    }

    /// A draw in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_rates_bound() {
        let mut a = SplitMix64(7);
        let mut b = SplitMix64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64(1);
        assert!((0..1000).all(|_| !r.hit_pm(0)));
        assert!((0..1000).all(|_| r.hit_pm(1_000_000)));
        assert!((0..1000).all(|_| r.below(10) < 10));
    }
}
