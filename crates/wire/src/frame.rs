//! CRC-framed protocol messages.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! u8  kind | u32 len (LE, payload bytes) | payload | u32 crc32 (LE)
//! ```
//!
//! The trailing CRC covers the kind byte, the length field, and the
//! payload, so a torn or bit-flipped frame is detected before any field
//! is believed. Decoding is **fail-closed and allocation-safe**: a
//! declared length above [`MAX_FRAME_PAYLOAD`] — or an inner count that
//! could not possibly fit in the bytes actually present — is rejected
//! with a typed [`FrameError::Oversized`] *before* any buffer is
//! allocated, so a hostile peer cannot make the receiver reserve
//! gigabytes with a five-byte header.
//!
//! The frame vocabulary maps one-to-one onto the simulator's protocol
//! events: [`Frame::Unit`] is the simulated transfer unit (same CRC
//! arithmetic, real payload bytes), [`Frame::Hello`]'s resume entries
//! are the NSJR journal's per-class delivered watermarks, and
//! [`Frame::Welcome`] carries the NSUM manifest frame opaquely so the
//! client can pin it exactly as the Byzantine layer does in simulation.

use std::io::{self, Read, Write};

use crate::caps;
use crate::crc::crc32;

/// Protocol version carried in every [`Frame::Hello`].
///
/// Version 2 added the restructure **generation** to [`Frame::Welcome`]
/// so a mirror-fleet client can order two manifests it has seen.
/// Manifest epochs are layout *fingerprints* — good for equality,
/// useless for ordering — so without the generation a client failing
/// over
/// mid-rollover could not tell "this mirror restructured ahead of me"
/// (follow it) from "this mirror is serving yesterday's layout" (back
/// off) from "this mirror is lying under my pinned generation"
/// (quarantine it).
pub const PROTOCOL_VERSION: u16 = 2;

/// Hello-payload magic: identifies the protocol and its byte order.
pub const HELLO_MAGIC: [u8; 4] = *b"NSWP";

/// Hard cap on a frame's declared payload length. The largest honest
/// frame is a class prelude unit or a manifest-bearing Welcome — tens
/// of kilobytes; one mebibyte leaves two orders of magnitude of slack
/// while keeping a forged length harmless.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Cap on the benchmark-name field in a Hello.
pub const MAX_NAME_BYTES: usize = 64;

/// Bytes of frame overhead around a payload: kind + length prefix +
/// CRC trailer.
pub const FRAME_OVERHEAD: usize = 1 + 4 + 4;

/// Why a frame could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer or stream ended before the declared frame did.
    Truncated,
    /// A declared length exceeds its sanity cap (or the bytes actually
    /// present). Rejected before allocating — this is the DoS guard.
    Oversized {
        /// Which field declared the length.
        what: &'static str,
        /// The declared value.
        declared: u64,
        /// The cap it violated.
        cap: u64,
    },
    /// The CRC trailer does not match the frame content.
    CrcMismatch,
    /// The kind byte is not a known frame kind.
    UnknownKind(u8),
    /// A Hello carried the wrong magic or an unsupported version.
    BadVersion(u16),
    /// Structurally impossible content inside a well-framed payload.
    Malformed(&'static str),
    /// The underlying stream failed.
    Io(io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Oversized {
                what,
                declared,
                cap,
            } => write!(f, "oversized {what}: declared {declared}, cap {cap}"),
            FrameError::CrcMismatch => write!(f, "frame CRC mismatch"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::Io(kind) => write!(f, "stream error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.kind())
        }
    }
}

/// Checks a declared element count against both its sanity cap and the
/// bytes still available to carry it (`min_bytes_each` per element),
/// before any allocation happens. Shared with the NSJR/NSUM decoders.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the count exceeds `cap`;
/// [`FrameError::Truncated`] when the remaining bytes cannot possibly
/// hold `declared` elements.
pub fn check_count(
    what: &'static str,
    declared: u64,
    cap: usize,
    remaining: usize,
    min_bytes_each: usize,
) -> Result<usize, FrameError> {
    if declared > cap as u64 {
        return Err(FrameError::Oversized {
            what,
            declared,
            cap: cap as u64,
        });
    }
    let declared = declared as usize;
    if declared
        .checked_mul(min_bytes_each)
        .is_none_or(|need| need > remaining)
    {
        return Err(FrameError::Truncated);
    }
    Ok(declared)
}

/// One per-class resume watermark the client offers in its Hello: the
/// NSJR journal's `(epoch, delivered)` pair for `class`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeEntry {
    /// Class index.
    pub class: u32,
    /// Layout epoch the watermark was recorded under.
    pub epoch: u32,
    /// Delivered-unit watermark (units `0..delivered` are held).
    pub delivered: u32,
}

/// One per-class advert in the server's Welcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassAdvert {
    /// Current layout epoch of the class.
    pub epoch: u32,
    /// Total units the class streams.
    pub units: u32,
    /// First unit the server will send this session (nonzero only when
    /// a resume watermark survived negotiation).
    pub start: u32,
}

/// Why the server evicted a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The client consumed too slowly (slow-loris guard).
    SlowConsumer,
    /// The server is draining for shutdown; reconnect elsewhere/later.
    Drain,
    /// The Hello was incompatible (unknown benchmark, bad version).
    Incompatible,
}

impl EvictReason {
    fn code(self) -> u8 {
        match self {
            EvictReason::SlowConsumer => 0,
            EvictReason::Drain => 1,
            EvictReason::Incompatible => 2,
        }
    }

    fn from_code(code: u8) -> Result<EvictReason, FrameError> {
        match code {
            0 => Ok(EvictReason::SlowConsumer),
            1 => Ok(EvictReason::Drain),
            2 => Ok(EvictReason::Incompatible),
            _ => Err(FrameError::Malformed("unknown evict reason")),
        }
    }
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: open (or resume) a session.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// Benchmark name the client wants streamed.
        benchmark: String,
        /// Ordering code (see [`crate::config::ORDERINGS`]).
        ordering: u8,
        /// Per-class resume watermarks from the client's journal.
        resume: Vec<ResumeEntry>,
    },
    /// Server → client: session accepted; layout + resume verdicts.
    Welcome {
        /// Restructure generation: a monotonic counter the origin bumps
        /// on every live re-restructure. Unlike the manifest epoch (a
        /// hash, unordered), generations let a client *order* two
        /// layouts: newer generation → legitimate rollover, follow it;
        /// older → stale mirror, back off; same generation but a
        /// different manifest → equivocation, quarantine the mirror.
        generation: u32,
        /// Combined manifest epoch of the served layout.
        manifest_epoch: u64,
        /// The NSUM unit-manifest frame, opaque to this layer; the
        /// client pins its digest exactly as the simulator's Byzantine
        /// layer does.
        manifest: Vec<u8>,
        /// Per-class epochs, unit counts, and negotiated start units.
        classes: Vec<ClassAdvert>,
    },
    /// Server → client: admission rejected; typed retry-after.
    Retry {
        /// Suggested backoff before reconnecting, in milliseconds.
        after_ms: u32,
    },
    /// Server → client: one transfer unit's bytes.
    Unit {
        /// Class index.
        class: u32,
        /// Unit index within the class (0 = prelude).
        unit: u32,
        /// The unit's bytes.
        payload: Vec<u8>,
    },
    /// Server → client: this connection is over, but the session is
    /// resumable from the client's watermarks.
    Evict {
        /// Why.
        reason: EvictReason,
        /// Suggested backoff before reconnecting, in milliseconds.
        resume_after_ms: u32,
    },
    /// Server → client: every class streamed to completion.
    Bye {
        /// Classes completed this connection.
        classes: u32,
        /// Payload bytes sent this connection.
        bytes: u64,
    },
}

const KIND_HELLO: u8 = 0x01;
const KIND_WELCOME: u8 = 0x02;
const KIND_RETRY: u8 = 0x03;
pub(crate) const KIND_UNIT: u8 = 0x04;
const KIND_EVICT: u8 = 0x05;
const KIND_BYE: u8 = 0x06;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }
}

impl Frame {
    /// Encodes the frame: kind, length prefix, payload, CRC trailer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD, "honest frames fit");
        let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        out.push(self.kind());
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("payload fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Welcome { .. } => KIND_WELCOME,
            Frame::Retry { .. } => KIND_RETRY,
            Frame::Unit { .. } => KIND_UNIT,
            Frame::Evict { .. } => KIND_EVICT,
            Frame::Bye { .. } => KIND_BYE,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Hello {
                version,
                benchmark,
                ordering,
                resume,
            } => {
                p.extend_from_slice(&HELLO_MAGIC);
                p.extend_from_slice(&version.to_le_bytes());
                let name = benchmark.as_bytes();
                assert!(name.len() <= MAX_NAME_BYTES, "benchmark name fits");
                p.push(u8::try_from(name.len()).expect("name fits u8"));
                p.extend_from_slice(name);
                p.push(*ordering);
                p.extend_from_slice(
                    &u32::try_from(resume.len())
                        .expect("resume fits u32")
                        .to_le_bytes(),
                );
                for r in resume {
                    p.extend_from_slice(&r.class.to_le_bytes());
                    p.extend_from_slice(&r.epoch.to_le_bytes());
                    p.extend_from_slice(&r.delivered.to_le_bytes());
                }
            }
            Frame::Welcome {
                generation,
                manifest_epoch,
                manifest,
                classes,
            } => {
                p.extend_from_slice(&generation.to_le_bytes());
                p.extend_from_slice(&manifest_epoch.to_le_bytes());
                p.extend_from_slice(
                    &u32::try_from(manifest.len())
                        .expect("manifest fits u32")
                        .to_le_bytes(),
                );
                p.extend_from_slice(manifest);
                p.extend_from_slice(
                    &u32::try_from(classes.len())
                        .expect("classes fit u32")
                        .to_le_bytes(),
                );
                for c in classes {
                    p.extend_from_slice(&c.epoch.to_le_bytes());
                    p.extend_from_slice(&c.units.to_le_bytes());
                    p.extend_from_slice(&c.start.to_le_bytes());
                }
            }
            Frame::Retry { after_ms } => p.extend_from_slice(&after_ms.to_le_bytes()),
            Frame::Unit {
                class,
                unit,
                payload,
            } => {
                p.extend_from_slice(&class.to_le_bytes());
                p.extend_from_slice(&unit.to_le_bytes());
                p.extend_from_slice(payload);
            }
            Frame::Evict {
                reason,
                resume_after_ms,
            } => {
                p.push(reason.code());
                p.extend_from_slice(&resume_after_ms.to_le_bytes());
            }
            Frame::Bye { classes, bytes } => {
                p.extend_from_slice(&classes.to_le_bytes());
                p.extend_from_slice(&bytes.to_le_bytes());
            }
        }
        p
    }

    /// Decodes one frame from the front of `buf`, returning the frame
    /// and the bytes it consumed.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when `buf` holds less than one whole
    /// frame (callers streaming from a socket read more and retry);
    /// every other variant is a fail-closed protocol error.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() < 5 {
            return Err(FrameError::Truncated);
        }
        let kind = buf[0];
        let len = u32::from_le_bytes(buf[1..5].try_into().expect("len")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversized {
                what: "frame payload",
                declared: len as u64,
                cap: MAX_FRAME_PAYLOAD as u64,
            });
        }
        let total = FRAME_OVERHEAD + len;
        if buf.len() < total {
            return Err(FrameError::Truncated);
        }
        let stored = u32::from_le_bytes(buf[total - 4..total].try_into().expect("len"));
        if crc32(&buf[..total - 4]) != stored {
            return Err(FrameError::CrcMismatch);
        }
        let frame = Frame::decode_payload(kind, &buf[5..5 + len])?;
        Ok((frame, total))
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, FrameError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let frame = match kind {
            KIND_HELLO => {
                if c.take(4)? != HELLO_MAGIC {
                    return Err(FrameError::Malformed("hello magic mismatch"));
                }
                let version = c.u16()?;
                if version != PROTOCOL_VERSION {
                    return Err(FrameError::BadVersion(version));
                }
                let name_len = c.u8()? as usize;
                if name_len > MAX_NAME_BYTES {
                    return Err(FrameError::Oversized {
                        what: "benchmark name",
                        declared: name_len as u64,
                        cap: MAX_NAME_BYTES as u64,
                    });
                }
                let benchmark = std::str::from_utf8(c.take(name_len)?)
                    .map_err(|_| FrameError::Malformed("benchmark name not utf-8"))?
                    .to_owned();
                let ordering = c.u8()?;
                let n = check_count(
                    "resume entries",
                    c.u32()?.into(),
                    caps::MAX_CLASSES,
                    c.remaining(),
                    12,
                )?;
                let mut resume = Vec::with_capacity(n);
                for _ in 0..n {
                    resume.push(ResumeEntry {
                        class: c.u32()?,
                        epoch: c.u32()?,
                        delivered: c.u32()?,
                    });
                }
                Frame::Hello {
                    version,
                    benchmark,
                    ordering,
                    resume,
                }
            }
            KIND_WELCOME => {
                let generation = c.u32()?;
                let manifest_epoch = c.u64()?;
                let mlen = check_count(
                    "manifest bytes",
                    c.u32()?.into(),
                    MAX_FRAME_PAYLOAD,
                    c.remaining(),
                    1,
                )?;
                let manifest = c.take(mlen)?.to_vec();
                let n = check_count(
                    "class adverts",
                    c.u32()?.into(),
                    caps::MAX_CLASSES,
                    c.remaining(),
                    12,
                )?;
                let mut classes = Vec::with_capacity(n);
                for _ in 0..n {
                    classes.push(ClassAdvert {
                        epoch: c.u32()?,
                        units: c.u32()?,
                        start: c.u32()?,
                    });
                }
                Frame::Welcome {
                    generation,
                    manifest_epoch,
                    manifest,
                    classes,
                }
            }
            KIND_RETRY => Frame::Retry { after_ms: c.u32()? },
            KIND_UNIT => {
                let class = c.u32()?;
                let unit = c.u32()?;
                let payload = c.take(c.remaining())?.to_vec();
                Frame::Unit {
                    class,
                    unit,
                    payload,
                }
            }
            KIND_EVICT => Frame::Evict {
                reason: EvictReason::from_code(c.u8()?)?,
                resume_after_ms: c.u32()?,
            },
            KIND_BYE => Frame::Bye {
                classes: c.u32()?,
                bytes: c.u64()?,
            },
            other => return Err(FrameError::UnknownKind(other)),
        };
        if c.remaining() != 0 {
            return Err(FrameError::Malformed("trailing bytes after payload"));
        }
        Ok(frame)
    }
}

/// Reads exactly one frame from `r` (blocking, honoring the stream's
/// read timeout).
///
/// # Errors
///
/// [`FrameError::Io`]/[`FrameError::Truncated`] on stream failure or
/// EOF; any decode variant on a hostile or torn frame. The length cap
/// is enforced before the payload buffer is allocated.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[1..5].try_into().expect("len")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized {
            what: "frame payload",
            declared: len as u64,
            cap: MAX_FRAME_PAYLOAD as u64,
        });
    }
    let mut rest = vec![0u8; len + 4];
    r.read_exact(&mut rest)?;
    let mut whole = Vec::with_capacity(FRAME_OVERHEAD + len);
    whole.extend_from_slice(&header);
    whole.extend_from_slice(&rest);
    let (frame, consumed) = Frame::decode(&whole)?;
    debug_assert_eq!(consumed, whole.len());
    Ok(frame)
}

/// Reads one frame from `r` as raw encoded bytes without validating its
/// CRC — the chaos proxy uses this to find frame boundaries while still
/// forwarding (possibly deliberately corrupted) bytes untouched.
///
/// # Errors
///
/// [`FrameError::Io`]/[`FrameError::Truncated`] on stream failure;
/// [`FrameError::Oversized`] (pre-allocation) on an absurd length.
pub fn read_raw_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[1..5].try_into().expect("len")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized {
            what: "frame payload",
            declared: len as u64,
            cap: MAX_FRAME_PAYLOAD as u64,
        });
    }
    let mut whole = vec![0u8; FRAME_OVERHEAD + len];
    whole[..5].copy_from_slice(&header);
    r.read_exact(&mut whole[5..])?;
    Ok(whole)
}

/// Writes one frame to `w` (blocking, honoring the stream's write
/// timeout), flushing afterwards.
///
/// # Errors
///
/// Propagates stream errors (including write-timeout expiry).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                benchmark: "hanoi".to_owned(),
                ordering: 0,
                resume: vec![
                    ResumeEntry {
                        class: 0,
                        epoch: 0xaaaa_bbbb,
                        delivered: 3,
                    },
                    ResumeEntry {
                        class: 1,
                        epoch: 0xcccc_dddd,
                        delivered: 0,
                    },
                ],
            },
            Frame::Welcome {
                generation: 3,
                manifest_epoch: 0x1234_5678_9abc_def0,
                manifest: vec![1, 2, 3, 4, 5],
                classes: vec![ClassAdvert {
                    epoch: 7,
                    units: 9,
                    start: 3,
                }],
            },
            Frame::Retry { after_ms: 250 },
            Frame::Unit {
                class: 2,
                unit: 5,
                payload: b"method bytes".to_vec(),
            },
            Frame::Evict {
                reason: EvictReason::SlowConsumer,
                resume_after_ms: 100,
            },
            Frame::Bye {
                classes: 3,
                bytes: 123_456,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_kind() {
        for f in samples() {
            let bytes = f.encode();
            let (back, consumed) = Frame::decode(&bytes).unwrap();
            assert_eq!(back, f);
            assert_eq!(consumed, bytes.len());
            // io-path agrees with buffer-path
            let mut cursor = std::io::Cursor::new(bytes.clone());
            assert_eq!(read_frame(&mut cursor).unwrap(), f);
        }
    }

    #[test]
    fn every_prefix_truncation_fails_closed() {
        for f in samples() {
            let bytes = f.encode();
            for n in 0..bytes.len() {
                assert!(
                    Frame::decode(&bytes[..n]).is_err(),
                    "prefix of {n} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn every_byte_flip_is_detected() {
        for f in samples() {
            let bytes = f.encode();
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x40;
                if let Ok((frame, _)) = Frame::decode(&bad) {
                    panic!("flip at {i} decoded as {frame:?}");
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Frame::Retry { after_ms: 1 }.encode();
        // Forge an absurd length field; the CRC no longer matters
        // because the cap check must fire first.
        bytes[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized {
                what: "frame payload",
                ..
            })
        ));
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn inner_counts_are_capped_against_remaining_bytes() {
        // A Hello declaring 1M resume entries inside a tiny payload
        // must be rejected as truncated before any Vec is reserved.
        let f = Frame::Hello {
            version: PROTOCOL_VERSION,
            benchmark: "x".to_owned(),
            ordering: 0,
            resume: vec![],
        };
        let mut bytes = f.encode();
        let count_at = bytes.len() - 4 - 4; // the resume-count field
        bytes[count_at..count_at + 4].copy_from_slice(&1_000u32.to_le_bytes());
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(FrameError::Truncated));
    }

    #[test]
    fn future_protocol_versions_fail_closed() {
        let f = Frame::Hello {
            version: PROTOCOL_VERSION,
            benchmark: "hanoi".to_owned(),
            ordering: 0,
            resume: vec![],
        };
        let mut bytes = f.encode();
        bytes[5 + 4] = 0xff; // low byte of the version field
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadVersion(_))
        ));
    }

    #[test]
    fn unknown_kind_fails_closed() {
        let mut bytes = Frame::Retry { after_ms: 1 }.encode();
        bytes[0] = 0x7f;
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(FrameError::UnknownKind(0x7f)));
    }

    #[test]
    fn raw_frame_reader_finds_boundaries() {
        let a = Frame::Unit {
            class: 0,
            unit: 0,
            payload: vec![9; 10],
        }
        .encode();
        let b = Frame::Bye {
            classes: 1,
            bytes: 10,
        }
        .encode();
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_raw_frame(&mut cursor).unwrap(), a);
        assert_eq!(read_raw_frame(&mut cursor).unwrap(), b);
        assert_eq!(read_raw_frame(&mut cursor), Err(FrameError::Truncated));
    }
}
