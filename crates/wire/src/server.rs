//! The fault-tolerant transfer server.
//!
//! A small threaded accept/stream stack (std only, one thread per
//! admitted connection plus a writer thread per connection) with the
//! robustness ladder the issue demands:
//!
//! * **Accept-side admission**: a token bucket gates new connections;
//!   when it is dry — or the concurrent-connection cap is reached — the
//!   connection gets a typed [`Frame::Retry`] with a suggested backoff
//!   instead of a silent RST, then closes.
//! * **Per-connection deadlines**: every socket gets read and write
//!   timeouts; a peer that stops participating cannot pin a thread.
//! * **Slow-consumer eviction**: the writer tracks delivered bytes per
//!   second after a grace window; a client draining slower than the
//!   configured floor (a slow-loris keeping the socket barely alive) is
//!   evicted.
//! * **Bounded send queue**: frames flow to the writer through a
//!   bounded channel, so a stalled socket backpressures the producer
//!   instead of buffering the whole benchmark in memory.
//! * **Graceful drain**: [`WireServer::drain`] stops admission, lets
//!   every in-flight connection finish its current unit, sends a
//!   resumable [`Frame::Evict`] at the unit boundary, and reports
//!   whether the fleet drained inside the deadline. Clients resume from
//!   their journal watermarks on reconnect.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::frame::{read_frame, EvictReason, Frame};
use crate::plan::ServePlan;

/// Tuning for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent admitted connections cap.
    pub max_connections: usize,
    /// Token-bucket burst capacity for admission.
    pub accept_burst: u32,
    /// Token-bucket refill rate, tokens per second.
    pub accept_refill_per_sec: u32,
    /// Suggested client backoff carried in Retry frames, milliseconds.
    pub retry_after_ms: u32,
    /// Suggested client backoff carried in drain Evicts, milliseconds.
    pub resume_after_ms: u32,
    /// Per-socket read deadline (Hello must arrive within it).
    pub read_timeout: Duration,
    /// Per-socket write deadline for one queued write.
    pub write_timeout: Duration,
    /// Bounded send-queue depth, in frames.
    pub send_queue_depth: usize,
    /// Slow-consumer floor: evict a connection draining below this many
    /// bytes per second once the grace window has passed. Zero disables
    /// the check.
    pub min_bytes_per_sec: u64,
    /// Grace window before the slow-consumer floor applies.
    pub slow_grace: Duration,
    /// Optional pacing delay between units (keeps connections in
    /// flight long enough for drain and chaos tests to observe them).
    pub pace_per_unit: Option<Duration>,
    /// Crash hook: hard-kill the whole server the moment its global
    /// `units_sent` counter reaches this value — no Evict, no Bye,
    /// every socket torn down mid-session. This is the wire-level
    /// crash-anywhere probe from the *server* side: sweeping it across
    /// every delivered-unit boundary proves clients converge to
    /// byte-identical payloads no matter where a mirror dies.
    pub kill_after_units: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            accept_burst: 32,
            accept_refill_per_sec: 64,
            retry_after_ms: 100,
            resume_after_ms: 50,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            send_queue_depth: 8,
            min_bytes_per_sec: 0,
            slow_grace: Duration::from_secs(2),
            pace_per_unit: None,
            kill_after_units: None,
        }
    }
}

/// Monotonic counters, snapshotted by [`WireServer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted at the socket level.
    pub accepted: u64,
    /// Connections admitted past the token bucket.
    pub admitted: u64,
    /// Connections turned away with a Retry frame.
    pub retried: u64,
    /// Sessions that resumed from a nonzero watermark.
    pub resumed: u64,
    /// Connections evicted as slow consumers (floor or write timeout).
    pub evicted_slow: u64,
    /// Connections evicted by drain at a unit boundary.
    pub evicted_drain: u64,
    /// Connections rejected as incompatible (bad Hello).
    pub incompatible: u64,
    /// Sessions that streamed to a Bye.
    pub completed: u64,
    /// Unit frames sent.
    pub units_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
}

#[derive(Default)]
struct StatsInner {
    accepted: AtomicU64,
    admitted: AtomicU64,
    retried: AtomicU64,
    resumed: AtomicU64,
    evicted_slow: AtomicU64,
    evicted_drain: AtomicU64,
    incompatible: AtomicU64,
    completed: AtomicU64,
    units_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

/// Outcome of a graceful drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// True when every connection reached a unit boundary and exited
    /// before the deadline, without force-closing any socket.
    pub clean: bool,
    /// Connections in flight when the drain began.
    pub in_flight_at_drain: usize,
    /// Connections still alive when the deadline forced their sockets
    /// closed (zero on a clean drain).
    pub forced: usize,
    /// Wall-clock time the drain took.
    pub elapsed: Duration,
}

struct Shared {
    plans: HashMap<String, Arc<ServePlan>>,
    config: ServerConfig,
    stats: StatsInner,
    draining: AtomicBool,
    killed: AtomicBool,
    active: AtomicUsize,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// Locks the live-connection registry, recovering from poison: a
/// connection thread that panicked while holding the lock must not
/// wedge `stats()`, `drain()`, or `kill()` for the whole server. The
/// registry's only invariant — entries map conn ids to their sockets —
/// cannot be torn by a mid-update panic (insert/remove are atomic on
/// `HashMap`), so the poisoned guard's data is safe to keep using.
fn lock_conns(shared: &Shared) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
    shared.conns.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    /// A hard crash: tear down every live socket with no farewell
    /// frame. Unlike drain, nothing reaches a unit boundary first —
    /// this models `kill -9`, not graceful shutdown.
    fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        self.draining.store(true, Ordering::SeqCst);
        let conns = lock_conns(self);
        for stream in conns.values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The server: bind, serve until [`WireServer::drain`].
pub struct WireServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind(
        addr: &str,
        plans: Vec<ServePlan>,
        config: ServerConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            plans: plans
                .into_iter()
                .map(|p| (p.benchmark.clone(), Arc::new(p)))
                .collect(),
            config,
            stats: StatsInner::default(),
            draining: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(WireServer {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently admitted and streaming.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// A stats snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        ServerStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            admitted: s.admitted.load(Ordering::Relaxed),
            retried: s.retried.load(Ordering::Relaxed),
            resumed: s.resumed.load(Ordering::Relaxed),
            evicted_slow: s.evicted_slow.load(Ordering::Relaxed),
            evicted_drain: s.evicted_drain.load(Ordering::Relaxed),
            incompatible: s.incompatible.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            units_sent: s.units_sent.load(Ordering::Relaxed),
            bytes_sent: s.bytes_sent.load(Ordering::Relaxed),
        }
    }

    /// Hard-kills the server: stops admission and tears down every
    /// live socket immediately, with no Evict or Bye. Clients observe
    /// a mid-stream reset and fail over; their journals still hold
    /// every unit delivered before the kill, because watermarks only
    /// ever advance at verified unit boundaries. The fleet supervisor
    /// uses this to model a mirror crash.
    pub fn kill(&self) {
        self.shared.kill();
    }

    /// True once [`WireServer::kill`] (or the
    /// [`ServerConfig::kill_after_units`] crash hook) has fired.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.shared.killed.load(Ordering::SeqCst)
    }

    /// Gracefully drains: stops admission, lets in-flight connections
    /// finish their current unit and receive a resumable Evict, then
    /// waits up to `deadline`. Connections still alive at the deadline
    /// have their sockets force-closed and the drain is reported
    /// unclean.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        let started = Instant::now();
        let in_flight = self.shared.active.load(Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let mut forced = 0;
        loop {
            if self.shared.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            if started.elapsed() >= deadline {
                let conns = lock_conns(&self.shared);
                for stream in conns.values() {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                forced = self.shared.active.load(Ordering::SeqCst);
                drop(conns);
                // Give forced handlers a beat to observe the closed
                // socket and decrement the active count.
                let force_wait = Instant::now();
                while self.shared.active.load(Ordering::SeqCst) != 0
                    && force_wait.elapsed() < Duration::from_secs(2)
                {
                    std::thread::sleep(Duration::from_millis(5));
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        DrainReport {
            clean: forced == 0,
            in_flight_at_drain: in_flight,
            forced,
            elapsed: started.elapsed(),
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

struct TokenBucket {
    tokens_micro: u64,
    burst_micro: u64,
    refill_per_sec: u64,
    last: Instant,
}

impl TokenBucket {
    const SCALE: u64 = 1_000_000;

    fn new(burst: u32, refill_per_sec: u32) -> TokenBucket {
        TokenBucket {
            tokens_micro: u64::from(burst) * TokenBucket::SCALE,
            burst_micro: u64::from(burst) * TokenBucket::SCALE,
            refill_per_sec: u64::from(refill_per_sec),
            last: Instant::now(),
        }
    }

    fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let elapsed_micros =
            u64::try_from(now.duration_since(self.last).as_micros()).unwrap_or(u64::MAX);
        self.last = now;
        self.tokens_micro = self
            .tokens_micro
            .saturating_add(elapsed_micros.saturating_mul(self.refill_per_sec))
            .min(self.burst_micro);
        if self.tokens_micro >= TokenBucket::SCALE {
            self.tokens_micro -= TokenBucket::SCALE;
            true
        } else {
            false
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut bucket = TokenBucket::new(
        shared.config.accept_burst,
        shared.config.accept_refill_per_sec,
    );
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let at_capacity =
                    shared.active.load(Ordering::SeqCst) >= shared.config.max_connections;
                if at_capacity || !bucket.try_take() {
                    shared.stats.retried.fetch_add(1, Ordering::Relaxed);
                    send_and_close(
                        stream,
                        &Frame::Retry {
                            after_ms: shared.config.retry_after_ms,
                        },
                        shared.config.write_timeout,
                    );
                    continue;
                }
                shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::SeqCst);
                let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, conn_id, &conn_shared);
                    lock_conns(&conn_shared).remove(&conn_id);
                    conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn send_and_close(mut stream: TcpStream, frame: &Frame, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = stream.write_all(&frame.encode());
    let _ = stream.flush();
}

/// Why the producer stopped streaming.
enum StreamEnd {
    Completed,
    Drained,
    /// The server was hard-killed: say nothing, the socket is already
    /// dead.
    Killed,
    WriterGone,
}

fn handle_connection(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) {
    let cfg = &shared.config;
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    // Register for forced shutdown at the drain deadline; the accept
    // loop removes the entry when this handler returns, so the registry
    // never outgrows the live connection set.
    if let Ok(clone) = stream.try_clone() {
        lock_conns(shared).insert(conn_id, clone);
    }

    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let hello = match read_frame(&mut reader) {
        Ok(Frame::Hello {
            benchmark,
            ordering: _,
            resume,
            ..
        }) => (benchmark, resume),
        _ => {
            shared.stats.incompatible.fetch_add(1, Ordering::Relaxed);
            send_and_close(
                stream,
                &Frame::Evict {
                    reason: EvictReason::Incompatible,
                    resume_after_ms: 0,
                },
                cfg.write_timeout,
            );
            return;
        }
    };
    let (benchmark, resume) = hello;
    let Some(plan) = shared.plans.get(&benchmark).cloned() else {
        shared.stats.incompatible.fetch_add(1, Ordering::Relaxed);
        send_and_close(
            stream,
            &Frame::Evict {
                reason: EvictReason::Incompatible,
                resume_after_ms: 0,
            },
            cfg.write_timeout,
        );
        return;
    };

    let adverts = plan.negotiate(&resume);
    if adverts.iter().any(|a| a.start > 0) {
        shared.stats.resumed.fetch_add(1, Ordering::Relaxed);
    }

    // Writer thread behind a bounded queue: backpressure + deadlines +
    // the slow-consumer floor all live on this side of the channel.
    let (tx, rx): (SyncSender<Vec<u8>>, Receiver<Vec<u8>>) = sync_channel(cfg.send_queue_depth);
    let writer_shared = Arc::clone(shared);
    let writer_stream = stream;
    let writer = std::thread::spawn(move || write_loop(writer_stream, &rx, &writer_shared));

    let welcome = Frame::Welcome {
        generation: plan.generation,
        manifest_epoch: plan.manifest_epoch,
        manifest: plan.manifest.clone(),
        classes: adverts.clone(),
    };
    let mut end = if tx.send(welcome.encode()).is_err() {
        StreamEnd::WriterGone
    } else {
        stream_units(&plan, &adverts, &tx, shared)
    };

    let bytes: u64 = adverts
        .iter()
        .zip(plan.classes.iter())
        .flat_map(|(a, c)| c.units.iter().skip(a.start as usize))
        .map(|u| u.len() as u64)
        .sum();
    match end {
        StreamEnd::Completed => {
            let bye = Frame::Bye {
                classes: u32::try_from(plan.classes.len()).unwrap_or(u32::MAX),
                bytes,
            };
            if tx.send(bye.encode()).is_err() {
                end = StreamEnd::WriterGone;
            }
        }
        StreamEnd::Drained => {
            shared.stats.evicted_drain.fetch_add(1, Ordering::Relaxed);
            let evict = Frame::Evict {
                reason: EvictReason::Drain,
                resume_after_ms: cfg.resume_after_ms,
            };
            let _ = tx.send(evict.encode());
        }
        StreamEnd::Killed | StreamEnd::WriterGone => {}
    }
    drop(tx);
    let _ = writer.join();
    if matches!(end, StreamEnd::Completed) {
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
    }
}

fn stream_units(
    plan: &ServePlan,
    adverts: &[crate::frame::ClassAdvert],
    tx: &SyncSender<Vec<u8>>,
    shared: &Arc<Shared>,
) -> StreamEnd {
    for (ci, class) in plan.classes.iter().enumerate() {
        let start = adverts[ci].start as usize;
        for (ui, payload) in class.units.iter().enumerate().skip(start) {
            // A hard kill outranks everything and says nothing.
            if shared.killed.load(Ordering::SeqCst) {
                return StreamEnd::Killed;
            }
            // Drain is only honored here, between units: an in-flight
            // unit always finishes, so the client's journal watermark
            // lands exactly on a unit boundary.
            if shared.draining.load(Ordering::SeqCst) {
                return StreamEnd::Drained;
            }
            let frame = Frame::Unit {
                class: u32::try_from(ci).unwrap_or(u32::MAX),
                unit: u32::try_from(ui).unwrap_or(u32::MAX),
                payload: payload.clone(),
            };
            if tx.send(frame.encode()).is_err() {
                return StreamEnd::WriterGone;
            }
            let sent_now = shared.stats.units_sent.fetch_add(1, Ordering::Relaxed) + 1;
            shared
                .stats
                .bytes_sent
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            if shared
                .config
                .kill_after_units
                .is_some_and(|k| sent_now >= k)
            {
                // The seeded crash plan landed on this unit boundary:
                // die server-wide, right now.
                shared.kill();
                return StreamEnd::Killed;
            }
            if let Some(pace) = shared.config.pace_per_unit {
                std::thread::sleep(pace);
            }
        }
    }
    StreamEnd::Completed
}

fn write_loop(mut stream: TcpStream, rx: &Receiver<Vec<u8>>, shared: &Arc<Shared>) {
    let cfg = &shared.config;
    let started = Instant::now();
    let mut written = 0u64;
    for buf in rx.iter() {
        if stream.write_all(&buf).is_err() || stream.flush().is_err() {
            // Write deadline fired or the peer vanished: either way the
            // consumer is not keeping up. Dropping the receiver makes
            // the producer's next send fail, which tears the session
            // down at a frame boundary.
            shared.stats.evicted_slow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        written += buf.len() as u64;
        let elapsed = started.elapsed();
        if cfg.min_bytes_per_sec > 0 && elapsed >= cfg.slow_grace {
            let floor = u128::from(cfg.min_bytes_per_sec) * elapsed.as_millis() / 1000;
            if u128::from(written) < floor {
                shared.stats.evicted_slow.fetch_add(1, Ordering::Relaxed);
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, WireClient};
    use crate::manifest::UnitManifest;
    use crate::plan::ClassPlan;

    fn tiny_plan() -> ServePlan {
        let units = vec![vec![b"prelude bytes".to_vec(), b"method one".to_vec()]];
        let manifest = UnitManifest::from_payloads(&units, 7);
        ServePlan {
            benchmark: "tiny".to_owned(),
            generation: 0,
            manifest_epoch: 7,
            manifest: manifest.encode(),
            classes: vec![ClassPlan {
                epoch: 1,
                units: units.into_iter().next().expect("one class"),
            }],
        }
    }

    /// A handler thread that panics while holding the conns lock must
    /// not wedge the rest of the server: stats(), new sessions, kill(),
    /// and drain() all recover the poisoned guard and keep going.
    #[test]
    fn poisoned_conns_lock_does_not_wedge_the_server() {
        let server = WireServer::bind("127.0.0.1:0", vec![tiny_plan()], ServerConfig::default())
            .expect("bind");
        // Deliberately panic while holding the registry lock, the way a
        // buggy connection handler would.
        let poisoner = Arc::clone(&server.shared);
        let panicked = std::thread::spawn(move || {
            let _guard = poisoner.conns.lock().expect("first lock");
            panic!("deliberate: poison the conns registry");
        })
        .join();
        assert!(panicked.is_err(), "the poisoner must have panicked");
        assert!(server.shared.conns.is_poisoned(), "lock must be poisoned");
        // A full session still registers, streams, and cleans up
        // through the poisoned lock.
        let report = WireClient::new(ClientConfig::new(server.local_addr(), "tiny"))
            .run()
            .expect("session survives a poisoned registry");
        assert!(report.complete);
        // The handler bumps `completed` after the client has already
        // seen Bye; give it a beat.
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.stats().completed == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.stats().completed, 1);
        // kill() walks the registry; drain() force-closes through it.
        server.kill();
        assert!(server.is_killed());
        let drained = server.drain(Duration::from_secs(2));
        assert!(drained.clean, "nothing in flight: drain must be clean");
    }

    /// The kill_after_units crash hook dies at exactly the configured
    /// global unit boundary and says nothing — no Evict, no Bye.
    #[test]
    fn kill_after_units_crashes_at_the_boundary() {
        let config = ServerConfig {
            kill_after_units: Some(1),
            ..ServerConfig::default()
        };
        let server = WireServer::bind("127.0.0.1:0", vec![tiny_plan()], config).expect("bind");
        let mut client_config = ClientConfig::new(server.local_addr(), "tiny");
        client_config.max_attempts = 3;
        client_config.backoff_cap = Duration::from_millis(10);
        let err = WireClient::new(client_config)
            .run()
            .expect_err("a crashed single mirror cannot complete");
        assert!(matches!(err, crate::client::ClientError::Exhausted { .. }));
        assert!(server.is_killed());
        assert_eq!(server.stats().units_sent, 1, "died at the boundary");
        assert_eq!(server.stats().completed, 0);
        assert_eq!(server.stats().evicted_drain, 0, "no farewell frame");
    }

    #[test]
    fn token_bucket_enforces_burst_then_refills() {
        let mut b = TokenBucket::new(2, 1000);
        assert!(b.try_take());
        assert!(b.try_take());
        // The burst is spent; an immediate third take fails (refill in
        // a few nanoseconds is far below one token at 1000/s).
        assert!(!b.try_take());
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.try_take());
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1, 1000);
        std::thread::sleep(Duration::from_millis(5));
        // 5 ms at 1000 tokens/s would refill five tokens; the cap keeps
        // only the burst capacity of one available.
        assert!(b.try_take());
        assert!(!b.try_take());
    }
}
