//! The shared link / ordering / fault-knob vocabulary.
//!
//! Three surfaces accept scenario descriptions: the CLI simulator
//! (`nonstrict simulate --link modem --loss 500`), the wire server and
//! loadgen (`paper serve` / `paper loadgen`), and chaos repro files.
//! This module is the single parser for the names they share, so a
//! scenario moves between the simulated wire and the real one without
//! translation — the same `--link t1 --fault-seed 7 --loss 500`
//! spelling drives both.

use std::fmt;

/// Error parsing a shared config name or value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The link name is not in the table.
    UnknownLink(String),
    /// The ordering name is not in the table.
    UnknownOrdering(String),
    /// A fault-knob value failed to parse as its numeric type.
    BadValue {
        /// The knob key.
        key: &'static str,
        /// The offending spelling.
        value: String,
    },
    /// A `--mirrors` entry failed to parse as a socket address.
    BadMirror(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownLink(name) => {
                write!(f, "unknown link {name:?}; use t1|modem")
            }
            ConfigError::UnknownOrdering(name) => {
                write!(f, "unknown ordering {name:?}; use scg|train|test|source")
            }
            ConfigError::BadValue { key, value } => {
                write!(f, "bad value {value:?} for --{key}")
            }
            ConfigError::BadMirror(entry) => {
                write!(
                    f,
                    "bad mirror {entry:?}; use comma-separated host:port addresses"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A named link: bandwidth expressed as machine cycles per byte, the
/// paper's §6.1 model. `nonstrict_netsim::Link` carries the same
/// numbers; its `by_name` delegates here so the table exists once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSpec {
    /// Canonical lower-case CLI spelling.
    pub name: &'static str,
    /// Machine cycles to deliver one byte (500 MHz Alpha).
    pub cycles_per_byte: u64,
}

impl LinkSpec {
    /// The paper's T1 line (~1 Mbit/s).
    pub const T1: LinkSpec = LinkSpec {
        name: "t1",
        cycles_per_byte: 3_815,
    };

    /// The paper's 28.8 Kbaud modem.
    pub const MODEM_28_8: LinkSpec = LinkSpec {
        name: "modem",
        cycles_per_byte: 134_698,
    };

    /// Every named link, in CLI-help order.
    pub const ALL: [LinkSpec; 2] = [LinkSpec::T1, LinkSpec::MODEM_28_8];

    /// Case-insensitive lookup by CLI/scenario label.
    #[must_use]
    pub fn by_name(name: &str) -> Option<LinkSpec> {
        LinkSpec::ALL
            .iter()
            .copied()
            .find(|l| l.name.eq_ignore_ascii_case(name))
    }

    /// [`LinkSpec::by_name`] with the canonical CLI error.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownLink`] for names outside the table.
    pub fn parse(name: &str) -> Result<LinkSpec, ConfigError> {
        LinkSpec::by_name(name).ok_or_else(|| ConfigError::UnknownLink(name.to_owned()))
    }
}

/// The ordering vocabulary: CLI spelling ↔ the wire code a Hello frame
/// carries. Codes are wire-stable; never renumber.
pub const ORDERINGS: [(&str, u8); 4] = [("scg", 0), ("train", 1), ("test", 2), ("source", 3)];

/// The wire code for an ordering spelling.
///
/// # Errors
///
/// [`ConfigError::UnknownOrdering`] for spellings outside the table.
pub fn ordering_code(name: &str) -> Result<u8, ConfigError> {
    ORDERINGS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, c)| c)
        .ok_or_else(|| ConfigError::UnknownOrdering(name.to_owned()))
}

/// The canonical spelling for a wire ordering code.
#[must_use]
pub fn ordering_name(code: u8) -> Option<&'static str> {
    ORDERINGS.iter().find(|(_, c)| *c == code).map(|&(n, _)| n)
}

/// Parses a `--mirrors` spec: comma-separated `host:port` socket
/// addresses, in failover-priority order (the first entry is the
/// preferred mirror on equal health). Whitespace around entries is
/// tolerated; empty entries are not.
///
/// # Errors
///
/// [`ConfigError::BadMirror`] for an empty spec or any entry that is
/// not a socket address.
pub fn parse_mirrors(spec: &str) -> Result<Vec<std::net::SocketAddr>, ConfigError> {
    let mirrors: Vec<std::net::SocketAddr> = spec
        .split(',')
        .map(|entry| {
            entry
                .trim()
                .parse()
                .map_err(|_| ConfigError::BadMirror(entry.trim().to_owned()))
        })
        .collect::<Result<_, _>>()?;
    if mirrors.is_empty() {
        return Err(ConfigError::BadMirror(spec.to_owned()));
    }
    Ok(mirrors)
}

/// The six shared fault knobs, exactly as the simulator spells them:
/// `--fault-seed` plus five parts-per-million rates. The simulator maps
/// them to `FaultConfig`; the chaos proxy maps them to socket-level
/// faults (loss → mid-frame cut, drop → connection abort, corrupt →
/// byte flip, droop → stall, semantic → frame reorder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultKnobs {
    /// `--fault-seed`: deterministic seed for the fault stream.
    pub seed: u64,
    /// `--loss PPM`: per-unit (per-frame) cut probability.
    pub loss_pm: u32,
    /// `--drop PPM`: connection-abort probability.
    pub drop_pm: u32,
    /// `--corrupt PPM`: byte-corruption probability.
    pub corrupt_pm: u32,
    /// `--droop PPM`: stall probability.
    pub droop_pm: u32,
    /// `--semantic PPM`: frame-reorder probability.
    pub semantic_pm: u32,
}

impl FaultKnobs {
    /// The CLI keys this struct accepts, in help order. Every surface
    /// that parses fault flags iterates this array — adding a knob here
    /// adds it to the simulator, the loadgen, and the chaos proxy at
    /// once.
    pub const KEYS: [&'static str; 6] =
        ["fault-seed", "loss", "drop", "corrupt", "droop", "semantic"];

    /// Applies one CLI `key=value` pair. Returns `false` (untouched)
    /// when `key` is not a fault knob, so callers can chain other
    /// vocabularies.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadValue`] when the value fails to parse.
    pub fn set(&mut self, key: &str, value: &str) -> Result<bool, ConfigError> {
        fn num<T: std::str::FromStr>(key: &'static str, value: &str) -> Result<T, ConfigError> {
            value.parse().map_err(|_| ConfigError::BadValue {
                key,
                value: value.to_owned(),
            })
        }
        match key {
            "fault-seed" => self.seed = num("fault-seed", value)?,
            "loss" => self.loss_pm = num("loss", value)?,
            "drop" => self.drop_pm = num("drop", value)?,
            "corrupt" => self.corrupt_pm = num("corrupt", value)?,
            "droop" => self.droop_pm = num("droop", value)?,
            "semantic" => self.semantic_pm = num("semantic", value)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// True when every rate is zero — no fault can ever fire,
    /// regardless of seed.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.loss_pm == 0
            && self.drop_pm == 0
            && self.corrupt_pm == 0
            && self.droop_pm == 0
            && self.semantic_pm == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_table_matches_paper_constants() {
        assert_eq!(LinkSpec::by_name("t1").unwrap().cycles_per_byte, 3_815);
        assert_eq!(LinkSpec::by_name("T1").unwrap().cycles_per_byte, 3_815);
        assert_eq!(LinkSpec::by_name("Modem").unwrap().cycles_per_byte, 134_698);
        assert!(LinkSpec::by_name("dsl").is_none());
        assert_eq!(
            LinkSpec::parse("dsl"),
            Err(ConfigError::UnknownLink("dsl".to_owned()))
        );
    }

    #[test]
    fn ordering_codes_round_trip_and_stay_stable() {
        for (name, code) in ORDERINGS {
            assert_eq!(ordering_code(name).unwrap(), code);
            assert_eq!(ordering_name(code).unwrap(), name);
        }
        assert_eq!(ordering_code("scg").unwrap(), 0);
        assert!(ordering_code("alphabetical").is_err());
        assert!(ordering_name(200).is_none());
    }

    #[test]
    fn fault_knobs_accept_the_simulator_vocabulary() {
        let mut fk = FaultKnobs::default();
        assert!(fk.is_quiet());
        for key in FaultKnobs::KEYS {
            assert!(fk.set(key, "7").unwrap(), "key {key} not recognised");
        }
        assert_eq!(fk.seed, 7);
        assert_eq!(fk.loss_pm, 7);
        assert_eq!(fk.semantic_pm, 7);
        assert!(!fk.is_quiet());
        assert!(!fk.set("link", "t1").unwrap());
        assert!(matches!(
            fk.set("loss", "many"),
            Err(ConfigError::BadValue { key: "loss", .. })
        ));
    }

    #[test]
    fn mirrors_parse_in_order_and_fail_closed() {
        let mirrors = parse_mirrors("127.0.0.1:7001, 127.0.0.1:7002,127.0.0.1:7003").unwrap();
        assert_eq!(mirrors.len(), 3);
        assert_eq!(mirrors[0].port(), 7001);
        assert_eq!(mirrors[2].port(), 7003);
        assert!(matches!(
            parse_mirrors("127.0.0.1:7001,,127.0.0.1:7002"),
            Err(ConfigError::BadMirror(_))
        ));
        assert!(matches!(
            parse_mirrors("not-an-addr"),
            Err(ConfigError::BadMirror(_))
        ));
        assert!(matches!(parse_mirrors(""), Err(ConfigError::BadMirror(_))));
    }

    #[test]
    fn seed_alone_is_still_quiet() {
        let mut fk = FaultKnobs::default();
        fk.set("fault-seed", "99").unwrap();
        assert!(fk.is_quiet());
    }
}
