//! The resumable wire client.
//!
//! The client is the protocol's fault domain: everything the chaos
//! proxy throws at the stream — torn frames, bit flips, stalls, aborts,
//! reordering — lands here, and the recovery story is always the same
//! **fail-closed** move: drop the connection, keep the journal
//! watermarks (which only ever advance at verified unit boundaries),
//! back off with capped exponential delay, reconnect, and offer the
//! watermarks in the next Hello. A unit is recorded exactly once, in
//! order, CRC-verified, or the session dies having recorded nothing for
//! it — the same invariant the simulator's journal enforces at cycle
//! granularity.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::crc::crc32;
use crate::frame::{read_frame, EvictReason, Frame, FrameError, ResumeEntry};

/// Tuning for one [`WireClient`] session.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Benchmark to request.
    pub benchmark: String,
    /// Ordering code (see [`crate::config::ordering_code`]).
    pub ordering: u8,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-frame read deadline (a stalled stream turns into a
    /// reconnect, not a hang).
    pub read_timeout: Duration,
    /// Total connection attempts before giving up.
    pub max_attempts: u32,
    /// First reconnect backoff.
    pub backoff_base: Duration,
    /// Backoff cap (exponential growth stops here).
    pub backoff_cap: Duration,
    /// Test hook: deliberately drop the connection once, after this
    /// many units have been delivered in total — the wire-level
    /// crash-anywhere probe.
    pub disconnect_after_units: Option<u64>,
    /// Keep full unit payloads in the report (the differential test
    /// feeds them back through the class-file stream loader).
    pub keep_payloads: bool,
}

impl ClientConfig {
    /// A config with test-friendly defaults for `addr`/`benchmark`.
    #[must_use]
    pub fn new(addr: SocketAddr, benchmark: &str) -> ClientConfig {
        ClientConfig {
            addr,
            benchmark: benchmark.to_owned(),
            ordering: 0,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            max_attempts: 10,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(100),
            disconnect_after_units: None,
            keep_payloads: false,
        }
    }
}

/// Why a session failed for good.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every allowed attempt was spent without completing.
    Exhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// The server declared the Hello incompatible (unknown benchmark or
    /// protocol mismatch) — retrying cannot help.
    Incompatible,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts } => {
                write!(f, "gave up after {attempts} connection attempts")
            }
            ClientError::Incompatible => write!(f, "server rejected the session as incompatible"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What one completed session looked like.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClientReport {
    /// Per-class delivered-unit watermarks.
    pub delivered: Vec<u32>,
    /// Per-class unit totals advertised by the server.
    pub units: Vec<u32>,
    /// Per-class layout epochs.
    pub epochs: Vec<u32>,
    /// CRC32 of every delivered unit payload, per class in unit order.
    pub unit_crcs: Vec<Vec<u32>>,
    /// Full unit payloads when [`ClientConfig::keep_payloads`] is set.
    pub payloads: Option<Vec<Vec<Vec<u8>>>>,
    /// Manifest epoch pinned from the first Welcome.
    pub manifest_epoch: u64,
    /// CRC32 of the pinned manifest bytes.
    pub manifest_crc: u32,
    /// Connection attempts made (including the successful ones).
    pub connects: u32,
    /// Admission Retry frames honored.
    pub admission_retries: u32,
    /// Evictions honored (drain or slow-consumer).
    pub evictions: u32,
    /// Stream faults survived: torn frames, CRC mismatches, timeouts,
    /// resets — anything that forced a fail-closed reconnect.
    pub stream_faults: u32,
    /// Protocol-order violations observed (out-of-order or out-of-range
    /// units) — each one forced a reconnect.
    pub order_violations: u32,
    /// Payload bytes accepted into the journal.
    pub bytes: u64,
    /// True when every class reached its advertised unit total.
    pub complete: bool,
}

#[derive(Clone, Default)]
struct ClassState {
    epoch: u32,
    units: u32,
    delivered: u32,
    crcs: Vec<u32>,
    sizes: Vec<u32>,
    payloads: Vec<Vec<u8>>,
}

impl ClassState {
    fn bytes(&self) -> u64 {
        self.sizes.iter().map(|&s| u64::from(s)).sum()
    }
}

/// The client session driver.
pub struct WireClient {
    config: ClientConfig,
    classes: Vec<ClassState>,
    pinned_manifest: Option<(u64, u32)>,
    report: ClientReport,
    disconnect_fired: bool,
    delivered_total: u64,
}

enum Attempt {
    Done,
    ReconnectAfter(Duration),
    Fatal(ClientError),
}

impl WireClient {
    /// A fresh session for `config`.
    #[must_use]
    pub fn new(config: ClientConfig) -> WireClient {
        WireClient {
            config,
            classes: Vec::new(),
            pinned_manifest: None,
            report: ClientReport::default(),
            disconnect_fired: false,
            delivered_total: 0,
        }
    }

    /// Runs the session to completion: connect, resume from watermarks,
    /// survive faults by reconnecting with capped backoff.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] when `max_attempts` connections all
    /// fail to finish; [`ClientError::Incompatible`] on a server-side
    /// rejection that retrying cannot fix.
    pub fn run(mut self) -> Result<ClientReport, ClientError> {
        let mut consecutive_failures = 0u32;
        while self.report.connects < self.config.max_attempts {
            self.report.connects += 1;
            match self.attempt() {
                Attempt::Done => {
                    self.finish_report();
                    return Ok(self.report);
                }
                Attempt::ReconnectAfter(delay) => {
                    consecutive_failures += 1;
                    let backoff = backoff_delay(
                        self.config.backoff_base,
                        self.config.backoff_cap,
                        consecutive_failures,
                    );
                    std::thread::sleep(delay.max(backoff).min(self.config.backoff_cap));
                }
                Attempt::Fatal(e) => return Err(e),
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.report.connects,
        })
    }

    fn attempt(&mut self) -> Attempt {
        let mut stream =
            match TcpStream::connect_timeout(&self.config.addr, self.config.connect_timeout) {
                Ok(s) => s,
                Err(_) => {
                    self.report.stream_faults += 1;
                    return Attempt::ReconnectAfter(Duration::ZERO);
                }
            };
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
            || stream
                .set_write_timeout(Some(self.config.read_timeout))
                .is_err()
        {
            return Attempt::ReconnectAfter(Duration::ZERO);
        }

        let hello = Frame::Hello {
            version: crate::frame::PROTOCOL_VERSION,
            benchmark: self.config.benchmark.clone(),
            ordering: self.config.ordering,
            resume: self.watermarks(),
        };
        if stream.write_all(&hello.encode()).is_err() || stream.flush().is_err() {
            self.report.stream_faults += 1;
            return Attempt::ReconnectAfter(Duration::ZERO);
        }

        // First response decides the session: Welcome, Retry, or Evict.
        let mut expected: Vec<u32> = match read_frame(&mut stream) {
            Ok(Frame::Welcome {
                manifest_epoch,
                manifest,
                classes,
            }) => match self.adopt_welcome(manifest_epoch, &manifest, &classes) {
                Some(starts) => starts,
                None => return Attempt::ReconnectAfter(Duration::ZERO),
            },
            Ok(Frame::Retry { after_ms }) => {
                self.report.admission_retries += 1;
                return Attempt::ReconnectAfter(Duration::from_millis(u64::from(after_ms)));
            }
            Ok(Frame::Evict {
                reason: EvictReason::Incompatible,
                ..
            }) => return Attempt::Fatal(ClientError::Incompatible),
            Ok(Frame::Evict {
                resume_after_ms, ..
            }) => {
                self.report.evictions += 1;
                return Attempt::ReconnectAfter(Duration::from_millis(u64::from(resume_after_ms)));
            }
            Ok(_) => {
                self.report.order_violations += 1;
                return Attempt::ReconnectAfter(Duration::ZERO);
            }
            Err(e) => return self.stream_fault(e),
        };

        loop {
            match read_frame(&mut stream) {
                Ok(Frame::Unit {
                    class,
                    unit,
                    payload,
                }) => {
                    let ci = class as usize;
                    if ci >= self.classes.len() || unit != expected[ci] {
                        // Out-of-order or out-of-range: fail closed.
                        // Nothing is journaled; the reconnect resumes
                        // from the last good boundary.
                        self.report.order_violations += 1;
                        return Attempt::ReconnectAfter(Duration::ZERO);
                    }
                    self.accept_unit(ci, &payload);
                    expected[ci] += 1;
                    if let Some(k) = self.config.disconnect_after_units {
                        if !self.disconnect_fired && self.delivered_total >= k {
                            // The crash-anywhere probe: die exactly at
                            // this unit boundary, once.
                            self.disconnect_fired = true;
                            self.report.stream_faults += 1;
                            return Attempt::ReconnectAfter(Duration::ZERO);
                        }
                    }
                }
                Ok(Frame::Evict {
                    reason: EvictReason::Incompatible,
                    ..
                }) => return Attempt::Fatal(ClientError::Incompatible),
                Ok(Frame::Evict {
                    resume_after_ms, ..
                }) => {
                    self.report.evictions += 1;
                    return Attempt::ReconnectAfter(Duration::from_millis(u64::from(
                        resume_after_ms,
                    )));
                }
                Ok(Frame::Bye { .. }) => {
                    if self.classes.iter().all(|c| c.delivered == c.units) {
                        return Attempt::Done;
                    }
                    // A premature Bye is a protocol violation; keep the
                    // watermarks and try again.
                    self.report.order_violations += 1;
                    return Attempt::ReconnectAfter(Duration::ZERO);
                }
                Ok(_) => {
                    self.report.order_violations += 1;
                    return Attempt::ReconnectAfter(Duration::ZERO);
                }
                Err(e) => return self.stream_fault(e),
            }
        }
    }

    fn stream_fault(&mut self, _e: FrameError) -> Attempt {
        self.report.stream_faults += 1;
        Attempt::ReconnectAfter(Duration::ZERO)
    }

    fn watermarks(&self) -> Vec<ResumeEntry> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.delivered > 0)
            .map(|(ci, c)| ResumeEntry {
                class: u32::try_from(ci).unwrap_or(u32::MAX),
                epoch: c.epoch,
                delivered: c.delivered,
            })
            .collect()
    }

    /// Applies a Welcome: pins (or re-checks) the manifest, reconciles
    /// per-class epochs and negotiated starts against local state.
    /// Returns the per-class expected next unit, or `None` to
    /// fail-closed reconnect.
    fn adopt_welcome(
        &mut self,
        manifest_epoch: u64,
        manifest: &[u8],
        adverts: &[crate::frame::ClassAdvert],
    ) -> Option<Vec<u32>> {
        let manifest_crc = crc32(manifest);
        match self.pinned_manifest {
            None => {
                self.pinned_manifest = Some((manifest_epoch, manifest_crc));
                self.report.manifest_epoch = manifest_epoch;
                self.report.manifest_crc = manifest_crc;
            }
            Some((epoch, crc)) => {
                if epoch != manifest_epoch || crc != manifest_crc {
                    // The layout changed under us (restructure epoch
                    // bump). Everything delivered so far is stale:
                    // fail closed, restart from nothing.
                    self.classes.clear();
                    self.delivered_total = 0;
                    self.pinned_manifest = Some((manifest_epoch, manifest_crc));
                    self.report.manifest_epoch = manifest_epoch;
                    self.report.manifest_crc = manifest_crc;
                }
            }
        }
        if self.classes.is_empty() {
            self.classes = vec![ClassState::default(); adverts.len()];
        } else if self.classes.len() != adverts.len() {
            self.report.order_violations += 1;
            return None;
        }
        let mut expected = Vec::with_capacity(adverts.len());
        for (ci, advert) in adverts.iter().enumerate() {
            let class = &mut self.classes[ci];
            if class.delivered == 0 {
                class.epoch = advert.epoch;
                class.units = advert.units;
            } else if class.epoch != advert.epoch || class.units != advert.units {
                // Epoch moved for a class we hold bytes of: discard the
                // stale bytes and restart the class.
                self.delivered_total -= u64::from(class.delivered);
                *class = ClassState {
                    epoch: advert.epoch,
                    units: advert.units,
                    ..ClassState::default()
                };
            }
            if advert.start > class.delivered {
                // The server claims we hold units we never journaled.
                self.report.order_violations += 1;
                return None;
            }
            // advert.start <= delivered: the server resumes from its
            // negotiated (possibly more conservative) start; re-receipt
            // of units we already hold would arrive out of order, so
            // truncate local state back to the negotiated start.
            if advert.start < class.delivered {
                let dropped = class.delivered - advert.start;
                self.delivered_total -= u64::from(dropped);
                class.crcs.truncate(advert.start as usize);
                class.sizes.truncate(advert.start as usize);
                class.payloads.truncate(advert.start as usize);
                class.delivered = advert.start;
            }
            expected.push(advert.start);
        }
        Some(expected)
    }

    fn accept_unit(&mut self, ci: usize, payload: &[u8]) {
        let class = &mut self.classes[ci];
        class.crcs.push(crc32(payload));
        class
            .sizes
            .push(u32::try_from(payload.len()).unwrap_or(u32::MAX));
        if self.config.keep_payloads {
            class.payloads.push(payload.to_vec());
        }
        class.delivered += 1;
        self.delivered_total += 1;
    }

    fn finish_report(&mut self) {
        self.report.bytes = self.classes.iter().map(ClassState::bytes).sum();
        self.report.delivered = self.classes.iter().map(|c| c.delivered).collect();
        self.report.units = self.classes.iter().map(|c| c.units).collect();
        self.report.epochs = self.classes.iter().map(|c| c.epoch).collect();
        self.report.unit_crcs = self.classes.iter().map(|c| c.crcs.clone()).collect();
        if self.config.keep_payloads {
            self.report.payloads = Some(self.classes.iter().map(|c| c.payloads.clone()).collect());
        }
        self.report.complete =
            !self.classes.is_empty() && self.classes.iter().all(|c| c.delivered == c.units);
    }
}

fn backoff_delay(base: Duration, cap: Duration, consecutive_failures: u32) -> Duration {
    let shift = consecutive_failures.saturating_sub(1).min(16);
    base.saturating_mul(1u32 << shift).min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(50);
        assert_eq!(backoff_delay(base, cap, 1), Duration::from_millis(2));
        assert_eq!(backoff_delay(base, cap, 2), Duration::from_millis(4));
        assert_eq!(backoff_delay(base, cap, 3), Duration::from_millis(8));
        assert_eq!(backoff_delay(base, cap, 10), cap);
        assert_eq!(backoff_delay(base, cap, 33), cap);
    }
}
