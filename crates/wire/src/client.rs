//! The resumable, mirror-fleet wire client.
//!
//! The client is the protocol's fault domain: everything the chaos
//! proxy throws at the stream — torn frames, bit flips, stalls, aborts,
//! reordering — lands here, and the recovery story is always the same
//! **fail-closed** move: drop the connection, keep the journal
//! watermarks (which only ever advance at verified unit boundaries),
//! back off with capped exponential delay, reconnect, and offer the
//! watermarks in the next Hello. A unit is recorded exactly once, in
//! order, CRC-verified, or the session dies having recorded nothing for
//! it — the same invariant the simulator's journal enforces at cycle
//! granularity.
//!
//! PR 9 widens the fault domain from one server to a **fleet of
//! mirrors**, and the client grows the two defenses the simulator's
//! replica/Byzantine tiers already proved out:
//!
//! * **Failover.** Each mirror carries an EWMA health score (same ppm
//!   semantics as `netsim::replica`: decay on fault, fold goodput in on
//!   every delivered unit) and a per-mirror capped backoff clock. A
//!   reconnect goes to the healthiest eligible mirror; the resume
//!   watermarks in the Hello make the hand-off seamless, because
//!   negotiation is the same epoch-fenced `ServePlan` logic regardless
//!   of which mirror answers. The session fails for good only when
//!   every mirror is quarantined or the attempt budget is spent.
//! * **Integrity.** The first `Welcome` pins the NSUM manifest
//!   (trust-on-first-use, exactly like the simulator's Byzantine
//!   layer), and from then on every delivered unit must match its
//!   pinned byte-level content digest, and every later `Welcome` must
//!   agree with the pin. A mirror that diverges *under the pinned
//!   generation* — a different manifest, or a unit whose bytes don't
//!   hash to the manifest entry — is **equivocating** and is
//!   quarantined: permanently removed from the rotation, never
//!   contributing a delivered unit. Only a `Welcome` carrying a
//!   *newer* restructure generation may replace the pin (a live
//!   rollover), and it discards every unit held under the old one —
//!   a session never splices bytes from two layouts.
//!
//! PR 10 widens the fault domain again, from connection death to
//! **process** death: an optional [`SessionStore`] hook persists the
//! manifest pin, per-unit watermarks, and unit bytes as they are
//! accepted, and a fresh client warm-resumes from whatever verified
//! prefix the store can prove after a kill. The store is untrusted on
//! reload — `nonstrict-store` re-verifies every cached unit against
//! the pinned manifest digest before it is offered back — so the
//! fail-closed invariant survives the round trip through disk.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::crc::crc32;
use crate::frame::{read_frame, ClassAdvert, EvictReason, Frame, FrameError, ResumeEntry};
use crate::manifest::{content_digest_of, UnitManifest};

/// Full health in parts-per-million — a mirror that has never faulted.
/// Same scale as `netsim::replica`'s goodput score.
pub const HEALTH_FULL_PPM: u32 = 1_000_000;

/// EWMA shift: each update folds in 1/8 new signal, 7/8 history —
/// mirrors `netsim::replica` exactly so the simulated and real failover
/// policies stay interchangeable.
const HEALTH_EWMA_SHIFT: u32 = 3;

/// One EWMA decay step after a fault. The step is floored at 1 so the
/// score converges to exactly zero instead of asymptotically hovering,
/// and saturating so zero stays zero.
#[must_use]
pub fn decay_health(health_ppm: u32) -> u32 {
    health_ppm.saturating_sub((health_ppm >> HEALTH_EWMA_SHIFT).max(1))
}

/// One EWMA goodput step after a verified delivered unit: fold a
/// full-health sample into the score. Bounded by [`HEALTH_FULL_PPM`]
/// for any input at or below it.
#[must_use]
pub fn boost_health(health_ppm: u32) -> u32 {
    health_ppm - (health_ppm >> HEALTH_EWMA_SHIFT) + (HEALTH_FULL_PPM >> HEALTH_EWMA_SHIFT)
}

/// A durable-store write failed mid-session. The client treats this
/// as process death: recording a unit without persisting it would let
/// an in-memory watermark run ahead of the journal, which is exactly
/// the divergence the store exists to prevent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreFault {
    /// The persistence hook that failed.
    pub op: &'static str,
    /// The underlying store error, stringified.
    pub detail: String,
}

/// One class of a warm-resumed session: the verified prefix a durable
/// store could prove after a process kill.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WarmClass {
    /// Layout epoch the prefix was delivered under.
    pub epoch: u32,
    /// Advertised unit total (0 when never welcomed).
    pub units: u32,
    /// CRC32 of each verified unit, in unit order; its length is the
    /// resumed delivered watermark.
    pub crcs: Vec<u32>,
    /// Size of each verified unit, in unit order.
    pub sizes: Vec<u32>,
    /// The verified unit payloads, in unit order.
    pub payloads: Vec<Vec<u8>>,
}

/// A warm-start snapshot: everything a [`SessionStore`] could verify
/// from its journal and cache. The client re-decodes and re-pins the
/// manifest bytes itself — the store proves integrity, the client
/// still owns the trust decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmSession {
    /// Restructure generation of the pinned manifest.
    pub generation: u32,
    /// The pinned manifest's encoded NSUM bytes.
    pub manifest: Vec<u8>,
    /// Per-class verified prefixes.
    pub classes: Vec<WarmClass>,
}

/// The client's durable-state hook. Implementations (see
/// `nonstrict-store`) persist the manifest pin, per-unit watermarks,
/// and unit bytes so a later process can warm-resume; every mutating
/// hook returns `Err` to signal that durability was lost and the
/// session must fail closed rather than run ahead of its journal.
pub trait SessionStore: Send {
    /// Recovers whatever verified state survives on disk. Integrity
    /// failures inside the store must fail closed to `None` (cold
    /// start) — never surface unverified bytes.
    fn warm_start(&mut self) -> Option<WarmSession>;

    /// A manifest was pinned (first Welcome, or a generation
    /// rollover re-pin).
    ///
    /// # Errors
    ///
    /// [`StoreFault`] when the pin could not be made durable.
    fn on_pin(&mut self, generation: u32, manifest: &[u8]) -> Result<(), StoreFault>;

    /// A unit passed every check and was accepted at the boundary.
    ///
    /// # Errors
    ///
    /// [`StoreFault`] when the unit could not be made durable.
    fn on_unit(
        &mut self,
        class: u32,
        unit: u32,
        epoch: u32,
        units: u32,
        payload: &[u8],
    ) -> Result<(), StoreFault>;

    /// A class's layout epoch moved: its held units were discarded.
    ///
    /// # Errors
    ///
    /// [`StoreFault`] when the reset could not be made durable.
    fn on_reset_class(&mut self, class: u32, epoch: u32, units: u32) -> Result<(), StoreFault>;

    /// Resume negotiation truncated a class back to `delivered`.
    ///
    /// # Errors
    ///
    /// [`StoreFault`] when the truncation could not be made durable.
    fn on_truncate(&mut self, class: u32, delivered: u32) -> Result<(), StoreFault>;

    /// A generation rollover discarded every held unit.
    ///
    /// # Errors
    ///
    /// [`StoreFault`] when the reset could not be made durable.
    fn on_reset_all(&mut self) -> Result<(), StoreFault>;

    /// The session completed every class.
    ///
    /// # Errors
    ///
    /// [`StoreFault`] when the completion record could not be made
    /// durable.
    fn on_complete(&mut self) -> Result<(), StoreFault>;
}

/// Tuning for one [`WireClient`] session.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Ordered mirror endpoints. Order is the tiebreak: equal health
    /// prefers the earlier mirror, so a single-entry list behaves
    /// exactly like the pre-fleet client.
    pub mirrors: Vec<SocketAddr>,
    /// Benchmark to request.
    pub benchmark: String,
    /// Ordering code (see [`crate::config::ordering_code`]).
    pub ordering: u8,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-frame read deadline (a stalled stream turns into a
    /// reconnect, not a hang).
    pub read_timeout: Duration,
    /// Total connection attempts before giving up.
    pub max_attempts: u32,
    /// First reconnect backoff (per mirror).
    pub backoff_base: Duration,
    /// Backoff cap (per-mirror exponential growth stops here).
    pub backoff_cap: Duration,
    /// Test hook: deliberately drop the connection once, after this
    /// many units have been delivered in total — the wire-level
    /// crash-anywhere probe.
    pub disconnect_after_units: Option<u64>,
    /// Test hook: die for good (typed [`ClientError::Killed`]) once
    /// this many units have been delivered in total — the *process*
    /// crash probe. Unlike `disconnect_after_units` the session does
    /// not reconnect; a warm restart from a [`SessionStore`] is the
    /// only way forward.
    pub kill_after_units: Option<u64>,
    /// Keep full unit payloads in the report (the differential test
    /// feeds them back through the class-file stream loader).
    pub keep_payloads: bool,
}

impl ClientConfig {
    /// A single-mirror config with test-friendly defaults — the
    /// pre-fleet client, unchanged.
    #[must_use]
    pub fn new(addr: SocketAddr, benchmark: &str) -> ClientConfig {
        ClientConfig::with_mirrors(vec![addr], benchmark)
    }

    /// A config for an ordered mirror fleet.
    #[must_use]
    pub fn with_mirrors(mirrors: Vec<SocketAddr>, benchmark: &str) -> ClientConfig {
        ClientConfig {
            mirrors,
            benchmark: benchmark.to_owned(),
            ordering: 0,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            max_attempts: 10,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(100),
            disconnect_after_units: None,
            kill_after_units: None,
            keep_payloads: false,
        }
    }
}

/// Why a session failed for good.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The config listed no mirrors at all.
    NoMirrors,
    /// Every allowed attempt was spent without completing.
    Exhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// Every mirror equivocated against the pinned manifest or served
    /// forged units — there is nowhere trustworthy left to fetch from,
    /// and fail-closed beats executing unverified bytes.
    AllMirrorsQuarantined {
        /// How many mirrors were quarantined (the whole fleet).
        quarantined: u32,
    },
    /// The server declared the Hello incompatible (unknown benchmark or
    /// protocol mismatch) — retrying cannot help.
    Incompatible,
    /// The process-kill probe fired ([`ClientConfig::kill_after_units`]):
    /// the session is dead mid-transfer and only a warm restart from
    /// its durable store can continue it.
    Killed {
        /// Units delivered when the kill fired.
        delivered: u64,
    },
    /// A durable-store write failed: the session fails closed rather
    /// than let in-memory watermarks run ahead of the journal.
    Store {
        /// The persistence hook that failed.
        op: &'static str,
        /// The underlying store error, stringified.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoMirrors => write!(f, "no mirrors configured"),
            ClientError::Exhausted { attempts } => {
                write!(f, "gave up after {attempts} connection attempts")
            }
            ClientError::AllMirrorsQuarantined { quarantined } => {
                write!(f, "all {quarantined} mirrors quarantined for equivocation")
            }
            ClientError::Incompatible => write!(f, "server rejected the session as incompatible"),
            ClientError::Killed { delivered } => {
                write!(f, "process killed after {delivered} delivered units")
            }
            ClientError::Store { op, detail } => {
                write!(f, "durable store failed at {op}: {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// What one completed session looked like.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClientReport {
    /// Per-class delivered-unit watermarks.
    pub delivered: Vec<u32>,
    /// Per-class unit totals advertised by the server.
    pub units: Vec<u32>,
    /// Per-class layout epochs.
    pub epochs: Vec<u32>,
    /// CRC32 of every delivered unit payload, per class in unit order.
    pub unit_crcs: Vec<Vec<u32>>,
    /// Full unit payloads when [`ClientConfig::keep_payloads`] is set.
    pub payloads: Option<Vec<Vec<Vec<u8>>>>,
    /// Restructure generation of the pinned manifest.
    pub generation: u32,
    /// Manifest epoch pinned from the first Welcome.
    pub manifest_epoch: u64,
    /// CRC32 of the pinned manifest bytes.
    pub manifest_crc: u32,
    /// Connection attempts made (including the successful ones).
    pub connects: u32,
    /// Reconnects that landed on a different mirror than the previous
    /// attempt.
    pub failovers: u32,
    /// Mirrors quarantined for equivocation or forged units.
    pub quarantines: u32,
    /// Units refused because their bytes did not hash to the pinned
    /// manifest digest (each one quarantined its mirror).
    pub digest_rejects: u32,
    /// Welcomes refused for carrying a manifest that diverged from the
    /// pin under the same generation.
    pub equivocations: u32,
    /// Welcomes refused for carrying an older generation than the pin
    /// (a lagging mirror — backed off, not quarantined).
    pub stale_welcomes: u32,
    /// Admission Retry frames honored.
    pub admission_retries: u32,
    /// Evictions honored (drain or slow-consumer).
    pub evictions: u32,
    /// Stream faults survived: torn frames, CRC mismatches, timeouts,
    /// resets — anything that forced a fail-closed reconnect.
    pub stream_faults: u32,
    /// Protocol-order violations observed (out-of-order or out-of-range
    /// units) — each one forced a reconnect.
    pub order_violations: u32,
    /// Units delivered by each configured mirror, in mirror order —
    /// where the bytes actually came from.
    pub mirror_units: Vec<u64>,
    /// Final EWMA health of each configured mirror, in mirror order
    /// (zero for quarantined mirrors).
    pub mirror_health: Vec<u32>,
    /// Payload bytes accepted into the journal.
    pub bytes: u64,
    /// Units restored from the durable store at warm start (already
    /// verified against the pinned manifest; never refetched).
    pub warm_units: u64,
    /// True when every class reached its advertised unit total.
    pub complete: bool,
}

#[derive(Clone, Default)]
struct ClassState {
    epoch: u32,
    units: u32,
    delivered: u32,
    crcs: Vec<u32>,
    sizes: Vec<u32>,
    payloads: Vec<Vec<u8>>,
}

impl ClassState {
    fn bytes(&self) -> u64 {
        self.sizes.iter().map(|&s| u64::from(s)).sum()
    }
}

/// Per-mirror rotation state: health, backoff clock, quarantine flag.
struct MirrorState {
    addr: SocketAddr,
    health_ppm: u32,
    failures: u32,
    not_before: Option<Instant>,
    quarantined: bool,
    units: u64,
}

impl MirrorState {
    fn new(addr: SocketAddr) -> MirrorState {
        MirrorState {
            addr,
            health_ppm: HEALTH_FULL_PPM,
            failures: 0,
            not_before: None,
            quarantined: false,
            units: 0,
        }
    }
}

/// The manifest pinned from the first Welcome: the session's one source
/// of truth about what honest bytes look like.
struct PinnedManifest {
    generation: u32,
    epoch: u64,
    crc: u32,
    /// Decoded per-class, per-unit content digests.
    digests: Vec<Vec<u32>>,
}

/// The client session driver.
pub struct WireClient {
    config: ClientConfig,
    classes: Vec<ClassState>,
    mirrors: Vec<MirrorState>,
    pin: Option<PinnedManifest>,
    report: ClientReport,
    disconnect_fired: bool,
    delivered_total: u64,
    store: Option<Box<dyn SessionStore>>,
}

enum Attempt {
    Done,
    /// Back off this mirror and reconnect (possibly elsewhere).
    /// `decay` distinguishes a fault (health drops) from polite
    /// admission pushback (health untouched).
    Backoff {
        hint: Duration,
        decay: bool,
    },
    /// This mirror diverged from the pinned manifest: remove it from
    /// the rotation permanently.
    Quarantine,
    Fatal(ClientError),
}

/// What a Welcome did to the pinned manifest.
enum Adopt {
    /// Consistent (or newly pinned): per-class expected next units.
    Go(Vec<u32>),
    /// Older generation than the pin: a lagging mirror.
    Stale,
    /// Same generation, different manifest: equivocation.
    Equivocation,
    /// Structurally impossible (undecodable manifest, advert/manifest
    /// shape mismatch, watermark regression).
    Violation,
    /// The durable store failed while persisting the pin or a reset:
    /// fail closed, the session is over.
    Broken(StoreFault),
}

impl WireClient {
    /// A fresh session for `config`.
    #[must_use]
    pub fn new(config: ClientConfig) -> WireClient {
        let mirrors = config
            .mirrors
            .iter()
            .copied()
            .map(MirrorState::new)
            .collect();
        WireClient {
            config,
            classes: Vec::new(),
            mirrors,
            pin: None,
            report: ClientReport::default(),
            disconnect_fired: false,
            delivered_total: 0,
            store: None,
        }
    }

    /// A session backed by a durable store: state recovered by
    /// [`SessionStore::warm_start`] seeds the session before the first
    /// connect, and every accepted unit is persisted at the boundary.
    #[must_use]
    pub fn with_store(config: ClientConfig, store: Box<dyn SessionStore>) -> WireClient {
        let mut client = WireClient::new(config);
        client.store = Some(store);
        client
    }

    /// Seeds the session from a warm-start snapshot. The manifest is
    /// re-decoded and re-pinned here — a snapshot whose manifest fails
    /// to decode is discarded wholesale (cold start), because nothing
    /// in it can be verified without the pin.
    fn apply_warm(&mut self, warm: WarmSession) {
        let Ok(decoded) = UnitManifest::decode(&warm.manifest) else {
            return;
        };
        let crc = crc32(&warm.manifest);
        self.report.generation = warm.generation;
        self.report.manifest_epoch = decoded.epoch;
        self.report.manifest_crc = crc;
        self.pin = Some(PinnedManifest {
            generation: warm.generation,
            epoch: decoded.epoch,
            crc,
            digests: decoded.unit_digests,
        });
        self.classes = warm
            .classes
            .iter()
            .map(|c| ClassState {
                epoch: c.epoch,
                units: c.units,
                delivered: u32::try_from(c.crcs.len()).unwrap_or(u32::MAX),
                crcs: c.crcs.clone(),
                sizes: c.sizes.clone(),
                payloads: if self.config.keep_payloads {
                    c.payloads.clone()
                } else {
                    Vec::new()
                },
            })
            .collect();
        self.delivered_total = self.classes.iter().map(|c| u64::from(c.delivered)).sum();
        self.report.warm_units = self.delivered_total;
    }

    /// Runs the session to completion: connect to the healthiest
    /// eligible mirror, resume from watermarks, survive faults by
    /// failing over with per-mirror capped backoff, and verify every
    /// unit against the pinned manifest.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] when `max_attempts` connections all
    /// fail to finish; [`ClientError::AllMirrorsQuarantined`] when
    /// every mirror equivocated; [`ClientError::Incompatible`] on a
    /// server-side rejection that retrying cannot fix;
    /// [`ClientError::NoMirrors`] on an empty mirror list.
    pub fn run(mut self) -> Result<ClientReport, ClientError> {
        if self.mirrors.is_empty() {
            return Err(ClientError::NoMirrors);
        }
        if let Some(mut store) = self.store.take() {
            let warm = store.warm_start();
            self.store = Some(store);
            if let Some(warm) = warm {
                self.apply_warm(warm);
            }
        }
        let mut last_mirror: Option<usize> = None;
        while self.report.connects < self.config.max_attempts {
            let Some(mi) = self.pick_mirror() else {
                return Err(ClientError::AllMirrorsQuarantined {
                    quarantined: u32::try_from(self.mirrors.len()).unwrap_or(u32::MAX),
                });
            };
            if let Some(not_before) = self.mirrors[mi].not_before.take() {
                let now = Instant::now();
                if not_before > now {
                    std::thread::sleep(not_before - now);
                }
            }
            self.report.connects += 1;
            if last_mirror.is_some_and(|prev| prev != mi) {
                self.report.failovers += 1;
            }
            last_mirror = Some(mi);
            match self.attempt(mi) {
                Attempt::Done => {
                    if let Some(store) = self.store.as_mut() {
                        if let Err(e) = store.on_complete() {
                            // The completion record never landed: the
                            // process is as good as dead at that write.
                            return Err(ClientError::Store {
                                op: e.op,
                                detail: e.detail,
                            });
                        }
                    }
                    self.finish_report();
                    return Ok(self.report);
                }
                Attempt::Backoff { hint, decay } => {
                    let mirror = &mut self.mirrors[mi];
                    if decay {
                        mirror.health_ppm = decay_health(mirror.health_ppm);
                    }
                    mirror.failures += 1;
                    let backoff = backoff_delay(
                        self.config.backoff_base,
                        self.config.backoff_cap,
                        mirror.failures,
                    );
                    let delay = hint.max(backoff).min(self.config.backoff_cap);
                    mirror.not_before = Some(Instant::now() + delay);
                }
                Attempt::Quarantine => {
                    let mirror = &mut self.mirrors[mi];
                    mirror.quarantined = true;
                    mirror.health_ppm = 0;
                    self.report.quarantines += 1;
                }
                Attempt::Fatal(e) => return Err(e),
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.report.connects,
        })
    }

    /// The next mirror to try: healthiest non-quarantined mirror whose
    /// backoff clock has expired (ties prefer the earlier mirror); if
    /// every survivor is backing off, the one eligible soonest. `None`
    /// only when the whole fleet is quarantined.
    fn pick_mirror(&self) -> Option<usize> {
        let now = Instant::now();
        let mut best_ready: Option<usize> = None;
        for (i, mirror) in self.mirrors.iter().enumerate() {
            if mirror.quarantined {
                continue;
            }
            if mirror.not_before.is_none_or(|nb| nb <= now)
                && best_ready.is_none_or(|b| mirror.health_ppm > self.mirrors[b].health_ppm)
            {
                best_ready = Some(i);
            }
        }
        if best_ready.is_some() {
            return best_ready;
        }
        self.mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.quarantined)
            .min_by_key(|(_, m)| m.not_before.unwrap_or(now))
            .map(|(i, _)| i)
    }

    fn attempt(&mut self, mi: usize) -> Attempt {
        let addr = self.mirrors[mi].addr;
        let mut stream = match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
            Ok(s) => s,
            Err(_) => {
                self.report.stream_faults += 1;
                return Attempt::Backoff {
                    hint: Duration::ZERO,
                    decay: true,
                };
            }
        };
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
            || stream
                .set_write_timeout(Some(self.config.read_timeout))
                .is_err()
        {
            return Attempt::Backoff {
                hint: Duration::ZERO,
                decay: true,
            };
        }

        let hello = Frame::Hello {
            version: crate::frame::PROTOCOL_VERSION,
            benchmark: self.config.benchmark.clone(),
            ordering: self.config.ordering,
            resume: self.watermarks(),
        };
        if stream.write_all(&hello.encode()).is_err() || stream.flush().is_err() {
            self.report.stream_faults += 1;
            return Attempt::Backoff {
                hint: Duration::ZERO,
                decay: true,
            };
        }

        // First response decides the session: Welcome, Retry, or Evict.
        let mut expected: Vec<u32> = match read_frame(&mut stream) {
            Ok(Frame::Welcome {
                generation,
                manifest_epoch,
                manifest,
                classes,
            }) => match self.adopt_welcome(generation, manifest_epoch, &manifest, &classes) {
                Adopt::Go(starts) => starts,
                Adopt::Stale => {
                    self.report.stale_welcomes += 1;
                    return Attempt::Backoff {
                        hint: Duration::ZERO,
                        decay: true,
                    };
                }
                Adopt::Equivocation => {
                    self.report.equivocations += 1;
                    return Attempt::Quarantine;
                }
                Adopt::Violation => {
                    self.report.order_violations += 1;
                    return Attempt::Backoff {
                        hint: Duration::ZERO,
                        decay: true,
                    };
                }
                Adopt::Broken(e) => {
                    return Attempt::Fatal(ClientError::Store {
                        op: e.op,
                        detail: e.detail,
                    })
                }
            },
            Ok(Frame::Retry { after_ms }) => {
                self.report.admission_retries += 1;
                // Polite pushback, not a fault: the mirror is healthy,
                // just busy — honor the hint without decaying it.
                return Attempt::Backoff {
                    hint: Duration::from_millis(u64::from(after_ms)),
                    decay: false,
                };
            }
            Ok(Frame::Evict {
                reason: EvictReason::Incompatible,
                ..
            }) => return Attempt::Fatal(ClientError::Incompatible),
            Ok(Frame::Evict {
                resume_after_ms, ..
            }) => {
                self.report.evictions += 1;
                return Attempt::Backoff {
                    hint: Duration::from_millis(u64::from(resume_after_ms)),
                    decay: true,
                };
            }
            Ok(_) => {
                self.report.order_violations += 1;
                return Attempt::Backoff {
                    hint: Duration::ZERO,
                    decay: true,
                };
            }
            Err(e) => return self.stream_fault(e),
        };

        loop {
            match read_frame(&mut stream) {
                Ok(Frame::Unit {
                    class,
                    unit,
                    payload,
                }) => {
                    let ci = class as usize;
                    if ci >= self.classes.len() || unit != expected[ci] {
                        // Out-of-order or out-of-range: fail closed.
                        // Nothing is journaled; the reconnect resumes
                        // from the last good boundary.
                        self.report.order_violations += 1;
                        return Attempt::Backoff {
                            hint: Duration::ZERO,
                            decay: true,
                        };
                    }
                    let pin = self.pin.as_ref().expect("welcome pinned before units");
                    let Some(&want) = pin.digests.get(ci).and_then(|d| d.get(unit as usize)) else {
                        self.report.order_violations += 1;
                        return Attempt::Backoff {
                            hint: Duration::ZERO,
                            decay: true,
                        };
                    };
                    if content_digest_of(pin.epoch, class, unit, &payload) != want {
                        // The frame CRC passed — whoever forged the
                        // bytes re-sealed it — but the bytes don't hash
                        // to the *pinned* manifest entry. This mirror
                        // is serving a different program: quarantine.
                        self.report.digest_rejects += 1;
                        return Attempt::Quarantine;
                    }
                    if let Err(e) = self.accept_unit(mi, ci, &payload) {
                        return Attempt::Fatal(ClientError::Store {
                            op: e.op,
                            detail: e.detail,
                        });
                    }
                    expected[ci] += 1;
                    if let Some(k) = self.config.kill_after_units {
                        if self.delivered_total >= k {
                            // The process-crash probe: die for good at
                            // this unit boundary. The journal keeps
                            // everything accepted so far.
                            return Attempt::Fatal(ClientError::Killed {
                                delivered: self.delivered_total,
                            });
                        }
                    }
                    if let Some(k) = self.config.disconnect_after_units {
                        if !self.disconnect_fired && self.delivered_total >= k {
                            // The crash-anywhere probe: die exactly at
                            // this unit boundary, once.
                            self.disconnect_fired = true;
                            self.report.stream_faults += 1;
                            return Attempt::Backoff {
                                hint: Duration::ZERO,
                                decay: true,
                            };
                        }
                    }
                }
                Ok(Frame::Evict {
                    reason: EvictReason::Incompatible,
                    ..
                }) => return Attempt::Fatal(ClientError::Incompatible),
                Ok(Frame::Evict {
                    resume_after_ms, ..
                }) => {
                    self.report.evictions += 1;
                    return Attempt::Backoff {
                        hint: Duration::from_millis(u64::from(resume_after_ms)),
                        decay: true,
                    };
                }
                Ok(Frame::Bye { .. }) => {
                    if !self.classes.is_empty()
                        && self.classes.iter().all(|c| c.delivered == c.units)
                    {
                        return Attempt::Done;
                    }
                    // A premature Bye is a protocol violation; keep the
                    // watermarks and try again.
                    self.report.order_violations += 1;
                    return Attempt::Backoff {
                        hint: Duration::ZERO,
                        decay: true,
                    };
                }
                Ok(_) => {
                    self.report.order_violations += 1;
                    return Attempt::Backoff {
                        hint: Duration::ZERO,
                        decay: true,
                    };
                }
                Err(e) => return self.stream_fault(e),
            }
        }
    }

    fn stream_fault(&mut self, _e: FrameError) -> Attempt {
        self.report.stream_faults += 1;
        Attempt::Backoff {
            hint: Duration::ZERO,
            decay: true,
        }
    }

    fn watermarks(&self) -> Vec<ResumeEntry> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.delivered > 0)
            .map(|(ci, c)| ResumeEntry {
                class: u32::try_from(ci).unwrap_or(u32::MAX),
                epoch: c.epoch,
                delivered: c.delivered,
            })
            .collect()
    }

    /// Applies a Welcome against the pinned manifest: orders its
    /// generation against the pin, verifies the manifest decodes and
    /// structurally matches the adverts, and reconciles per-class
    /// epochs and negotiated starts against local state.
    fn adopt_welcome(
        &mut self,
        generation: u32,
        manifest_epoch: u64,
        manifest: &[u8],
        adverts: &[ClassAdvert],
    ) -> Adopt {
        let manifest_crc = crc32(manifest);
        let repin = match &self.pin {
            None => true,
            Some(pin) if generation < pin.generation => return Adopt::Stale,
            Some(pin) if generation > pin.generation => {
                // A live rollover: the origin restructured ahead of us.
                // Everything held belongs to the old layout — discard
                // it all; a session never splices two generations.
                self.classes.clear();
                self.delivered_total = 0;
                if let Some(store) = self.store.as_mut() {
                    if let Err(e) = store.on_reset_all() {
                        return Adopt::Broken(e);
                    }
                }
                true
            }
            Some(pin) => {
                if pin.epoch != manifest_epoch || pin.crc != manifest_crc {
                    return Adopt::Equivocation;
                }
                false
            }
        };
        if repin {
            let Ok(decoded) = UnitManifest::decode(manifest) else {
                return Adopt::Violation;
            };
            if decoded.epoch != manifest_epoch {
                return Adopt::Violation;
            }
            if let Some(store) = self.store.as_mut() {
                if let Err(e) = store.on_pin(generation, manifest) {
                    return Adopt::Broken(e);
                }
            }
            self.report.generation = generation;
            self.report.manifest_epoch = manifest_epoch;
            self.report.manifest_crc = manifest_crc;
            self.pin = Some(PinnedManifest {
                generation,
                epoch: manifest_epoch,
                crc: manifest_crc,
                digests: decoded.unit_digests,
            });
        }
        // Structural agreement between the (pinned) manifest and this
        // Welcome's adverts: same class count, same per-class unit
        // counts. A mismatch means the mirror's Welcome contradicts the
        // manifest it just presented — fail closed.
        let pin = self.pin.as_ref().expect("pin exists after repin");
        if adverts.len() != pin.digests.len()
            || adverts
                .iter()
                .zip(&pin.digests)
                .any(|(a, d)| a.units as usize != d.len())
        {
            return Adopt::Violation;
        }
        if self.classes.len() > adverts.len() {
            return Adopt::Violation;
        }
        // A warm-start snapshot only knows the classes that journaled a
        // unit before the crash; the tail it never heard of is fresh.
        self.classes.resize_with(adverts.len(), ClassState::default);
        let mut expected = Vec::with_capacity(adverts.len());
        for (ci, advert) in adverts.iter().enumerate() {
            let class = &mut self.classes[ci];
            let class_id = u32::try_from(ci).unwrap_or(u32::MAX);
            if class.delivered == 0 {
                class.epoch = advert.epoch;
                class.units = advert.units;
            } else if class.epoch != advert.epoch || class.units != advert.units {
                // Epoch moved for a class we hold bytes of: discard the
                // stale bytes and restart the class.
                self.delivered_total -= u64::from(class.delivered);
                *class = ClassState {
                    epoch: advert.epoch,
                    units: advert.units,
                    ..ClassState::default()
                };
                if let Some(store) = self.store.as_mut() {
                    if let Err(e) = store.on_reset_class(class_id, advert.epoch, advert.units) {
                        return Adopt::Broken(e);
                    }
                }
            }
            let class = &mut self.classes[ci];
            if advert.start > class.delivered {
                // The server claims we hold units we never journaled.
                return Adopt::Violation;
            }
            // advert.start <= delivered: the server resumes from its
            // negotiated (possibly more conservative) start; re-receipt
            // of units we already hold would arrive out of order, so
            // truncate local state back to the negotiated start.
            if advert.start < class.delivered {
                let dropped = class.delivered - advert.start;
                self.delivered_total -= u64::from(dropped);
                class.crcs.truncate(advert.start as usize);
                class.sizes.truncate(advert.start as usize);
                class.payloads.truncate(advert.start as usize);
                class.delivered = advert.start;
                if let Some(store) = self.store.as_mut() {
                    if let Err(e) = store.on_truncate(class_id, advert.start) {
                        return Adopt::Broken(e);
                    }
                }
            }
            expected.push(advert.start);
        }
        Adopt::Go(expected)
    }

    fn accept_unit(&mut self, mi: usize, ci: usize, payload: &[u8]) -> Result<(), StoreFault> {
        let class = &mut self.classes[ci];
        class.crcs.push(crc32(payload));
        class
            .sizes
            .push(u32::try_from(payload.len()).unwrap_or(u32::MAX));
        if self.config.keep_payloads {
            class.payloads.push(payload.to_vec());
        }
        class.delivered += 1;
        let (unit, epoch, units) = (class.delivered - 1, class.epoch, class.units);
        self.delivered_total += 1;
        let mirror = &mut self.mirrors[mi];
        mirror.units += 1;
        mirror.health_ppm = boost_health(mirror.health_ppm);
        if let Some(store) = self.store.as_mut() {
            // Persist *before* the unit counts as delivered to any
            // observer: a store failure here is process death, and the
            // journal must never lag what the session believes.
            store.on_unit(
                u32::try_from(ci).unwrap_or(u32::MAX),
                unit,
                epoch,
                units,
                payload,
            )?;
        }
        Ok(())
    }

    fn finish_report(&mut self) {
        self.report.bytes = self.classes.iter().map(ClassState::bytes).sum();
        self.report.delivered = self.classes.iter().map(|c| c.delivered).collect();
        self.report.units = self.classes.iter().map(|c| c.units).collect();
        self.report.epochs = self.classes.iter().map(|c| c.epoch).collect();
        self.report.unit_crcs = self.classes.iter().map(|c| c.crcs.clone()).collect();
        if self.config.keep_payloads {
            self.report.payloads = Some(self.classes.iter().map(|c| c.payloads.clone()).collect());
        }
        self.report.mirror_units = self.mirrors.iter().map(|m| m.units).collect();
        self.report.mirror_health = self.mirrors.iter().map(|m| m.health_ppm).collect();
        self.report.complete =
            !self.classes.is_empty() && self.classes.iter().all(|c| c.delivered == c.units);
    }
}

fn backoff_delay(base: Duration, cap: Duration, consecutive_failures: u32) -> Duration {
    let shift = consecutive_failures.saturating_sub(1).min(16);
    base.saturating_mul(1u32 << shift).min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(50);
        assert_eq!(backoff_delay(base, cap, 1), Duration::from_millis(2));
        assert_eq!(backoff_delay(base, cap, 2), Duration::from_millis(4));
        assert_eq!(backoff_delay(base, cap, 3), Duration::from_millis(8));
        assert_eq!(backoff_delay(base, cap, 10), cap);
        assert_eq!(backoff_delay(base, cap, 33), cap);
    }

    #[test]
    fn health_decays_to_exactly_zero_and_boosts_back_to_full() {
        let mut h = HEALTH_FULL_PPM;
        let mut steps = 0u32;
        while h > 0 {
            h = decay_health(h);
            steps += 1;
            assert!(steps < 1_000, "decay must converge, not hover");
        }
        assert_eq!(decay_health(0), 0, "zero is a fixed point");
        // Goodput recovers: folding full-health samples converges back
        // to (and never exceeds) full.
        let mut h = 0u32;
        for _ in 0..256 {
            h = boost_health(h);
            assert!(h <= HEALTH_FULL_PPM);
        }
        assert_eq!(boost_health(HEALTH_FULL_PPM), HEALTH_FULL_PPM);
    }

    #[test]
    fn mirror_selection_prefers_health_then_order() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let config = ClientConfig::with_mirrors(vec![addr, addr, addr], "hanoi");
        let mut client = WireClient::new(config);
        // All healthy: order is the tiebreak.
        assert_eq!(client.pick_mirror(), Some(0));
        // Mirror 0 faults: the healthier mirror 1 wins.
        client.mirrors[0].health_ppm = decay_health(client.mirrors[0].health_ppm);
        assert_eq!(client.pick_mirror(), Some(1));
        // Mirror 1 backing off: mirror 2 is the healthiest *eligible*.
        client.mirrors[1].not_before = Some(Instant::now() + Duration::from_secs(60));
        assert_eq!(client.pick_mirror(), Some(2));
        // Everyone quarantined or waiting: soonest-eligible survivor.
        client.mirrors[2].quarantined = true;
        client.mirrors[0].not_before = Some(Instant::now() + Duration::from_secs(120));
        assert_eq!(client.pick_mirror(), Some(1));
        // Whole fleet quarantined: nowhere left.
        client.mirrors[0].quarantined = true;
        client.mirrors[1].quarantined = true;
        assert_eq!(client.pick_mirror(), None);
    }
}
