//! The content-addressed NSUM unit manifest, at the wire layer.
//!
//! A mirror fleet is only as trustworthy as its least honest mirror: a
//! forged unit can pass the frame-level CRC perfectly — the CRC travels
//! *with* the bytes, so whoever forges the bytes can re-seal the
//! trailer too. The defense is to move the fingerprints out of band:
//! the client pins the manifest carried by the **first** `Welcome` of a
//! session and verifies every delivered unit against its manifest entry
//! at the unit boundary, so a mirror serving wrong bytes is detected
//! one unit after it first diverges, quarantined, and failed over like
//! a dead mirror.
//!
//! This module owns the NSUM wire format (magic, version, epoch,
//! per-class digest lists, CRC32 trailer over every preceding byte) so
//! the real wire client can decode what it pinned. The simulator's
//! manifest layer (`nonstrict-core`) re-exports this codec — the
//! simulated Byzantine defenses and the socket-level ones share one
//! frame format and one decoder, exactly as they share one CRC32.
//!
//! Two digest flavors coexist, both FNV-1a folded to 32 bits and both
//! keyed by the restructure epoch (non-linear on purpose: CRC32 is
//! affine, so an epoch bump would shift every digest by one XOR
//! constant, and that uniform difference can cancel inside the outer
//! frame CRC):
//!
//! * [`UnitManifest::digest_of`] — the **size-bound** digest the
//!   co-simulator uses; it models content at unit-size granularity.
//! * [`content_digest_of`] — the **byte-level** digest the real wire
//!   uses; it covers the unit's actual payload, so a same-size byte
//!   forgery with a re-sealed frame CRC is still caught at the
//!   boundary.

use crate::caps;
use crate::crc::crc32;

/// Manifest magic: identifies the frame and its byte order.
pub const MANIFEST_MAGIC: [u8; 4] = *b"NSUM";

/// Current manifest wire-format version.
pub const MANIFEST_VERSION: u16 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Why a manifest frame could not be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestError {
    /// The buffer does not start with [`MANIFEST_MAGIC`].
    BadMagic,
    /// The version field is newer than this reader understands.
    BadVersion(u16),
    /// The buffer ended before the declared content did (torn write).
    Truncated,
    /// The CRC32 trailer does not match the content.
    CrcMismatch,
    /// Structurally impossible content.
    Malformed(&'static str),
    /// A declared count exceeds its sanity cap. Rejected *before* any
    /// buffer is allocated — a forged length field (the CRC is not a
    /// MAC) must not make the decoder reserve gigabytes.
    Oversized {
        /// Which field declared the count.
        what: &'static str,
        /// The declared value.
        declared: u64,
        /// The cap it violated (see [`crate::caps`]).
        cap: u64,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::BadMagic => write!(f, "manifest magic mismatch"),
            ManifestError::BadVersion(v) => write!(f, "unsupported manifest version {v}"),
            ManifestError::Truncated => write!(f, "manifest truncated (torn write)"),
            ManifestError::CrcMismatch => write!(f, "manifest CRC mismatch"),
            ManifestError::Malformed(what) => write!(f, "malformed manifest: {what}"),
            ManifestError::Oversized {
                what,
                declared,
                cap,
            } => write!(
                f,
                "oversized manifest {what}: declared {declared}, cap {cap}"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// The byte-level content digest of one unit under `epoch`: FNV-1a
/// over the epoch/class/unit header followed by the unit's payload
/// bytes, folded to 32 bits. This is what the wire client recomputes
/// for every delivered `Unit` frame and compares against the pinned
/// manifest entry — a forged payload of the *same size* under a
/// re-sealed frame CRC still lands on a different digest.
#[must_use]
pub fn content_digest_of(epoch: u64, class: u32, unit: u32, payload: &[u8]) -> u32 {
    let mut h = FNV_OFFSET;
    let mut head = [0u8; 16];
    head[..8].copy_from_slice(&epoch.to_le_bytes());
    head[8..12].copy_from_slice(&class.to_le_bytes());
    head[12..16].copy_from_slice(&unit.to_le_bytes());
    for b in head.iter().chain(payload.iter()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    #[allow(clippy::cast_possible_truncation)]
    {
        (h ^ (h >> 32)) as u32
    }
}

/// The content-addressed unit manifest: one digest per transfer unit,
/// all bound to the restructure epoch they were published under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitManifest {
    /// Restructure-epoch id: the combined layout fingerprint of the
    /// restructured program this manifest describes. Re-restructuring
    /// moves the epoch, and with it every unit digest.
    pub epoch: u64,
    /// Per-class, per-unit digests, in stream order (unit 0 is the
    /// prelude).
    pub unit_digests: Vec<Vec<u32>>,
}

impl UnitManifest {
    /// The size-bound digest of one unit under `epoch`: a fingerprint
    /// of the unit's identity and size bound to the restructure epoch.
    /// The co-simulator models content at unit-size granularity, so
    /// this is the fingerprint it computes; the real wire uses the
    /// byte-level [`content_digest_of`] instead.
    #[must_use]
    pub fn digest_of(epoch: u64, class: u32, unit: u32, size: u64) -> u32 {
        let mut buf = [0u8; 24];
        buf[..8].copy_from_slice(&epoch.to_le_bytes());
        buf[8..12].copy_from_slice(&class.to_le_bytes());
        buf[12..16].copy_from_slice(&unit.to_le_bytes());
        buf[16..24].copy_from_slice(&size.to_le_bytes());
        let mut h = FNV_OFFSET;
        for &b in &buf {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        #[allow(clippy::cast_possible_truncation)]
        {
            (h ^ (h >> 32)) as u32
        }
    }

    /// Builds a manifest from per-class unit payloads using the
    /// byte-level [`content_digest_of`] — the flavor the wire serves
    /// and the wire client verifies against.
    #[must_use]
    pub fn from_payloads(units: &[Vec<Vec<u8>>], epoch: u64) -> UnitManifest {
        let unit_digests = units
            .iter()
            .enumerate()
            .map(|(c, class)| {
                let class_id = u32::try_from(c).expect("class index fits u32");
                class
                    .iter()
                    .enumerate()
                    .map(|(i, payload)| {
                        let unit = u32::try_from(i).expect("unit index fits u32");
                        content_digest_of(epoch, class_id, unit, payload)
                    })
                    .collect()
            })
            .collect();
        UnitManifest {
            epoch,
            unit_digests,
        }
    }

    /// Serializes the manifest: magic, version, epoch, per-class digest
    /// lists, CRC32 trailer — the same fail-closed framing as the
    /// session journal.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(usize::try_from(self.wire_bytes()).unwrap_or(64));
        buf.extend_from_slice(&MANIFEST_MAGIC);
        buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        let nclasses = u32::try_from(self.unit_digests.len()).expect("class count fits u32");
        buf.extend_from_slice(&nclasses.to_le_bytes());
        for class in &self.unit_digests {
            let n = u32::try_from(class.len()).expect("unit count fits u32");
            buf.extend_from_slice(&n.to_le_bytes());
            for d in class {
                buf.extend_from_slice(&d.to_le_bytes());
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Deserializes and integrity-checks a manifest frame.
    ///
    /// # Errors
    ///
    /// Any structural or integrity problem — wrong magic, unknown
    /// version, truncation, CRC mismatch, trailing garbage — is an
    /// error; a manifest either decodes exactly or not at all.
    pub fn decode(bytes: &[u8]) -> Result<UnitManifest, ManifestError> {
        if bytes.len() < MANIFEST_MAGIC.len() + 2 + 8 + 4 + 4 {
            return Err(ManifestError::Truncated);
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err(ManifestError::BadMagic);
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("len"));
        if crc32(content) != stored {
            return Err(ManifestError::CrcMismatch);
        }
        let mut pos = 4;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ManifestError> {
            let end = pos.checked_add(n).ok_or(ManifestError::Truncated)?;
            if end > content.len() {
                return Err(ManifestError::Truncated);
            }
            let s = &content[*pos..end];
            *pos = end;
            Ok(s)
        };
        let version = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("len"));
        if version != MANIFEST_VERSION {
            return Err(ManifestError::BadVersion(version));
        }
        let epoch = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len"));
        // Length-prefix sanity: every declared count is checked against
        // its cap AND the bytes actually remaining before any Vec is
        // reserved — a forged count re-sealed under a fresh CRC must
        // not make the decoder allocate gigabytes.
        let checked = |pos: usize, what: &'static str, n: u32, cap: usize, each: usize| {
            if u64::from(n) > cap as u64 {
                return Err(ManifestError::Oversized {
                    what,
                    declared: u64::from(n),
                    cap: cap as u64,
                });
            }
            let n = n as usize;
            if n.checked_mul(each)
                .is_none_or(|need| need > content.len().saturating_sub(pos))
            {
                return Err(ManifestError::Truncated);
            }
            Ok(n)
        };
        let nclasses = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len"));
        let nclasses = checked(pos, "class count", nclasses, caps::MAX_CLASSES, 4)?;
        let mut unit_digests = Vec::with_capacity(nclasses);
        for _ in 0..nclasses {
            let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len"));
            let n = checked(pos, "unit count", n, caps::MAX_UNITS_PER_CLASS, 4)?;
            let mut class = Vec::with_capacity(n);
            for _ in 0..n {
                class.push(u32::from_le_bytes(
                    take(&mut pos, 4)?.try_into().expect("len"),
                ));
            }
            unit_digests.push(class);
        }
        if pos != content.len() {
            return Err(ManifestError::Malformed("trailing bytes after content"));
        }
        Ok(UnitManifest {
            epoch,
            unit_digests,
        })
    }

    /// Exact wire size of the encoded frame, without encoding: this is
    /// what the client's initial pin (and every epoch-fence re-pin)
    /// pays on the link.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        let header = 4 + 2 + 8 + 4;
        let body: u64 = self
            .unit_digests
            .iter()
            .map(|c| 4 + 4 * c.len() as u64)
            .sum();
        header + body + 4
    }

    /// The pinned manifest digest: the frame's own CRC trailer, i.e.
    /// the CRC32 of every encoded byte *before* the trailer. (Hashing
    /// the whole frame including the trailer would be useless: CRC32
    /// of a message with its own CRC appended is the constant residue
    /// `0x2144_DF1C` for every message.) The client stores this in its
    /// session journal (format v3) so a reconnect can tell whether the
    /// origin's manifest moved while it was away.
    #[must_use]
    pub fn digest(&self) -> u32 {
        let frame = self.encode();
        crc32(&frame[..frame.len() - 4])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UnitManifest {
        UnitManifest {
            epoch: 0x1234_5678_9abc_def0,
            unit_digests: vec![vec![1, 2, 3], vec![], vec![0xdead_beef]],
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let m = sample();
        let bytes = m.encode();
        assert_eq!(bytes.len() as u64, m.wire_bytes());
        assert_eq!(UnitManifest::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                assert!(
                    UnitManifest::decode(&bad).is_err(),
                    "flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            assert!(
                UnitManifest::decode(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(UnitManifest::decode(&padded).is_err());
    }

    #[test]
    fn forged_counts_are_oversized_before_allocation() {
        let bytes = sample().encode();
        let reseal = |mut b: Vec<u8>, at: usize, v: u32| {
            b[at..at + 4].copy_from_slice(&v.to_le_bytes());
            let crc_at = b.len() - 4;
            let crc = crc32(&b[..crc_at]);
            b[crc_at..].copy_from_slice(&crc.to_le_bytes());
            b
        };
        // Class count sits after magic (4) + version (2) + epoch (8).
        let nclasses_at = 14;
        let huge = reseal(bytes.clone(), nclasses_at, u32::MAX);
        assert!(matches!(
            UnitManifest::decode(&huge),
            Err(ManifestError::Oversized {
                what: "class count",
                ..
            })
        ));
        // Under the cap but beyond the bytes present: truncated, still
        // before any allocation.
        let hollow = reseal(bytes.clone(), nclasses_at, 10_000);
        assert_eq!(UnitManifest::decode(&hollow), Err(ManifestError::Truncated));
        // First per-class unit count sits right after the class count.
        let forged_units = reseal(bytes, nclasses_at + 4, u32::MAX);
        assert!(matches!(
            UnitManifest::decode(&forged_units),
            Err(ManifestError::Oversized {
                what: "unit count",
                ..
            })
        ));
    }

    #[test]
    fn size_digests_move_with_epoch_class_unit_and_size() {
        let base = UnitManifest::digest_of(7, 1, 2, 100);
        assert_eq!(base, UnitManifest::digest_of(7, 1, 2, 100));
        assert_ne!(base, UnitManifest::digest_of(8, 1, 2, 100));
        assert_ne!(base, UnitManifest::digest_of(7, 2, 2, 100));
        assert_ne!(base, UnitManifest::digest_of(7, 1, 3, 100));
        assert_ne!(base, UnitManifest::digest_of(7, 1, 2, 101));
    }

    #[test]
    fn content_digests_move_with_every_byte_and_every_key() {
        let payload = b"method bytes".to_vec();
        let base = content_digest_of(7, 1, 2, &payload);
        assert_eq!(base, content_digest_of(7, 1, 2, &payload));
        assert_ne!(base, content_digest_of(8, 1, 2, &payload));
        assert_ne!(base, content_digest_of(7, 2, 2, &payload));
        assert_ne!(base, content_digest_of(7, 1, 3, &payload));
        for i in 0..payload.len() {
            let mut forged = payload.clone();
            forged[i] ^= 0x01;
            assert_ne!(
                base,
                content_digest_of(7, 1, 2, &forged),
                "same-size forgery at byte {i} went undetected"
            );
        }
        // Size changes move the digest too (append and truncate).
        let mut longer = payload.clone();
        longer.push(0);
        assert_ne!(base, content_digest_of(7, 1, 2, &longer));
        assert_ne!(
            base,
            content_digest_of(7, 1, 2, &payload[..payload.len() - 1])
        );
    }

    #[test]
    fn from_payloads_matches_recomputed_content_digests() {
        let units = vec![
            vec![b"prelude".to_vec(), b"method a".to_vec()],
            vec![b"other prelude".to_vec()],
        ];
        let m = UnitManifest::from_payloads(&units, 42);
        assert_eq!(m.unit_digests.len(), 2);
        for (c, class) in units.iter().enumerate() {
            for (u, payload) in class.iter().enumerate() {
                assert_eq!(
                    m.unit_digests[c][u],
                    content_digest_of(42, c as u32, u as u32, payload)
                );
            }
        }
        // An epoch bump moves every content digest.
        let moved = UnitManifest::from_payloads(&units, 43);
        for (a, b) in m
            .unit_digests
            .iter()
            .flatten()
            .zip(moved.unit_digests.iter().flatten())
        {
            assert_ne!(a, b, "an epoch bump must move every unit digest");
        }
        assert_ne!(m.digest(), moved.digest());
    }
}
