//! The server's content model and resume negotiation.
//!
//! A [`ServePlan`] is what a benchmark looks like from the wire's point
//! of view: per class, an epoch (a digest of the restructured layout)
//! and the real unit byte payloads produced by splitting the class file
//! at unit boundaries (prelude first, then one unit per method). The
//! `core::serve` bridge builds plans from restructured benchmarks; this
//! crate only streams them, so the protocol layer stays free of class-
//! file knowledge.
//!
//! Resume negotiation mirrors the NSJR journal's rule: a client's
//! delivered watermark survives only if it was recorded under the epoch
//! the server is serving *now*; on any mismatch the class restarts from
//! unit zero (fail-closed, never trusting a stale layout).

use crate::frame::{ClassAdvert, ResumeEntry};

/// One class as served on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassPlan {
    /// Layout epoch: changes whenever the restructured bytes change.
    pub epoch: u32,
    /// Real unit payloads, in stream order (index 0 is the prelude).
    pub units: Vec<Vec<u8>>,
}

/// Everything the server streams for one benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServePlan {
    /// Benchmark name clients ask for in their Hello.
    pub benchmark: String,
    /// Combined manifest epoch advertised in the Welcome.
    pub manifest_epoch: u64,
    /// The encoded NSUM manifest frame, carried opaquely.
    pub manifest: Vec<u8>,
    /// Per-class plans, indexed by class id.
    pub classes: Vec<ClassPlan>,
}

impl ServePlan {
    /// Total units across every class.
    #[must_use]
    pub fn total_units(&self) -> usize {
        self.classes.iter().map(|c| c.units.len()).sum()
    }

    /// Total payload bytes across every class.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.classes
            .iter()
            .flat_map(|c| c.units.iter())
            .map(|u| u.len() as u64)
            .sum()
    }

    /// Negotiates a client's resume watermarks into per-class adverts.
    ///
    /// A watermark is honored (the advert's `start` is the delivered
    /// count) only when the class exists, the recorded epoch equals the
    /// served epoch, and the count is within range; anything else —
    /// unknown class, stale epoch, absurd watermark — restarts that
    /// class from zero. Duplicate entries for one class keep the most
    /// conservative (lowest) surviving start.
    #[must_use]
    pub fn negotiate(&self, resume: &[ResumeEntry]) -> Vec<ClassAdvert> {
        let mut adverts: Vec<ClassAdvert> = self
            .classes
            .iter()
            .map(|c| ClassAdvert {
                epoch: c.epoch,
                units: u32::try_from(c.units.len()).unwrap_or(u32::MAX),
                start: 0,
            })
            .collect();
        let mut seen = vec![false; adverts.len()];
        for entry in resume {
            let Some(class) = self.classes.get(entry.class as usize) else {
                continue;
            };
            let advert = &mut adverts[entry.class as usize];
            if entry.epoch != class.epoch || entry.delivered > advert.units {
                continue;
            }
            let idx = entry.class as usize;
            advert.start = if seen[idx] {
                advert.start.min(entry.delivered)
            } else {
                entry.delivered
            };
            seen[idx] = true;
        }
        adverts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ServePlan {
        ServePlan {
            benchmark: "hanoi".to_owned(),
            manifest_epoch: 42,
            manifest: vec![1, 2, 3],
            classes: vec![
                ClassPlan {
                    epoch: 100,
                    units: vec![vec![0; 8], vec![1; 4], vec![2; 4]],
                },
                ClassPlan {
                    epoch: 200,
                    units: vec![vec![3; 16], vec![4; 2]],
                },
            ],
        }
    }

    #[test]
    fn totals_count_every_unit_and_byte() {
        let p = plan();
        assert_eq!(p.total_units(), 5);
        assert_eq!(p.total_bytes(), 8 + 4 + 4 + 16 + 2);
    }

    #[test]
    fn fresh_client_starts_every_class_at_zero() {
        let adverts = plan().negotiate(&[]);
        assert_eq!(adverts.len(), 2);
        assert!(adverts.iter().all(|a| a.start == 0));
        assert_eq!(adverts[0].units, 3);
        assert_eq!(adverts[1].units, 2);
    }

    #[test]
    fn matching_epoch_watermark_survives() {
        let adverts = plan().negotiate(&[ResumeEntry {
            class: 0,
            epoch: 100,
            delivered: 2,
        }]);
        assert_eq!(adverts[0].start, 2);
        assert_eq!(adverts[1].start, 0);
    }

    #[test]
    fn stale_epoch_restarts_from_zero() {
        let adverts = plan().negotiate(&[ResumeEntry {
            class: 0,
            epoch: 101,
            delivered: 2,
        }]);
        assert_eq!(adverts[0].start, 0);
    }

    #[test]
    fn out_of_range_watermark_and_unknown_class_are_ignored() {
        let adverts = plan().negotiate(&[
            ResumeEntry {
                class: 0,
                epoch: 100,
                delivered: 4, // only 3 units exist
            },
            ResumeEntry {
                class: 9, // no such class
                epoch: 100,
                delivered: 1,
            },
        ]);
        assert_eq!(adverts[0].start, 0);
        assert_eq!(adverts.len(), 2);
    }

    #[test]
    fn delivered_equal_to_units_means_class_complete() {
        let adverts = plan().negotiate(&[ResumeEntry {
            class: 1,
            epoch: 200,
            delivered: 2,
        }]);
        assert_eq!(adverts[1].start, 2);
        assert_eq!(adverts[1].units, 2);
    }

    #[test]
    fn duplicate_entries_keep_the_most_conservative_start() {
        let adverts = plan().negotiate(&[
            ResumeEntry {
                class: 0,
                epoch: 100,
                delivered: 2,
            },
            ResumeEntry {
                class: 0,
                epoch: 100,
                delivered: 1,
            },
        ]);
        assert_eq!(adverts[0].start, 1);
    }
}
