//! The server's content model and resume negotiation.
//!
//! A [`ServePlan`] is what a benchmark looks like from the wire's point
//! of view: per class, an epoch (a digest of the restructured layout)
//! and the real unit byte payloads produced by splitting the class file
//! at unit boundaries (prelude first, then one unit per method). The
//! `core::serve` bridge builds plans from restructured benchmarks; this
//! crate only streams them, so the protocol layer stays free of class-
//! file knowledge.
//!
//! Resume negotiation mirrors the NSJR journal's rule: a client's
//! delivered watermark survives only if it was recorded under the epoch
//! the server is serving *now*; on any mismatch the class restarts from
//! unit zero (fail-closed, never trusting a stale layout).

use crate::frame::{ClassAdvert, ResumeEntry};

/// One class as served on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassPlan {
    /// Layout epoch: changes whenever the restructured bytes change.
    pub epoch: u32,
    /// Real unit payloads, in stream order (index 0 is the prelude).
    pub units: Vec<Vec<u8>>,
}

/// Everything the server streams for one benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServePlan {
    /// Benchmark name clients ask for in their Hello.
    pub benchmark: String,
    /// Restructure generation advertised in the Welcome: a monotonic
    /// counter the origin bumps on every live re-restructure. Manifest
    /// epochs are hashes (unordered), so this is the only field that
    /// lets a failing-over client order two layouts it has seen.
    pub generation: u32,
    /// Combined manifest epoch advertised in the Welcome.
    pub manifest_epoch: u64,
    /// The encoded NSUM manifest frame, carried opaquely.
    pub manifest: Vec<u8>,
    /// Per-class plans, indexed by class id.
    pub classes: Vec<ClassPlan>,
}

/// The typed fate of one offered resume watermark — what
/// [`ServePlan::negotiate_checked`] decided and why. Every rejection is
/// a *restart from zero* for that class, never a partial splice: a
/// watermark recorded under another layout says nothing about which
/// prefix of the current layout the client holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeVerdict {
    /// The watermark survived: the class will stream from `start`
    /// (`start == units` means nothing is left and the session heads
    /// straight for its `Bye`).
    Honored {
        /// Class the verdict is about.
        class: u32,
        /// Negotiated first unit.
        start: u32,
    },
    /// The entry names a class the served plan does not have.
    UnknownClass {
        /// Class the entry named.
        class: u32,
    },
    /// The watermark was recorded under another layout epoch.
    StaleEpoch {
        /// Class the verdict is about.
        class: u32,
        /// Epoch the client recorded.
        offered: u32,
        /// Epoch the server serves now.
        served: u32,
    },
    /// The watermark exceeds the units the class actually has.
    OutOfRange {
        /// Class the verdict is about.
        class: u32,
        /// Watermark the client claimed.
        delivered: u32,
        /// Units the class actually streams.
        units: u32,
    },
}

impl ServePlan {
    /// Total units across every class.
    #[must_use]
    pub fn total_units(&self) -> usize {
        self.classes.iter().map(|c| c.units.len()).sum()
    }

    /// Total payload bytes across every class.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.classes
            .iter()
            .flat_map(|c| c.units.iter())
            .map(|u| u.len() as u64)
            .sum()
    }

    /// Negotiates a client's resume watermarks into per-class adverts.
    ///
    /// A watermark is honored (the advert's `start` is the delivered
    /// count) only when the class exists, the recorded epoch equals the
    /// served epoch, and the count is within range; anything else —
    /// unknown class, stale epoch, absurd watermark — restarts that
    /// class from zero. Duplicate entries for one class keep the most
    /// conservative (lowest) surviving start.
    #[must_use]
    pub fn negotiate(&self, resume: &[ResumeEntry]) -> Vec<ClassAdvert> {
        self.negotiate_checked(resume).0
    }

    /// [`ServePlan::negotiate`] with a typed verdict per offered entry,
    /// in offer order — the auditable form: a soak can assert not just
    /// where each class started but *why* every rejected watermark was
    /// rejected.
    #[must_use]
    pub fn negotiate_checked(
        &self,
        resume: &[ResumeEntry],
    ) -> (Vec<ClassAdvert>, Vec<ResumeVerdict>) {
        let mut adverts: Vec<ClassAdvert> = self
            .classes
            .iter()
            .map(|c| ClassAdvert {
                epoch: c.epoch,
                units: u32::try_from(c.units.len()).unwrap_or(u32::MAX),
                start: 0,
            })
            .collect();
        let mut verdicts = Vec::with_capacity(resume.len());
        let mut seen = vec![false; adverts.len()];
        for entry in resume {
            let Some(class) = self.classes.get(entry.class as usize) else {
                verdicts.push(ResumeVerdict::UnknownClass { class: entry.class });
                continue;
            };
            let advert = &mut adverts[entry.class as usize];
            if entry.epoch != class.epoch {
                verdicts.push(ResumeVerdict::StaleEpoch {
                    class: entry.class,
                    offered: entry.epoch,
                    served: class.epoch,
                });
                continue;
            }
            if entry.delivered > advert.units {
                verdicts.push(ResumeVerdict::OutOfRange {
                    class: entry.class,
                    delivered: entry.delivered,
                    units: advert.units,
                });
                continue;
            }
            let idx = entry.class as usize;
            advert.start = if seen[idx] {
                advert.start.min(entry.delivered)
            } else {
                entry.delivered
            };
            seen[idx] = true;
            verdicts.push(ResumeVerdict::Honored {
                class: entry.class,
                start: advert.start,
            });
        }
        (adverts, verdicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ServePlan {
        ServePlan {
            benchmark: "hanoi".to_owned(),
            generation: 0,
            manifest_epoch: 42,
            manifest: vec![1, 2, 3],
            classes: vec![
                ClassPlan {
                    epoch: 100,
                    units: vec![vec![0; 8], vec![1; 4], vec![2; 4]],
                },
                ClassPlan {
                    epoch: 200,
                    units: vec![vec![3; 16], vec![4; 2]],
                },
            ],
        }
    }

    #[test]
    fn totals_count_every_unit_and_byte() {
        let p = plan();
        assert_eq!(p.total_units(), 5);
        assert_eq!(p.total_bytes(), 8 + 4 + 4 + 16 + 2);
    }

    #[test]
    fn fresh_client_starts_every_class_at_zero() {
        let adverts = plan().negotiate(&[]);
        assert_eq!(adverts.len(), 2);
        assert!(adverts.iter().all(|a| a.start == 0));
        assert_eq!(adverts[0].units, 3);
        assert_eq!(adverts[1].units, 2);
    }

    #[test]
    fn matching_epoch_watermark_survives() {
        let adverts = plan().negotiate(&[ResumeEntry {
            class: 0,
            epoch: 100,
            delivered: 2,
        }]);
        assert_eq!(adverts[0].start, 2);
        assert_eq!(adverts[1].start, 0);
    }

    #[test]
    fn stale_epoch_restarts_from_zero() {
        let adverts = plan().negotiate(&[ResumeEntry {
            class: 0,
            epoch: 101,
            delivered: 2,
        }]);
        assert_eq!(adverts[0].start, 0);
    }

    #[test]
    fn out_of_range_watermark_and_unknown_class_are_ignored() {
        let adverts = plan().negotiate(&[
            ResumeEntry {
                class: 0,
                epoch: 100,
                delivered: 4, // only 3 units exist
            },
            ResumeEntry {
                class: 9, // no such class
                epoch: 100,
                delivered: 1,
            },
        ]);
        assert_eq!(adverts[0].start, 0);
        assert_eq!(adverts.len(), 2);
    }

    #[test]
    fn delivered_equal_to_units_means_class_complete() {
        let adverts = plan().negotiate(&[ResumeEntry {
            class: 1,
            epoch: 200,
            delivered: 2,
        }]);
        assert_eq!(adverts[1].start, 2);
        assert_eq!(adverts[1].units, 2);
    }

    #[test]
    fn verdicts_name_every_rejection_reason() {
        let p = plan();
        let (adverts, verdicts) = p.negotiate_checked(&[
            ResumeEntry {
                class: 0,
                epoch: 100,
                delivered: 3, // == units: complete, straight to Bye
            },
            ResumeEntry {
                class: 0,
                epoch: 101,
                delivered: 1,
            },
            ResumeEntry {
                class: 1,
                epoch: 200,
                delivered: 3, // only 2 units exist
            },
            ResumeEntry {
                class: 9,
                epoch: 100,
                delivered: 1,
            },
        ]);
        assert_eq!(
            verdicts,
            vec![
                ResumeVerdict::Honored { class: 0, start: 3 },
                ResumeVerdict::StaleEpoch {
                    class: 0,
                    offered: 101,
                    served: 100,
                },
                ResumeVerdict::OutOfRange {
                    class: 1,
                    delivered: 3,
                    units: 2,
                },
                ResumeVerdict::UnknownClass { class: 9 },
            ]
        );
        // The stale duplicate did not claw back the honored watermark.
        assert_eq!(adverts[0].start, 3);
        assert_eq!(adverts[1].start, 0);
    }

    /// Seeded property sweep: negotiation never panics and never
    /// produces an advert outside the served plan, whatever watermark
    /// garbage a client offers — including `delivered == u32::MAX`,
    /// class ids far beyond the plan, and duplicate/conflicting
    /// entries.
    #[test]
    fn negotiation_survives_seeded_watermark_garbage() {
        let p = plan();
        let mut rng = crate::SplitMix64(0x5eed_0009);
        for _ in 0..512 {
            let n = rng.below(8) as usize;
            let entries: Vec<ResumeEntry> = (0..n)
                .map(|_| ResumeEntry {
                    class: match rng.below(4) {
                        0 => u32::MAX,
                        1 => rng.below(64) as u32,
                        _ => rng.below(p.classes.len() as u64 + 1) as u32,
                    },
                    epoch: match rng.below(3) {
                        0 => 100,
                        1 => 200,
                        _ => rng.next_u64() as u32,
                    },
                    delivered: match rng.below(4) {
                        0 => u32::MAX,
                        1 => rng.below(1 << 20) as u32,
                        _ => rng.below(4) as u32,
                    },
                })
                .collect();
            let (adverts, verdicts) = p.negotiate_checked(&entries);
            assert_eq!(adverts.len(), p.classes.len());
            assert_eq!(verdicts.len(), entries.len());
            for (i, a) in adverts.iter().enumerate() {
                assert!(
                    a.start <= a.units,
                    "advert start {} beyond units {}",
                    a.start,
                    a.units
                );
                assert_eq!(a.units as usize, p.classes[i].units.len());
                assert_eq!(a.epoch, p.classes[i].epoch);
            }
            for (entry, v) in entries.iter().zip(&verdicts) {
                match *v {
                    ResumeVerdict::Honored { class, start } => {
                        assert_eq!(class, entry.class);
                        assert_eq!(entry.epoch, p.classes[class as usize].epoch);
                        assert!(start <= entry.delivered);
                    }
                    // Every rejection restarts the class from zero or
                    // leaves an earlier honored watermark in place —
                    // never a splice above the honored start.
                    ResumeVerdict::StaleEpoch { class, .. }
                    | ResumeVerdict::OutOfRange { class, .. } => {
                        assert_eq!(class, entry.class);
                    }
                    ResumeVerdict::UnknownClass { class } => {
                        assert!(class as usize >= p.classes.len());
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_entries_keep_the_most_conservative_start() {
        let adverts = plan().negotiate(&[
            ResumeEntry {
                class: 0,
                epoch: 100,
                delivered: 2,
            },
            ResumeEntry {
                class: 0,
                epoch: 100,
                delivered: 1,
            },
        ]);
        assert_eq!(adverts[0].start, 1);
    }
}
