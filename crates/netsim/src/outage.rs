//! Full-connection-loss (outage) injection.
//!
//! A [`FaultPlan`](crate::faults::FaultPlan) perturbs individual unit
//! deliveries inside a live connection; an [`OutagePlan`] models the
//! failures *between* connections: the client is partitioned or killed
//! outright, nothing flows for the outage's duration, and on reconnect
//! the session pays a negotiation handshake before bytes move again.
//!
//! Like the fault layer, everything is deterministic: whether period `k`
//! of the base timeline suffers an outage, where in the period it
//! starts, and how long it lasts are all pure functions of
//! `(seed, period)` through the same SplitMix64 scheme, so a seeded run
//! replays bit for bit. An outage freezes the client and the link
//! *together*, so the base timeline (what would have happened without
//! outages) is undisturbed — wall time is the base time plus the total
//! downtime of every outage that began before it. [`OutageSchedule`]
//! materializes events lazily and answers that shift in `O(log n)`;
//! [`OutageEngine`] applies it to any [`TransferEngine`]'s arrivals.

use crate::engine::TransferEngine;
use crate::faults::{splitmix, FaultStats};

/// Base-time length of one outage-draw period (~134 ms on the 500 MHz
/// Alpha): each period independently suffers at most one outage.
pub const OUTAGE_PERIOD_CYCLES: u64 = 1 << 26;

/// Domain-separation salts for the outage draws, disjoint from the
/// fault-layer salts.
const SALT_OUTAGE_HIT: u64 = 0x4f55_5447_4f55_5447;
const SALT_OUTAGE_START: u64 = 0x5354_5254_5354_5254;
const SALT_OUTAGE_LEN: u64 = 0x4c45_4e47_4c45_4e47;

/// A deterministic, seeded description of full connection losses. Rates
/// are parts-per-million per [`OUTAGE_PERIOD_CYCLES`] so the plan stays
/// `Eq` and `Hash`-able; a zero-rate plan never interrupts anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutagePlan {
    /// Seed for every per-period draw.
    pub seed: u64,
    /// Probability (ppm) that a given base-time period contains an
    /// outage.
    pub rate_pm: u32,
    /// Shortest connection-loss duration, in cycles.
    pub min_cycles: u64,
    /// Longest connection-loss duration, in cycles.
    pub max_cycles: u64,
    /// Reconnect-and-resume handshake paid after every outage: link
    /// re-establishment plus journal validation on the server.
    pub negotiation_cycles: u64,
}

/// One materialized outage on the base timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageEvent {
    /// Base-timeline cycle the connection died.
    pub start: u64,
    /// Cycles the connection stayed down.
    pub outage_cycles: u64,
    /// Total wall-clock cost: the loss itself plus the resume
    /// negotiation on reconnect.
    pub downtime: u64,
}

impl OutagePlan {
    /// A plan that never interrupts, under `seed`.
    #[must_use]
    pub fn quiet(seed: u64) -> OutagePlan {
        OutagePlan {
            seed,
            rate_pm: 0,
            min_cycles: 0,
            max_cycles: 0,
            negotiation_cycles: 0,
        }
    }

    /// Whether this plan can never produce an outage.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.rate_pm == 0 || self.max_cycles == 0
    }

    fn draw(&self, period: u64, salt: u64) -> u64 {
        splitmix(splitmix(self.seed ^ salt) ^ period)
    }

    /// The outage in base-time period `k`, if the dice produce one.
    /// Deterministic in `(seed, k)`.
    #[must_use]
    pub fn event_in_period(&self, k: u64) -> Option<OutageEvent> {
        if self.is_quiet() {
            return None;
        }
        let h = self.draw(k, SALT_OUTAGE_HIT);
        // h / 2^64 < rate / 1e6, exactly, in integers.
        if u128::from(h) * 1_000_000 >= u128::from(self.rate_pm) << 64 {
            return None;
        }
        let start = k
            .saturating_mul(OUTAGE_PERIOD_CYCLES)
            .saturating_add(self.draw(k, SALT_OUTAGE_START) % OUTAGE_PERIOD_CYCLES);
        let lo = self.min_cycles.min(self.max_cycles);
        let span = self.max_cycles - lo;
        let outage_cycles = lo + self.draw(k, SALT_OUTAGE_LEN) % (span + 1);
        Some(OutageEvent {
            start,
            outage_cycles,
            downtime: outage_cycles.saturating_add(self.negotiation_cycles),
        })
    }
}

/// Lazily materialized outage timeline for one plan. Events are
/// generated period by period as queries advance, so the schedule costs
/// nothing past the horizon a run actually reaches.
#[derive(Debug, Clone)]
pub struct OutageSchedule {
    plan: OutagePlan,
    /// Materialized events paired with the cumulative downtime through
    /// each (inclusive), sorted by start.
    events: Vec<(OutageEvent, u64)>,
    next_period: u64,
}

impl OutageSchedule {
    /// A schedule over `plan`, with nothing materialized yet.
    #[must_use]
    pub fn new(plan: OutagePlan) -> Self {
        OutageSchedule {
            plan,
            events: Vec::new(),
            next_period: 0,
        }
    }

    /// The plan this schedule realizes.
    #[must_use]
    pub fn plan(&self) -> OutagePlan {
        self.plan
    }

    /// Materializes every period whose events could start before `t`.
    fn ensure(&mut self, t: u64) {
        if self.plan.is_quiet() {
            return;
        }
        while self.next_period.saturating_mul(OUTAGE_PERIOD_CYCLES) <= t {
            if let Some(e) = self.plan.event_in_period(self.next_period) {
                let cum = self.events.last().map_or(0, |&(_, c)| c);
                self.events.push((e, cum.saturating_add(e.downtime)));
            }
            self.next_period += 1;
        }
    }

    /// Total downtime of every outage that began strictly before base
    /// time `t` — the shift turning a base instant into wall time.
    #[must_use]
    pub fn shift_before(&mut self, t: u64) -> u64 {
        self.ensure(t);
        let idx = self.events.partition_point(|&(e, _)| e.start < t);
        if idx == 0 {
            0
        } else {
            self.events[idx - 1].1
        }
    }

    /// Number of outages that began strictly before base time `t`.
    #[must_use]
    pub fn outages_before(&mut self, t: u64) -> u32 {
        self.ensure(t);
        u32::try_from(self.events.partition_point(|&(e, _)| e.start < t)).unwrap_or(u32::MAX)
    }

    /// Rewrites a base-timeline instant into wall time. Monotone (an
    /// outage only ever delays), and the identity for a quiet plan.
    #[must_use]
    pub fn remap(&mut self, t: u64) -> u64 {
        let s = self.shift_before(t);
        t.saturating_add(s)
    }

    /// The materialized outages that began strictly before base time
    /// `t`, in start order.
    #[must_use]
    pub fn events_before(&mut self, t: u64) -> Vec<OutageEvent> {
        self.ensure(t);
        self.events
            .iter()
            .take_while(|&&(e, _)| e.start < t)
            .map(|&(e, _)| e)
            .collect()
    }
}

/// Wraps a [`TransferEngine`] and freezes its deliveries through every
/// outage: arrivals and the finish time are remapped from the base
/// timeline into wall time. Fault-protocol counters pass through
/// untouched — outage downtime is session-level resume cost, not
/// in-connection recovery.
#[derive(Debug)]
pub struct OutageEngine<E> {
    inner: E,
    schedule: OutageSchedule,
    last_outage_delay: u64,
}

impl<E: TransferEngine> OutageEngine<E> {
    /// Wraps `inner` under `plan`.
    #[must_use]
    pub fn new(inner: E, plan: OutagePlan) -> Self {
        OutageEngine {
            inner,
            schedule: OutageSchedule::new(plan),
            last_outage_delay: 0,
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Outage delay embedded in the most recent
    /// [`TransferEngine::unit_ready`] answer.
    #[must_use]
    pub fn last_outage_delay(&self) -> u64 {
        self.last_outage_delay
    }

    /// The schedule driving this wrapper.
    pub fn schedule_mut(&mut self) -> &mut OutageSchedule {
        &mut self.schedule
    }
}

impl<E: TransferEngine> TransferEngine for OutageEngine<E> {
    fn unit_ready(&mut self, class: usize, unit: usize, now: u64) -> u64 {
        // The client freezes with the link, so its requests happen at
        // base instants; `now` arrives already on the base timeline.
        let base = self.inner.unit_ready(class, unit, now);
        let t = self.schedule.remap(base);
        self.last_outage_delay = t - base;
        t
    }

    fn finish_time(&mut self) -> u64 {
        let base = self.inner.finish_time();
        self.schedule.remap(base)
    }

    fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    fn last_fault_delay(&self) -> u64 {
        self.inner.last_fault_delay()
    }

    fn class_fault_events(&self, class: usize) -> u64 {
        self.inner.class_fault_events(class)
    }

    fn last_hedge_delay(&self) -> u64 {
        self.inner.last_hedge_delay()
    }

    fn replica_stats(&self) -> crate::replica::ReplicaStats {
        self.inner.replica_stats()
    }

    fn serving_replica(&self, class: usize, unit: usize) -> u32 {
        self.inner.serving_replica(class, unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::schedule::ParallelSchedule;
    use crate::unit::ClassUnits;
    use crate::ParallelEngine;

    const LINK: Link = Link {
        cycles_per_byte: 10,
        name: "test",
    };

    fn stormy(seed: u64) -> OutagePlan {
        OutagePlan {
            seed,
            rate_pm: 400_000,
            min_cycles: 1 << 20,
            max_cycles: 1 << 24,
            negotiation_cycles: 250_000,
        }
    }

    fn engine() -> ParallelEngine {
        let units = vec![
            ClassUnits {
                prelude: 100,
                methods: vec![50, 50],
                trailing: 0,
            },
            ClassUnits {
                prelude: 40,
                methods: vec![20],
                trailing: 10,
            },
        ];
        let schedule = ParallelSchedule {
            class_order: (0..units.len()).collect(),
            thresholds: vec![0; units.len()],
        };
        ParallelEngine::new(LINK, units, &schedule, 4)
    }

    #[test]
    fn quiet_plan_is_the_identity() {
        let mut s = OutageSchedule::new(OutagePlan::quiet(7));
        for t in [0, 1, 12_345, u64::MAX / 2] {
            assert_eq!(s.remap(t), t);
            assert_eq!(s.shift_before(t), 0);
            assert_eq!(s.outages_before(t), 0);
        }
    }

    #[test]
    fn events_are_deterministic_and_seed_sensitive() {
        let plan = stormy(3);
        for k in 0..64 {
            assert_eq!(plan.event_in_period(k), plan.event_in_period(k));
        }
        let other = stormy(4);
        let differs = (0..64).any(|k| plan.event_in_period(k) != other.event_in_period(k));
        assert!(
            differs,
            "two seeds agreeing everywhere would ignore the seed"
        );
    }

    #[test]
    fn durations_respect_the_plan_bounds() {
        let plan = stormy(11);
        let mut seen = 0;
        for k in 0..256 {
            if let Some(e) = plan.event_in_period(k) {
                seen += 1;
                assert!(e.outage_cycles >= plan.min_cycles);
                assert!(e.outage_cycles <= plan.max_cycles);
                assert_eq!(e.downtime, e.outage_cycles + plan.negotiation_cycles);
                assert!(e.start >= k * OUTAGE_PERIOD_CYCLES);
                assert!(e.start < (k + 1) * OUTAGE_PERIOD_CYCLES);
            }
        }
        assert!(seen > 0, "a 40% rate over 256 periods must produce outages");
    }

    #[test]
    fn remap_is_monotone_and_matches_the_naive_sum() {
        let plan = stormy(5);
        let mut sched = OutageSchedule::new(plan);
        let mut last = 0;
        for i in 0..400 {
            let t = i * (OUTAGE_PERIOD_CYCLES / 3);
            let r = sched.remap(t);
            assert!(r >= t, "outages only delay");
            assert!(r >= last, "remap must be monotone");
            last = r;
            let naive: u64 = (0..=t / OUTAGE_PERIOD_CYCLES)
                .filter_map(|k| plan.event_in_period(k))
                .filter(|e| e.start < t)
                .map(|e| e.downtime)
                .sum();
            assert_eq!(
                r - t,
                naive,
                "shift must equal the sum of crossed downtimes"
            );
        }
    }

    #[test]
    fn shift_is_stable_across_query_orders() {
        // Lazy materialization must not depend on the query pattern.
        let plan = stormy(9);
        let mut forward = OutageSchedule::new(plan);
        let mut jumped = OutageSchedule::new(plan);
        let horizon = 100 * OUTAGE_PERIOD_CYCLES;
        let far = jumped.shift_before(horizon);
        let mut acc = 0;
        for i in 0..=100 {
            acc = forward.shift_before(i * OUTAGE_PERIOD_CYCLES);
        }
        assert_eq!(acc, far);
        assert_eq!(jumped.shift_before(0), 0);
    }

    #[test]
    fn quiet_engine_wrapper_is_transparent() {
        let mut bare = engine();
        let mut wrapped = OutageEngine::new(engine(), OutagePlan::quiet(2));
        for c in 0..2 {
            for u in 0..3.min(if c == 0 { 4 } else { 3 }) {
                assert_eq!(wrapped.unit_ready(c, u, 0), bare.unit_ready(c, u, 0));
                assert_eq!(wrapped.last_outage_delay(), 0);
            }
        }
        assert_eq!(wrapped.finish_time(), bare.finish_time());
    }

    #[test]
    fn outages_shift_arrivals_by_exactly_the_crossed_downtime() {
        let plan = OutagePlan {
            seed: 13,
            rate_pm: 1_000_000, // every period
            min_cycles: 1_000,
            max_cycles: 1_000,
            negotiation_cycles: 100,
        };
        let mut bare = engine();
        let mut wrapped = OutageEngine::new(engine(), plan);
        let mut sched = OutageSchedule::new(plan);
        let base = bare.unit_ready(0, 2, 0);
        let wall = wrapped.unit_ready(0, 2, 0);
        assert_eq!(wall, base + sched.shift_before(base));
        assert_eq!(wrapped.last_outage_delay(), wall - base);
    }
}
