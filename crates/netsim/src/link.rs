//! Link models: bandwidth expressed in machine cycles per byte.

use std::fmt;

/// Error constructing a [`Link`] from raw bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// The requested bandwidth was zero bits per second.
    ZeroBandwidth,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::ZeroBandwidth => write!(f, "link bandwidth must be positive"),
        }
    }
}

impl std::error::Error for LinkError {}

/// A network link, as the paper models it: a fixed number of CPU cycles
/// to transfer one byte (§6.1).
///
/// ```
/// use nonstrict_netsim::Link;
///
/// // 10 KB over the paper's modem costs ~1.38 billion Alpha cycles.
/// let cycles = Link::MODEM_28_8.cycles_for(10 * 1024);
/// assert_eq!(cycles, 10 * 1024 * 134_698);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Machine cycles to deliver one byte.
    pub cycles_per_byte: u64,
    /// Human-readable name for reports.
    pub name: &'static str,
}

impl Link {
    /// The paper's T1 line (~1 Mbit/s): 3,815 cycles per byte on a
    /// 500 MHz Alpha.
    pub const T1: Link = Link {
        cycles_per_byte: 3_815,
        name: "T1",
    };

    /// The paper's 28.8 Kbaud modem (~29 Kbit/s): 134,698 cycles per
    /// byte.
    pub const MODEM_28_8: Link = Link {
        cycles_per_byte: 134_698,
        name: "Modem",
    };

    /// A link from raw bandwidth and CPU frequency.
    ///
    /// The cycle cost is clamped to at least one cycle per byte: a link
    /// faster than the CPU still spends a cycle moving each byte, and a
    /// zero cost would make every transfer free and erase all stalls.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::ZeroBandwidth`] if `bits_per_second` is zero.
    pub fn from_bandwidth(bits_per_second: u64, cpu_hz: u64) -> Result<Link, LinkError> {
        if bits_per_second == 0 {
            return Err(LinkError::ZeroBandwidth);
        }
        let cpb = u128::from(cpu_hz) * 8 / u128::from(bits_per_second);
        let cpb = u64::try_from(cpb).unwrap_or(u64::MAX).max(1);
        Ok(Link {
            cycles_per_byte: cpb,
            name: "custom",
        })
    }

    /// Looks up one of the paper's named links by its CLI/scenario
    /// label (case-insensitive): `"t1"` or `"modem"`. Delegates to the
    /// `nonstrict-wire` link table — the single name table for every
    /// surface that names a link, so CLI flags, chaos repro files, the
    /// wire server, and the loadgen all agree on spelling and numbers.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Link> {
        let spec = nonstrict_wire::LinkSpec::by_name(name)?;
        match spec.name {
            "t1" => Some(Link::T1),
            "modem" => Some(Link::MODEM_28_8),
            _ => None,
        }
    }

    /// Cycles to transfer `bytes` at full bandwidth.
    ///
    /// Computed in `u128` and saturated: `bytes * cycles_per_byte` can
    /// exceed `u64` for multi-gigabyte payloads on the modem link.
    #[must_use]
    pub fn cycles_for(&self, bytes: u64) -> u64 {
        let cycles = u128::from(bytes) * u128::from(self.cycles_per_byte);
        u64::try_from(cycles).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(Link::T1.cycles_per_byte, 3_815);
        assert_eq!(Link::MODEM_28_8.cycles_per_byte, 134_698);
    }

    #[test]
    fn wire_table_agrees_with_paper_constants() {
        assert_eq!(
            nonstrict_wire::LinkSpec::T1.cycles_per_byte,
            Link::T1.cycles_per_byte
        );
        assert_eq!(
            nonstrict_wire::LinkSpec::MODEM_28_8.cycles_per_byte,
            Link::MODEM_28_8.cycles_per_byte
        );
    }

    #[test]
    fn by_name_round_trips_the_paper_links() {
        assert_eq!(Link::by_name("t1"), Some(Link::T1));
        assert_eq!(Link::by_name("T1"), Some(Link::T1));
        assert_eq!(Link::by_name("modem"), Some(Link::MODEM_28_8));
        assert_eq!(Link::by_name("Modem"), Some(Link::MODEM_28_8));
        assert_eq!(Link::by_name("dsl"), None);
    }

    #[test]
    fn from_bandwidth_matches_paper_t1_ballpark() {
        // 2^20-bit/s "T1" on a 500 MHz CPU: the paper's 3,815.
        let t1 = Link::from_bandwidth(1_048_576, 500_000_000).unwrap();
        assert_eq!(t1.cycles_per_byte, 3_814); // integer division of the exact 3814.7
    }

    #[test]
    fn from_bandwidth_clamps_fast_links_to_one_cycle_per_byte() {
        // A 100 Gbit/s link on a 500 MHz CPU would round to zero cycles
        // per byte; the clamp keeps transfers from becoming free.
        let fast = Link::from_bandwidth(100_000_000_000, 500_000_000).unwrap();
        assert_eq!(fast.cycles_per_byte, 1);
    }

    #[test]
    fn from_bandwidth_rejects_zero_bandwidth() {
        assert_eq!(
            Link::from_bandwidth(0, 500_000_000).unwrap_err(),
            LinkError::ZeroBandwidth
        );
    }

    #[test]
    fn cycles_scale_linearly() {
        assert_eq!(Link::T1.cycles_for(100), 381_500);
        assert_eq!(Link::T1.cycles_for(0), 0);
    }

    #[test]
    fn cycles_for_saturates_instead_of_overflowing() {
        // 137 TB on the modem overflows u64 (137e12 * 134_698 > 2^64);
        // the boundary must saturate, not wrap.
        let huge = u64::MAX / Link::MODEM_28_8.cycles_per_byte + 1;
        assert_eq!(Link::MODEM_28_8.cycles_for(huge), u64::MAX);
        // One byte below the boundary is still exact.
        let edge = u64::MAX / Link::MODEM_28_8.cycles_per_byte;
        assert_eq!(
            Link::MODEM_28_8.cycles_for(edge),
            edge * Link::MODEM_28_8.cycles_per_byte
        );
    }
}
