//! Link models: bandwidth expressed in machine cycles per byte.

/// A network link, as the paper models it: a fixed number of CPU cycles
/// to transfer one byte (§6.1).
///
/// ```
/// use nonstrict_netsim::Link;
///
/// // 10 KB over the paper's modem costs ~1.38 billion Alpha cycles.
/// let cycles = Link::MODEM_28_8.cycles_for(10 * 1024);
/// assert_eq!(cycles, 10 * 1024 * 134_698);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Machine cycles to deliver one byte.
    pub cycles_per_byte: u64,
    /// Human-readable name for reports.
    pub name: &'static str,
}

impl Link {
    /// The paper's T1 line (~1 Mbit/s): 3,815 cycles per byte on a
    /// 500 MHz Alpha.
    pub const T1: Link = Link { cycles_per_byte: 3_815, name: "T1" };

    /// The paper's 28.8 Kbaud modem (~29 Kbit/s): 134,698 cycles per
    /// byte.
    pub const MODEM_28_8: Link = Link { cycles_per_byte: 134_698, name: "Modem" };

    /// A link from raw bandwidth and CPU frequency.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_second` is zero.
    #[must_use]
    pub fn from_bandwidth(bits_per_second: u64, cpu_hz: u64) -> Link {
        assert!(bits_per_second > 0, "bandwidth must be positive");
        Link { cycles_per_byte: cpu_hz * 8 / bits_per_second, name: "custom" }
    }

    /// Cycles to transfer `bytes` at full bandwidth.
    #[must_use]
    pub fn cycles_for(&self, bytes: u64) -> u64 {
        bytes * self.cycles_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(Link::T1.cycles_per_byte, 3_815);
        assert_eq!(Link::MODEM_28_8.cycles_per_byte, 134_698);
    }

    #[test]
    fn from_bandwidth_matches_paper_t1_ballpark() {
        // 2^20-bit/s "T1" on a 500 MHz CPU: the paper's 3,815.
        let t1 = Link::from_bandwidth(1_048_576, 500_000_000);
        assert_eq!(t1.cycles_per_byte, 3_814); // integer division of the exact 3814.7
    }

    #[test]
    fn cycles_scale_linearly() {
        assert_eq!(Link::T1.cycles_for(100), 381_500);
        assert_eq!(Link::T1.cycles_for(0), 0);
    }
}
