//! Replica-set transfer: health-scored mirrors, hedged demand fetches,
//! and mid-stream failover.
//!
//! A [`ReplicaProfile`] describes one mirror of the restructured
//! program: its own bandwidth (the base link plus a per-mirror spread),
//! its own seeded [`FaultPlan`] (independent loss/corruption/droop
//! draws), its own seeded [`OutagePlan`] (windows where the mirror is
//! unreachable), and an optional death instant for failover testing.
//!
//! [`ReplicaEngine`] wraps any perfect-link [`TransferEngine`] and
//! routes every transfer unit to a mirror:
//!
//! * the client keeps an **EWMA health score** per replica (goodput of
//!   the units it served, decayed by every outage window it was caught
//!   in) and routes each unit to the best-scored live replica;
//! * a unit whose delivery would stall past the **hedge deadline** gets
//!   a duplicate fetch to the second-best replica; the first verified
//!   arrival wins, the loser is canceled, and only the winner plus a
//!   fixed [`HEDGE_OVERHEAD_CYCLES`] charge lands on the timeline;
//! * a dead or unreachable mirror triggers **failover** at the next
//!   unit boundary: verified units never re-transfer, because the
//!   class stream's delivered watermark (PR 2/3 machinery upstream)
//!   survives the switch untouched.
//!
//! Routing decisions run on the deterministic class-major strict
//! timeline (the cumulative base-link transfer clock), so the whole
//! assignment is a pure function of `(profiles, units, link)` computed
//! eagerly at construction — arrivals stay pure lookups, probes cannot
//! perturb the schedule, and a seeded run replays bit for bit. A set
//! of identical perfect mirrors is a transparent wrapper: every
//! surcharge is zero and the inner engine's timeline passes through
//! unchanged.

use std::cmp::Reverse;

use crate::byzantine::{
    ByzantineMode, ByzantinePlan, IntegrityStats, AUDIT_COMPARE_CYCLES, DIGEST_CHECK_CYCLES,
    QUARANTINE_CYCLES,
};
use crate::engine::TransferEngine;
use crate::faults::{splitmix, FaultPlan, FaultStats};
use crate::link::Link;
use crate::outage::{OutagePlan, OUTAGE_PERIOD_CYCLES};
use crate::unit::ClassUnits;

/// Hard cap on mirrors in one replica set; keeps per-run summaries
/// fixed-size (and `Copy`) all the way up the stack.
pub const MAX_REPLICAS: usize = 8;

/// Cycles charged for issuing (and later canceling) a hedged duplicate
/// fetch: the request send plus the cancel round (~0.1 ms on the
/// 500 MHz Alpha). The loser's transfer itself is never charged.
pub const HEDGE_OVERHEAD_CYCLES: u64 = 50_000;

/// EWMA weight: each new sample contributes 1/8 of the score.
const HEALTH_EWMA_SHIFT: u32 = 3;

/// A health score in parts-per-million; every replica starts perfect.
const HEALTH_FULL_PPM: u32 = 1_000_000;

/// One multiplicative decay step of an EWMA health score, explicitly
/// saturating at zero. The shifted step `h >> HEALTH_EWMA_SHIFT`
/// truncates to zero once `h` drops below `1 << HEALTH_EWMA_SHIFT`,
/// which would freeze a dying score at a small positive value forever;
/// the step is therefore floored at one and the subtraction saturates,
/// so repeated decay is monotone, converges to exactly zero, and can
/// never wrap (the same discipline as the admission controller's
/// `retry_after` arithmetic).
#[must_use]
pub fn decay_health(h: u32) -> u32 {
    h.saturating_sub((h >> HEALTH_EWMA_SHIFT).max(1))
}

/// Domain-separation salt for per-replica sub-seed derivation.
const SALT_REPLICA: u64 = 0x5245_504c_4943_4131;

/// Derives the seed for replica `index` from a base seed. Replica 0
/// keeps the base seed exactly, so a one-mirror set is the single
/// origin it replaces, bit for bit.
#[must_use]
pub fn replica_seed(base: u64, index: u32) -> u64 {
    if index == 0 {
        base
    } else {
        splitmix(base ^ SALT_REPLICA ^ u64::from(index))
    }
}

/// One mirror of the restructured program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaProfile {
    /// The mirror's own link (base link slowed by the per-mirror
    /// spread).
    pub link: Link,
    /// The mirror's independently seeded fault profile.
    pub faults: FaultPlan,
    /// The mirror's independently seeded unreachability windows.
    pub outages: OutagePlan,
    /// Base-timeline cycle at which the mirror dies for good, if it
    /// does (failover testing).
    pub dead_from: Option<u64>,
}

/// Final per-replica accounting for one run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// Units this replica ended up serving (hedge winners included).
    pub units_served: u32,
    /// Payload bytes of the units it served.
    pub bytes_served: u64,
    /// Retransmissions its fault profile forced on those units.
    pub retries: u64,
    /// Routing instants that caught this replica inside one of its
    /// outage windows.
    pub outage_hits: u32,
    /// Final EWMA health score (ppm; 1,000,000 = perfect goodput).
    pub health_ppm: u32,
    /// Whether the replica was still alive when the transfer ended.
    pub alive: bool,
    /// Units this replica served with bytes diverging from the pinned
    /// manifest (zero when no Byzantine protection is armed).
    pub equivocations: u32,
    /// Whether proven divergence expelled the replica from the set.
    pub quarantined: bool,
}

/// Aggregate replica-set counters for one engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Mirrors in the set (0 when no replica routing is active).
    pub replicas: u32,
    /// Hedged duplicate fetches issued.
    pub hedges: u64,
    /// Hedges whose duplicate arrived (verified) first.
    pub hedge_wins: u64,
    /// Cycles attributable to hedging: the deadline wait before each
    /// winning duplicate plus every issue/cancel overhead.
    pub hedge_cycles: u64,
    /// Unit boundaries where the serving replica changed inside one
    /// class stream (failover or hedge winner switch).
    pub failovers: u64,
    /// Whether routing was ever down to at most one live replica — the
    /// session above fails closed to strict execution from the sole
    /// survivor.
    pub sole_survivor: bool,
    /// Per-replica accounting, `health[..replicas as usize]` valid.
    pub health: [ReplicaHealth; MAX_REPLICAS],
}

/// Remaining unreachability if base instant `t` falls inside one of the
/// plan's outage windows; zero otherwise. Windows can outlast their
/// draw period, so every period that could still cover `t` is checked.
fn outage_wait(plan: &OutagePlan, t: u64) -> u64 {
    if plan.is_quiet() {
        return 0;
    }
    let first = t.saturating_sub(plan.max_cycles) / OUTAGE_PERIOD_CYCLES;
    let last = t / OUTAGE_PERIOD_CYCLES;
    let mut wait = 0u64;
    for k in first..=last {
        if let Some(e) = plan.event_in_period(k) {
            let end = e.start.saturating_add(e.outage_cycles);
            if e.start <= t && t < end {
                wait = wait.max(end - t);
            }
        }
    }
    wait
}

/// Wraps a perfect-link [`TransferEngine`] and routes every unit to the
/// healthiest live mirror of a replica set, hedging past-deadline
/// deliveries to the runner-up. Every routing decision, health update,
/// and surcharge is computed eagerly at construction on the
/// deterministic class-major strict clock; arrivals are pure lookups.
#[derive(Debug)]
pub struct ReplicaEngine<E> {
    inner: E,
    /// Cumulative recovery surcharge (bandwidth spread, fault recovery,
    /// droop stretch, outage wait) through each unit, per class.
    recovery_prefix: Vec<Vec<u64>>,
    /// Cumulative hedge surcharge (deadline waits and issue/cancel
    /// overhead) through each unit, per class.
    hedge_prefix: Vec<Vec<u64>>,
    /// Cumulative integrity surcharge (digest checks, divergence
    /// refetches, audit rounds, fence re-pins) through each unit, per
    /// class. All-zero when no Byzantine plan is armed.
    integrity_prefix: Vec<Vec<u64>>,
    /// Serving replica per `(class, unit)`.
    assignment: Vec<Vec<u32>>,
    /// Fault events (retransmissions) per class, for degradation
    /// pressure accounting upstream.
    class_events: Vec<u64>,
    stats: FaultStats,
    rstats: ReplicaStats,
    istats: IntegrityStats,
    last_fault_delay: u64,
    last_hedge_delay: u64,
    last_integrity_delay: u64,
}

impl<E: TransferEngine> ReplicaEngine<E> {
    /// Wraps `inner`, routing `units` across `profiles` (truncated to
    /// [`MAX_REPLICAS`]) over the base `link`. A `hedge_deadline` of
    /// zero disables hedging.
    #[must_use]
    pub fn new(
        inner: E,
        profiles: &[ReplicaProfile],
        hedge_deadline: u64,
        units: &[ClassUnits],
        link: Link,
    ) -> Self {
        Self::with_integrity(inner, profiles, hedge_deadline, units, link, None)
    }

    /// Like [`ReplicaEngine::new`], additionally armed with a
    /// [`ByzantinePlan`]: every delivered unit is checked against its
    /// pinned manifest digest, divergent mirrors are quarantined and
    /// failed over, a seeded fraction of units is cross-audited on the
    /// runner-up mirror, and a [`ByzantineMode::StaleEpoch`] plan gets
    /// an epoch fence at the midpoint of the class-major strict
    /// timeline (the origin's mid-stream re-restructure). `None` is
    /// bit-identical to [`ReplicaEngine::new`].
    #[must_use]
    pub fn with_integrity(
        inner: E,
        profiles: &[ReplicaProfile],
        hedge_deadline: u64,
        units: &[ClassUnits],
        link: Link,
        plan: Option<&ByzantinePlan>,
    ) -> Self {
        let n = profiles.len().clamp(1, MAX_REPLICAS);
        let profiles = &profiles[..n];
        let mut health = [HEALTH_FULL_PPM; MAX_REPLICAS];
        let mut rstats = ReplicaStats {
            replicas: u32::try_from(n).unwrap_or(u32::MAX),
            ..ReplicaStats::default()
        };
        let mut stats = FaultStats::default();
        let mut istats = IntegrityStats {
            armed: plan.is_some(),
            ..IntegrityStats::default()
        };
        let mut quarantined = [false; MAX_REPLICAS];
        // The epoch fence: a stale-epoch plan models the origin
        // re-restructuring halfway through the class-major strict
        // timeline; honest mirrors pick the new epoch up instantly,
        // the stale mirrors keep serving the old layout.
        let fence_est: Option<u64> =
            plan.filter(|p| p.mode == ByzantineMode::StaleEpoch)
                .map(|_| {
                    units
                        .iter()
                        .map(|u| {
                            std::iter::once(u.prelude)
                                .chain(u.methods.iter().copied())
                                .chain(std::iter::once(u.trailing))
                                .map(|b| link.cycles_for(b))
                                .sum::<u64>()
                        })
                        .sum::<u64>()
                        / 2
                });
        let mut fence_crossed = false;
        let mut recovery_prefix = Vec::with_capacity(units.len());
        let mut hedge_prefix = Vec::with_capacity(units.len());
        let mut integrity_prefix = Vec::with_capacity(units.len());
        let mut assignment = Vec::with_capacity(units.len());
        let mut class_events = vec![0u64; units.len()];
        // The routing clock: the class-major strict timeline. It only
        // depends on (units, link), so routing is probe-proof.
        let mut est = 0u64;
        for (c, u) in units.iter().enumerate() {
            let sizes: Vec<u64> = std::iter::once(u.prelude)
                .chain(u.methods.iter().copied())
                .chain(std::iter::once(u.trailing))
                .collect();
            let mut rec = Vec::with_capacity(sizes.len());
            let mut hed = Vec::with_capacity(sizes.len());
            let mut int = Vec::with_capacity(sizes.len());
            let mut assign = Vec::with_capacity(sizes.len());
            let mut acc_rec = 0u64;
            let mut acc_hedge = 0u64;
            let mut acc_int = 0u64;
            let mut prev_serving: Option<usize> = None;
            for (i, &bytes) in sizes.iter().enumerate() {
                let base_tx = link.cycles_for(bytes);
                // The candidates: replicas still alive at the routing
                // instant and not quarantined for proven divergence,
                // ranked reachable-first, then healthiest, then lowest
                // id.
                let mut ranked: Vec<(usize, u64)> = (0..n)
                    .filter(|&r| profiles[r].dead_from.is_none_or(|d| est < d) && !quarantined[r])
                    .map(|r| (r, outage_wait(&profiles[r].outages, est)))
                    .collect();
                ranked.sort_by_key(|&(r, wait)| (wait > 0, Reverse(health[r]), r));
                if ranked.len() <= 1 && n >= 2 {
                    rstats.sole_survivor = true;
                }
                // Every reachability check decays the health of a
                // replica caught inside one of its outage windows.
                for &(r, wait) in &ranked {
                    if wait > 0 {
                        rstats.health[r].outage_hits += 1;
                        health[r] = decay_health(health[r]);
                    }
                }
                let cost_of = |r: usize, wait: u64| {
                    let p = &profiles[r];
                    let tx = p.link.cycles_for(bytes);
                    let d = p.faults.unit_delivery(c, i, tx);
                    let droop = p
                        .faults
                        .remap(est.saturating_add(tx))
                        .saturating_sub(p.faults.remap(est))
                        .saturating_sub(tx);
                    let cost = tx
                        .saturating_sub(base_tx)
                        .saturating_add(d.penalty_cycles)
                        .saturating_add(droop)
                        .saturating_add(wait);
                    (cost, d, tx)
                };
                let (primary, wait_p) = ranked.first().copied().unwrap_or((0, 0));
                let (cost_p, d_p, tx_p) = cost_of(primary, wait_p);
                let mut serving = primary;
                let mut recovery = cost_p;
                let mut delivery = d_p;
                let mut tx_s = tx_p;
                let mut hedge = 0u64;
                if hedge_deadline > 0 && cost_p > hedge_deadline {
                    if let Some(&(second, wait_s)) = ranked.get(1) {
                        // The primary stalled past the deadline: issue
                        // a duplicate to the runner-up and take the
                        // first arrival, charging only the winner plus
                        // the issue/cancel overhead.
                        rstats.hedges += 1;
                        let (cost_s, d_s, t_s) = cost_of(second, wait_s);
                        let hedged = hedge_deadline
                            .saturating_add(cost_s)
                            .saturating_add(HEDGE_OVERHEAD_CYCLES);
                        if hedged < cost_p {
                            rstats.hedge_wins += 1;
                            serving = second;
                            recovery = cost_s;
                            delivery = d_s;
                            tx_s = t_s;
                            hedge = hedge_deadline + HEDGE_OVERHEAD_CYCLES;
                        } else {
                            hedge = HEDGE_OVERHEAD_CYCLES;
                        }
                    }
                }
                rstats.hedge_cycles += hedge;
                // The integrity layer: check the delivered unit against
                // its pinned manifest digest, cross-audit a seeded
                // sample on the runner-up, and quarantine + refetch on
                // proven divergence. Everything the misbehavior causes
                // — the wasted divergent transmission, teardown, audit
                // arbitration, fence re-pins — lands in the integrity
                // surcharge; the honest refetch that replaces a
                // divergent unit is accounted like any normal delivery.
                let mut integrity = 0u64;
                if let Some(p) = plan {
                    istats.digest_checks += 1;
                    integrity = integrity.saturating_add(DIGEST_CHECK_CYCLES);
                    if fence_est.is_some_and(|f| est >= f) && !fence_crossed {
                        // First routing instant past the origin's
                        // re-restructure: re-fetch and pin the new
                        // manifest epoch before linking anything else.
                        fence_crossed = true;
                        istats.manifest_pins += 1;
                        integrity = integrity
                            .saturating_add(link.cycles_for(p.manifest_bytes))
                            .saturating_add(DIGEST_CHECK_CYCLES);
                    }
                    let past_fence = fence_est.is_some_and(|f| est >= f);
                    let diverged = p.diverges(serving, c, i, n, past_fence);
                    let audited = p.audits(c, i);
                    if audited {
                        istats.audits += 1;
                        integrity = integrity.saturating_add(AUDIT_COMPARE_CYCLES);
                    }
                    if diverged {
                        istats.divergent_units += 1;
                        rstats.health[serving].equivocations += 1;
                        if p.mode.detected_inline() || audited {
                            if audited && !p.mode.detected_inline() {
                                istats.audit_mismatches += 1;
                            }
                            // Refetch chain: quarantine the divergent
                            // mirror and re-fetch from the next-ranked
                            // candidate — whose bytes are digest-checked
                            // too, so a whole stale sub-fleet is
                            // quarantined in one walk. Stops at the
                            // first digest-clean source, or fails
                            // closed when none is left (the last source
                            // is never expelled: the engine still needs
                            // a defined timeline for the session above
                            // to fail closed from).
                            loop {
                                let alt = ranked
                                    .iter()
                                    .copied()
                                    .find(|&(r, _)| r != serving && !quarantined[r]);
                                let Some((r2, wait2)) = alt else {
                                    rstats.sole_survivor = true;
                                    break;
                                };
                                // Quarantined like a dead mirror: out
                                // of the candidate set from the next
                                // routing instant, score floored.
                                quarantined[serving] = true;
                                rstats.health[serving].quarantined = true;
                                health[serving] = 0;
                                istats.quarantines += 1;
                                if p.mode == ByzantineMode::StaleEpoch && past_fence {
                                    istats.fence_refetches += 1;
                                }
                                // The divergent attempt was wasted: its
                                // full transmission plus whatever
                                // recovery it dragged in, plus the
                                // teardown.
                                istats.refetched_bytes += bytes;
                                integrity = integrity
                                    .saturating_add(QUARANTINE_CYCLES)
                                    .saturating_add(base_tx)
                                    .saturating_add(recovery);
                                if !p.mode.detected_inline() {
                                    // Collusion linked a wrong-but-
                                    // verifiable prefix before the
                                    // audit caught it: everything the
                                    // mirror served so far re-transfers
                                    // from the runner-up.
                                    let prev = rstats.health[serving].bytes_served;
                                    istats.refetched_bytes += prev;
                                    integrity = integrity
                                        .saturating_add(profiles[r2].link.cycles_for(prev));
                                }
                                // The refetch is a normal delivery from
                                // the runner-up...
                                let (cost2, d2, t2) = cost_of(r2, wait2);
                                serving = r2;
                                recovery = cost2;
                                delivery = d2;
                                tx_s = t2;
                                istats.digest_checks += 1;
                                integrity = integrity.saturating_add(DIGEST_CHECK_CYCLES);
                                if !p.diverges(r2, c, i, n, past_fence) {
                                    break;
                                }
                                // ...unless the runner-up equivocates
                                // too: caught by the same digest check,
                                // walk on.
                                istats.divergent_units += 1;
                                rstats.health[r2].equivocations += 1;
                            }
                        } else {
                            // Collusion passed the digest and the audit
                            // sampler skipped this unit: wrong bytes
                            // were linked and executed.
                            istats.undetected_units += 1;
                        }
                    }
                }
                istats.integrity_cycles += integrity;
                if prev_serving.is_some_and(|p| p != serving) {
                    rstats.failovers += 1;
                }
                prev_serving = Some(serving);
                acc_rec = acc_rec.saturating_add(recovery);
                acc_hedge = acc_hedge.saturating_add(hedge);
                acc_int = acc_int.saturating_add(integrity);
                rec.push(acc_rec);
                hed.push(acc_hedge);
                int.push(acc_int);
                assign.push(u32::try_from(serving).unwrap_or(u32::MAX));
                stats.retries += u64::from(delivery.retries);
                stats.lost += u64::from(delivery.lost);
                stats.corrupted += u64::from(delivery.corrupted);
                stats.quarantined += u64::from(delivery.quarantined);
                stats.drops += u64::from(delivery.drops);
                stats.recovery_cycles += recovery;
                stats.retransmitted_bytes += bytes * u64::from(delivery.retries);
                stats.forced += u64::from(delivery.forced);
                class_events[c] += u64::from(delivery.retries);
                let h = &mut rstats.health[serving];
                h.units_served += 1;
                h.bytes_served += bytes;
                h.retries += u64::from(delivery.retries);
                if tx_s > 0 {
                    // Goodput sample in ppm: clean transmission over
                    // transmission-plus-recovery.
                    let sample = u32::try_from(
                        u128::from(tx_s) * u128::from(HEALTH_FULL_PPM)
                            / u128::from(tx_s.saturating_add(recovery)),
                    )
                    .unwrap_or(HEALTH_FULL_PPM);
                    let old = health[serving];
                    health[serving] =
                        old - (old >> HEALTH_EWMA_SHIFT) + (sample >> HEALTH_EWMA_SHIFT);
                }
                est = est.saturating_add(base_tx);
            }
            recovery_prefix.push(rec);
            hedge_prefix.push(hed);
            integrity_prefix.push(int);
            assignment.push(assign);
        }
        for (r, p) in profiles.iter().enumerate() {
            rstats.health[r].health_ppm = health[r];
            rstats.health[r].alive = p.dead_from.is_none_or(|d| d > est);
        }
        ReplicaEngine {
            inner,
            recovery_prefix,
            hedge_prefix,
            integrity_prefix,
            assignment,
            class_events,
            stats,
            rstats,
            istats,
            last_fault_delay: 0,
            last_hedge_delay: 0,
            last_integrity_delay: 0,
        }
    }

    /// The wrapped perfect-link engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: TransferEngine> TransferEngine for ReplicaEngine<E> {
    fn unit_ready(&mut self, class: usize, unit: usize, now: u64) -> u64 {
        let base = self.inner.unit_ready(class, unit, now);
        let rec = self.recovery_prefix[class][unit];
        let hed = self.hedge_prefix[class][unit];
        let int = self.integrity_prefix[class][unit];
        self.last_fault_delay = rec;
        self.last_hedge_delay = hed;
        self.last_integrity_delay = int;
        base.saturating_add(rec)
            .saturating_add(hed)
            .saturating_add(int)
    }

    fn finish_time(&mut self) -> u64 {
        // Run the base timeline to completion, then apply each class
        // stream's full surcharge to its last arrival.
        let base_finish = self.inner.finish_time();
        let mut finish = base_finish;
        for c in 0..self.recovery_prefix.len() {
            let last = self.recovery_prefix[c].len() - 1;
            let b = self.inner.unit_ready(c, last, base_finish);
            finish = finish.max(
                b.saturating_add(self.recovery_prefix[c][last])
                    .saturating_add(self.hedge_prefix[c][last])
                    .saturating_add(self.integrity_prefix[c][last]),
            );
        }
        finish
    }

    fn total_bytes(&self) -> u64 {
        // Unique payload bytes; hedged duplicates are canceled, not
        // delivered, and retransmissions are reported in
        // `fault_stats().retransmitted_bytes`.
        self.inner.total_bytes()
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    fn last_fault_delay(&self) -> u64 {
        self.last_fault_delay
    }

    fn class_fault_events(&self, class: usize) -> u64 {
        self.class_events[class]
    }

    fn last_hedge_delay(&self) -> u64 {
        self.last_hedge_delay
    }

    fn replica_stats(&self) -> ReplicaStats {
        self.rstats
    }

    fn serving_replica(&self, class: usize, unit: usize) -> u32 {
        self.assignment[class][unit]
    }

    fn last_integrity_delay(&self) -> u64 {
        self.last_integrity_delay
    }

    fn integrity_stats(&self) -> IntegrityStats {
        self.istats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ParallelSchedule;
    use crate::ParallelEngine;

    const LINK: Link = Link {
        cycles_per_byte: 10,
        name: "test",
    };

    fn sample_units() -> Vec<ClassUnits> {
        vec![
            ClassUnits {
                prelude: 100,
                methods: vec![50, 50, 80],
                trailing: 0,
            },
            ClassUnits {
                prelude: 40,
                methods: vec![20],
                trailing: 10,
            },
        ]
    }

    fn engine(units: &[ClassUnits]) -> ParallelEngine {
        let schedule = ParallelSchedule {
            class_order: (0..units.len()).collect(),
            thresholds: vec![0; units.len()],
        };
        ParallelEngine::new(LINK, units.to_vec(), &schedule, 4)
    }

    fn perfect_profile(seed: u64) -> ReplicaProfile {
        ReplicaProfile {
            link: LINK,
            faults: FaultPlan::perfect(seed),
            outages: OutagePlan::quiet(seed),
            dead_from: None,
        }
    }

    fn lossy_profile(seed: u64) -> ReplicaProfile {
        ReplicaProfile {
            faults: FaultPlan {
                seed,
                loss_pm: 400_000,
                corrupt_pm: 100_000,
                drop_pm: 50_000,
                semantic_pm: 0,
                droop_pm: 0,
                reconnect_cycles: 500_000,
            },
            ..perfect_profile(seed)
        }
    }

    #[test]
    fn identical_perfect_mirrors_are_transparent() {
        let units = sample_units();
        let profiles = [perfect_profile(1), perfect_profile(2), perfect_profile(3)];
        let mut bare = engine(&units);
        let mut set = ReplicaEngine::new(engine(&units), &profiles, 1_000, &units, LINK);
        for (c, u) in units.iter().enumerate() {
            for i in 0..u.unit_count() {
                assert_eq!(set.unit_ready(c, i, 0), bare.unit_ready(c, i, 0));
                assert_eq!(set.last_fault_delay(), 0);
                assert_eq!(set.last_hedge_delay(), 0);
                assert_eq!(set.serving_replica(c, i), 0, "ties go to the primary");
            }
        }
        assert_eq!(set.finish_time(), bare.finish_time());
        assert_eq!(set.fault_stats(), FaultStats::default());
        let r = set.replica_stats();
        assert_eq!(r.replicas, 3);
        assert_eq!(
            (r.hedges, r.hedge_wins, r.hedge_cycles, r.failovers),
            (0, 0, 0, 0)
        );
        assert!(!r.sole_survivor);
        assert!(r.health[..3]
            .iter()
            .all(|h| h.health_ppm == HEALTH_FULL_PPM && h.alive));
    }

    #[test]
    fn routing_is_deterministic_and_seed_sensitive() {
        let units = sample_units();
        let mk = |seed| {
            ReplicaEngine::new(
                engine(&units),
                &[lossy_profile(seed), lossy_profile(seed + 100)],
                200_000,
                &units,
                LINK,
            )
        };
        let a = mk(7).replica_stats();
        let b = mk(7).replica_stats();
        assert_eq!(a, b, "same profiles must route identically");
        let c = mk(8).replica_stats();
        assert_ne!(a.health, c.health, "seeds must matter");
    }

    #[test]
    fn heavy_primary_faults_trigger_hedges_that_win() {
        // Enough same-shaped units that a 40%-loss plan is certain to
        // fault some of them under this fixed seed.
        let units: Vec<ClassUnits> = (0..2)
            .map(|_| ClassUnits {
                prelude: 100,
                methods: vec![50, 50, 80],
                trailing: 0,
            })
            .collect();
        let profiles = [lossy_profile(3), perfect_profile(4)];
        let mut set = ReplicaEngine::new(engine(&units), &profiles, 100_000, &units, LINK);
        let r = set.replica_stats();
        assert!(r.hedges > 0, "40% loss must stall units past the deadline");
        assert!(r.hedge_wins > 0, "a perfect runner-up must win some hedges");
        assert!(r.hedge_cycles > 0);
        // Hedging is bounded: every unit's total surcharge is at most
        // deadline + runner-up cost + overhead, so arrivals stay
        // monotone and finite.
        let finish = set.finish_time();
        for (c, u) in units.iter().enumerate() {
            let mut last = 0;
            for i in 0..u.unit_count() {
                let t = set.unit_ready(c, i, 0);
                assert!(t >= last, "class {c} unit {i} must stay monotone");
                assert!(t <= finish);
                last = t;
            }
        }
    }

    #[test]
    fn dead_replica_fails_over_at_the_next_unit_boundary() {
        let units = sample_units();
        let profiles = [
            ReplicaProfile {
                dead_from: Some(1), // dies before the second routing instant
                ..perfect_profile(1)
            },
            perfect_profile(2),
            perfect_profile(3),
        ];
        let mut set = ReplicaEngine::new(engine(&units), &profiles, 0, &units, LINK);
        let r = set.replica_stats();
        assert_eq!(set.serving_replica(0, 0), 0, "first unit routes at est 0");
        for (c, u) in units.iter().enumerate() {
            for i in 0..u.unit_count() {
                if (c, i) != (0, 0) {
                    assert_ne!(set.serving_replica(c, i), 0, "dead mirrors serve nothing");
                }
            }
        }
        assert!(
            r.failovers >= 1,
            "the switch off the dead mirror is a failover"
        );
        assert!(!r.health[0].alive);
        assert!(!r.sole_survivor, "two mirrors survive");
        // Identical surviving mirrors: the timeline is unperturbed.
        let mut bare = engine(&units);
        assert_eq!(set.finish_time(), bare.finish_time());
    }

    #[test]
    fn killing_all_but_one_raises_the_sole_survivor_flag() {
        let units = sample_units();
        let profiles = [
            ReplicaProfile {
                dead_from: Some(0),
                ..perfect_profile(1)
            },
            perfect_profile(2),
        ];
        let set = ReplicaEngine::new(engine(&units), &profiles, 0, &units, LINK);
        let r = set.replica_stats();
        assert!(r.sole_survivor);
        assert_eq!(
            r.health[1].units_served as usize,
            units.iter().map(ClassUnits::unit_count).sum::<usize>()
        );
    }

    #[test]
    fn health_scores_rank_a_faulty_mirror_below_a_clean_one() {
        let units: Vec<ClassUnits> = (0..6)
            .map(|_| ClassUnits {
                prelude: 200,
                methods: vec![100, 100, 100],
                trailing: 50,
            })
            .collect();
        let profiles = [lossy_profile(5), perfect_profile(6)];
        let set = ReplicaEngine::new(engine(&units), &profiles, 0, &units, LINK);
        let r = set.replica_stats();
        assert!(
            r.health[0].health_ppm < r.health[1].health_ppm,
            "a 40%-loss mirror must score below a perfect one: {:?}",
            r.health
        );
        assert!(
            r.health[1].units_served > 0,
            "routing must shift work to the healthy mirror"
        );
    }

    #[test]
    fn outage_windows_divert_routing_and_decay_health() {
        let units: Vec<ClassUnits> = (0..4)
            .map(|_| ClassUnits {
                prelude: 1 << 20, // big units so est crosses outage periods
                methods: vec![1 << 19],
                trailing: 0,
            })
            .collect();
        let stormy = ReplicaProfile {
            outages: OutagePlan {
                seed: 9,
                rate_pm: 1_000_000,
                min_cycles: OUTAGE_PERIOD_CYCLES / 2,
                max_cycles: OUTAGE_PERIOD_CYCLES / 2,
                negotiation_cycles: 0,
            },
            ..perfect_profile(9)
        };
        let profiles = [stormy, perfect_profile(10)];
        let set = ReplicaEngine::new(engine(&units), &profiles, 0, &units, LINK);
        let r = set.replica_stats();
        assert!(
            r.health[0].outage_hits > 0,
            "an every-period outage plan must catch some routing instants"
        );
        assert!(r.health[0].health_ppm < HEALTH_FULL_PPM);
        assert!(
            r.health[1].units_served > 0,
            "routing must avoid the unreachable mirror"
        );
    }

    #[test]
    fn decay_is_monotone_saturating_and_converges_to_zero() {
        // Property hammer: from every starting point — full score,
        // powers of two, the sub-shift band where the old arithmetic
        // froze, and a spread of odd values — repeated decay is
        // strictly monotone while positive, never wraps, reaches
        // exactly zero in bounded steps, and zero is a fixed point.
        let starts: Vec<u32> = (0..=16)
            .map(|k| 1u32 << k)
            .chain([HEALTH_FULL_PPM, 999_999, 12_345, 7, 6, 5, 4, 3, 2, 1, 0])
            .chain((0..64).map(|i| splitmix(0x000d_eca7 ^ i) as u32 % (HEALTH_FULL_PPM + 1)))
            .collect();
        for start in starts {
            let mut h = start;
            let mut steps = 0u32;
            while h > 0 {
                let next = decay_health(h);
                assert!(next < h, "decay from {start} stalled at {h}");
                h = next;
                steps += 1;
                assert!(steps <= 256, "decay from {start} did not converge");
            }
            assert_eq!(decay_health(0), 0, "zero is a fixed point");
        }
    }

    #[test]
    fn no_byzantine_plan_is_bit_identical_to_new() {
        let units = sample_units();
        let profiles = [lossy_profile(3), perfect_profile(4)];
        let mut a = ReplicaEngine::new(engine(&units), &profiles, 100_000, &units, LINK);
        let mut b =
            ReplicaEngine::with_integrity(engine(&units), &profiles, 100_000, &units, LINK, None);
        for (c, u) in units.iter().enumerate() {
            for i in 0..u.unit_count() {
                assert_eq!(a.unit_ready(c, i, 0), b.unit_ready(c, i, 0));
                assert_eq!(b.last_integrity_delay(), 0);
            }
        }
        assert_eq!(a.replica_stats(), b.replica_stats());
        assert_eq!(b.integrity_stats(), IntegrityStats::default());
    }

    #[test]
    fn equivocating_mirror_is_quarantined_at_first_divergence() {
        // Enough units that a 20% divergence plan certainly fires.
        let units: Vec<ClassUnits> = (0..4)
            .map(|_| ClassUnits {
                prelude: 200,
                methods: vec![100, 100, 100, 100],
                trailing: 50,
            })
            .collect();
        let profiles = [perfect_profile(1), perfect_profile(2)];
        let plan = ByzantinePlan {
            seed: 5,
            byzantine: 1,
            mode: ByzantineMode::Equivocate,
            audit_rate_pm: 0,
            manifest_bytes: 64,
        };
        // Kill mirror 0 so the byzantine mirror 1 serves first.
        let dead_primary = [
            ReplicaProfile {
                dead_from: Some(0),
                ..profiles[0]
            },
            profiles[1],
        ];
        let set = ReplicaEngine::with_integrity(
            engine(&units),
            &dead_primary,
            0,
            &units,
            LINK,
            Some(&plan),
        );
        let st = set.integrity_stats();
        assert!(st.armed);
        assert!(st.digest_checks > 0);
        assert!(st.divergent_units >= 1, "a 20% plan must diverge somewhere");
        let r = set.replica_stats();
        assert!(r.health[1].equivocations >= 1);
        // With no honest mirror left the set fails closed instead of
        // quarantining into an empty candidate list.
        assert!(r.sole_survivor);
        assert_eq!(st.quarantines, 0, "the last source is never expelled");
        assert_eq!(
            st.undetected_units, 0,
            "inline detection executes nothing wrong"
        );
    }

    #[test]
    fn equivocation_quarantines_and_fails_over() {
        let units: Vec<ClassUnits> = (0..4)
            .map(|_| ClassUnits {
                prelude: 200,
                methods: vec![100, 100, 100, 100],
                trailing: 50,
            })
            .collect();
        let profiles = [perfect_profile(1), perfect_profile(2), perfect_profile(3)];
        let plan = ByzantinePlan {
            seed: 5,
            byzantine: 2,
            mode: ByzantineMode::Equivocate,
            audit_rate_pm: 0,
            manifest_bytes: 64,
        };
        // Kill the honest primary's rank: mirrors 1 and 2 are
        // byzantine, mirror 0 honest; force routing through a
        // byzantine mirror by killing mirror 0 for the first units.
        let p = [
            ReplicaProfile {
                dead_from: Some(1),
                ..profiles[0]
            },
            profiles[1],
            profiles[2],
        ];
        let set = ReplicaEngine::with_integrity(engine(&units), &p, 0, &units, LINK, Some(&plan));
        let st = set.integrity_stats();
        let r = set.replica_stats();
        assert!(
            st.quarantines >= 1,
            "a diverging mirror must be quarantined"
        );
        assert!(st.integrity_cycles > 0);
        assert!(st.refetched_bytes > 0);
        let quarantined: Vec<usize> = (1..3).filter(|&i| r.health[i].quarantined).collect();
        assert!(!quarantined.is_empty());
        // A quarantined mirror serves nothing after its divergence:
        // walk the assignment and check no unit maps to it after its
        // equivocation was caught.
        let mut seen_quarantine = false;
        for (c, u) in units.iter().enumerate() {
            for i in 0..u.unit_count() {
                let s = set.serving_replica(c, i) as usize;
                if seen_quarantine {
                    assert!(
                        !r.health[s].quarantined,
                        "unit ({c},{i}) served by quarantined mirror {s}"
                    );
                }
                if r.health[s].quarantined {
                    seen_quarantine = true;
                }
            }
        }
    }

    #[test]
    fn colluding_mirror_is_caught_only_by_audits() {
        let units: Vec<ClassUnits> = (0..6)
            .map(|_| ClassUnits {
                prelude: 200,
                methods: vec![100, 100, 100, 100],
                trailing: 50,
            })
            .collect();
        let p = [
            ReplicaProfile {
                dead_from: Some(1),
                ..perfect_profile(1)
            },
            perfect_profile(2),
            perfect_profile(3),
        ];
        let mk = |audit_rate_pm| {
            let plan = ByzantinePlan {
                seed: 5,
                byzantine: 2,
                mode: ByzantineMode::Collude,
                audit_rate_pm,
                manifest_bytes: 64,
            };
            ReplicaEngine::with_integrity(engine(&units), &p, 0, &units, LINK, Some(&plan))
                .integrity_stats()
        };
        let no_audit = mk(0);
        assert_eq!(no_audit.quarantines, 0, "forged digests pass inline checks");
        assert!(
            no_audit.undetected_units > 0,
            "unaudited collusion executes wrong bytes"
        );
        let audited = mk(500_000);
        assert!(audited.audits > 0);
        assert!(
            audited.audit_mismatches > 0 && audited.quarantines > 0,
            "a 50% audit rate must catch a 20% divergence stream: {audited:?}"
        );
        assert!(
            audited.undetected_units < no_audit.undetected_units,
            "auditing must shrink the wrong-prefix exposure"
        );
    }

    #[test]
    fn stale_epoch_mirror_serves_nothing_after_the_fence() {
        let units: Vec<ClassUnits> = (0..6)
            .map(|_| ClassUnits {
                prelude: 200,
                methods: vec![100, 100, 100, 100],
                trailing: 50,
            })
            .collect();
        // Mirror 1 is byzantine-stale; mirror 0 honest and healthy.
        let p = [perfect_profile(1), perfect_profile(2)];
        let plan = ByzantinePlan {
            seed: 5,
            byzantine: 1,
            mode: ByzantineMode::StaleEpoch,
            audit_rate_pm: 0,
            manifest_bytes: 64,
        };
        let set = ReplicaEngine::with_integrity(engine(&units), &p, 0, &units, LINK, Some(&plan));
        let st = set.integrity_stats();
        // Healthy honest primary keeps the stale mirror idle: no
        // divergence ever observed, but the fence re-pin still fires.
        assert_eq!(st.manifest_pins, 1, "the fence re-pins the manifest");
        assert_eq!(st.fence_refetches, 0);
        // Now make the stale mirror the preferred server: pair it with
        // an honest-but-lossy primary whose health decays fast.
        let p = [lossy_profile(1), perfect_profile(2)];
        let mut set =
            ReplicaEngine::with_integrity(engine(&units), &p, 0, &units, LINK, Some(&plan));
        let st = set.integrity_stats();
        let r = set.replica_stats();
        assert!(
            r.health[1].units_served > 0,
            "the clean stale mirror must out-rank the lossy one pre-fence"
        );
        assert!(
            st.fence_refetches >= 1,
            "a serving stale mirror must be caught at the fence: {st:?}"
        );
        assert!(r.health[1].quarantined);
        // No post-fence unit may remain assigned to the stale mirror:
        // detection refetches it from the honest one.
        let total: u64 = units
            .iter()
            .map(|u| {
                std::iter::once(u.prelude)
                    .chain(u.methods.iter().copied())
                    .chain(std::iter::once(u.trailing))
                    .map(|b| LINK.cycles_for(b))
                    .sum::<u64>()
            })
            .sum();
        let fence = total / 2;
        let mut est = 0u64;
        for (c, u) in units.iter().enumerate() {
            let sizes: Vec<u64> = std::iter::once(u.prelude)
                .chain(u.methods.iter().copied())
                .chain(std::iter::once(u.trailing))
                .collect();
            for (i, &bytes) in sizes.iter().enumerate() {
                let s = set.serving_replica(c, i) as usize;
                assert!(
                    est < fence || !plan.is_byzantine(s, 2),
                    "post-fence unit ({c},{i}) assigned to stale mirror {s}"
                );
                est += LINK.cycles_for(bytes);
            }
        }
        let _ = set.finish_time();
    }

    #[test]
    fn replica_seed_zero_is_the_base_seed() {
        assert_eq!(replica_seed(0xabcd, 0), 0xabcd);
        assert_ne!(replica_seed(0xabcd, 1), 0xabcd);
        assert_ne!(replica_seed(0xabcd, 1), replica_seed(0xabcd, 2));
        assert_ne!(replica_seed(1, 1), replica_seed(2, 1));
    }
}
