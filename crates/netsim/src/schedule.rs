//! The greedy parallel-transfer schedule (§5.1).
//!
//! Classes start transferring in predicted first-use order. A class is
//! *dependent* on every class whose first-used method precedes its own;
//! it may begin transfer once the predicted number of **unique bytes**
//! from its dependencies has been delivered:
//!
//! * with static (SCG) prediction, unique bytes are *"the total static
//!   size in bytes of procedures that are executed before transferring
//!   to the dependent class file"*;
//! * with profile-guided prediction, they are *"the total size of the
//!   instructions executed from the procedures that a class file is
//!   dependent on"* — the executed-unique bytes the profiler measured.

use std::fmt;

use nonstrict_bytecode::{Application, MethodId};
use nonstrict_profile::FirstUseProfile;
use nonstrict_reorder::{ClassLayout, FirstUseOrder};

use crate::unit::ClassUnits;

/// Error from schedule queries on malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The queried class does not appear in the schedule's start order.
    ClassNotInSchedule {
        /// The class index that was looked up.
        class: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::ClassNotInSchedule { class } => {
                write!(f, "class {class} is not in the transfer schedule")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// How method bytes are weighted when accumulating dependency
/// thresholds.
#[derive(Debug, Clone, Copy)]
pub enum Weights<'a> {
    /// Static sizes (the SCG configuration).
    Static,
    /// Executed-unique bytes from a profiling run (Train or Test).
    Profile(&'a FirstUseProfile),
}

/// The parallel-transfer schedule: class start order plus dependency
/// byte thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelSchedule {
    /// Classes in predicted first-use order.
    pub class_order: Vec<usize>,
    /// For `class_order[k]`: bytes that must have been delivered from
    /// classes `class_order[..k]` before this class starts.
    pub thresholds: Vec<u64>,
}

impl ParallelSchedule {
    /// Position of `class` in the start order.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::ClassNotInSchedule`] if `class` never
    /// appears in the start order.
    pub fn position(&self, class: usize) -> Result<usize, ScheduleError> {
        self.class_order
            .iter()
            .position(|&c| c == class)
            .ok_or(ScheduleError::ClassNotInSchedule { class })
    }
}

/// Builds the greedy schedule for `app` restructured by `order`.
///
/// `units` must be the transfer units the engine will stream and
/// `layouts` the restructured file layouts (so thresholds and
/// deliverable bytes agree — including GMD chunks and delimiters);
/// `weights` selects static or profile-guided unique-byte accounting.
#[must_use]
pub fn greedy_schedule(
    app: &Application,
    order: &FirstUseOrder,
    units: &[ClassUnits],
    layouts: &[ClassLayout],
    weights: Weights<'_>,
) -> ParallelSchedule {
    let program = &app.program;
    let class_order: Vec<usize> = order.class_order().iter().map(|c| c.0 as usize).collect();
    // Classes with no methods in the first-use order (impossible here,
    // every class has methods) would be appended; keep robustness:
    debug_assert_eq!(class_order.len(), app.classes.len());

    // Weight of one method toward thresholds: the bytes of its transfer
    // unit that must be delivered before a dependent class's first use.
    // Static prediction charges the whole unit; profile-guided
    // prediction discounts code the profiling run never executed (§5.1:
    // "unique bytes are accumulated using the total size of the
    // instructions executed").
    let weight = |m: MethodId| -> u64 {
        let c = m.class.0 as usize;
        let pos = layouts[c].position_of(m.method);
        let unit = units[c].methods[pos];
        match weights {
            Weights::Static => unit,
            Weights::Profile(p) => {
                let code = app.wire_scale.apply(program.method(m).code_size());
                let executed = app.wire_scale.apply(p.executed_bytes(m));
                unit - code.min(unit) + executed.min(code)
            }
        }
    };

    // Walk the global first-use order; when a class's first method is
    // reached, its threshold is the accumulated unique bytes so far
    // (method weights plus the preludes of already-started classes).
    let mut thresholds = vec![0u64; class_order.len()];
    let mut seen_class = vec![false; app.classes.len()];
    let mut acc = 0u64;
    let mut order_pos = 0usize;
    for &m in order.order() {
        let c = m.class.0 as usize;
        if !seen_class[c] {
            seen_class[c] = true;
            debug_assert_eq!(class_order[order_pos], c);
            thresholds[order_pos] = acc;
            order_pos += 1;
            acc += units[c].prelude;
        }
        acc += weight(m);
    }

    // Cap each threshold at what its dependencies can ever deliver, so a
    // schedule never deadlocks waiting for unreachable bytes.
    let mut dep_capacity = 0u64;
    for (k, &c) in class_order.iter().enumerate() {
        thresholds[k] = thresholds[k].min(dep_capacity);
        dep_capacity += units[c].total();
    }

    ParallelSchedule {
        class_order,
        thresholds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::class_units;
    use nonstrict_reorder::{restructure, static_first_use};

    fn setup() -> (
        Application,
        FirstUseOrder,
        Vec<ClassUnits>,
        Vec<ClassLayout>,
    ) {
        let app = nonstrict_workloads::jhlzip::build();
        let order = static_first_use(&app.program);
        let r = restructure(&app, &order);
        let units = class_units(&app, &r, None, crate::unit::DELIMITER_BYTES);
        (app, order, units, r.layouts)
    }

    #[test]
    fn first_class_starts_immediately() {
        let (app, order, units, layouts) = setup();
        let s = greedy_schedule(&app, &order, &units, &layouts, Weights::Static);
        assert_eq!(s.class_order[0], app.program.entry().class.0 as usize);
        assert_eq!(s.thresholds[0], 0);
    }

    #[test]
    fn thresholds_are_monotone_in_start_order() {
        let (app, order, units, layouts) = setup();
        let s = greedy_schedule(&app, &order, &units, &layouts, Weights::Static);
        for w in s.thresholds.windows(2) {
            assert!(
                w[0] <= w[1],
                "later classes need at least as many unique bytes"
            );
        }
    }

    #[test]
    fn thresholds_never_exceed_dependency_capacity() {
        let (app, order, units, layouts) = setup();
        let s = greedy_schedule(&app, &order, &units, &layouts, Weights::Static);
        let mut cap = 0u64;
        for (k, &c) in s.class_order.iter().enumerate() {
            assert!(
                s.thresholds[k] <= cap,
                "class {c} threshold exceeds dep capacity"
            );
            cap += units[c].total();
        }
    }

    #[test]
    fn profile_weights_give_smaller_thresholds() {
        let (app, order, units, layouts) = setup();
        let collected = nonstrict_profile::collect(&app, nonstrict_bytecode::Input::Test).unwrap();
        let s_static = greedy_schedule(&app, &order, &units, &layouts, Weights::Static);
        let s_prof = greedy_schedule(
            &app,
            &order,
            &units,
            &layouts,
            Weights::Profile(&collected.profile),
        );
        // executed bytes <= static bytes method by method, so accumulated
        // thresholds can only shrink
        let total_static: u64 = s_static.thresholds.iter().sum();
        let total_prof: u64 = s_prof.thresholds.iter().sum();
        assert!(total_prof <= total_static);
    }

    #[test]
    fn position_reports_missing_classes_instead_of_panicking() {
        let (app, order, units, layouts) = setup();
        let s = greedy_schedule(&app, &order, &units, &layouts, Weights::Static);
        assert_eq!(s.position(s.class_order[0]), Ok(0));
        let missing = app.classes.len() + 7;
        assert_eq!(
            s.position(missing),
            Err(ScheduleError::ClassNotInSchedule { class: missing })
        );
        assert!(format!("{}", s.position(missing).unwrap_err()).contains("not in"));
    }

    #[test]
    fn covers_every_class_exactly_once() {
        let (app, order, units, layouts) = setup();
        let s = greedy_schedule(&app, &order, &units, &layouts, Weights::Static);
        let mut sorted = s.class_order.clone();
        sorted.sort_unstable();
        let expect: Vec<usize> = (0..app.classes.len()).collect();
        assert_eq!(sorted, expect);
    }
}
