//! Parallel file transfer (§5.1): multiple class files stream
//! concurrently, sharing fixed bandwidth fairly.
//!
//! The engine is a fluid fair-sharing simulator: while `n` streams are
//! active each receives `1/n` of the link. Classes start in schedule
//! order when their dependency byte-thresholds are met (and a slot under
//! the concurrent-file limit is free); once started, a class transfers
//! to completion without preemption. A method invoked before its class
//! was scheduled triggers a **demand fetch** (the paper's misprediction
//! correction): the class starts immediately if a slot is free,
//! otherwise it is queued to transfer next.

use std::collections::VecDeque;

use crate::engine::TransferEngine;
use crate::link::Link;
use crate::schedule::ParallelSchedule;
use crate::unit::ClassUnits;

/// Fixed-point scale for fractional service accounting (progress is
/// tracked in `cycle / SCALE` units so unequal bandwidth shares stay
/// exact enough to never reorder events by more than a cycle).
const SCALE: u128 = 1 << 32;

/// What to simulate up to.
enum Stop {
    AtCycle(u64),
    UnitArrived(usize, usize),
    AllDone,
}

/// The parallel-transfer engine.
#[derive(Debug, Clone)]
pub struct ParallelEngine {
    cpb: u128,
    limit: usize,
    units: Vec<ClassUnits>,
    class_order: Vec<usize>,
    thresholds: Vec<u64>,
    next_scheduled: usize,
    clock: u64,
    started: Vec<bool>,
    /// Service received, in `cycle * SCALE` of dedicated-bandwidth time.
    progress: Vec<u128>,
    next_unit: Vec<usize>,
    arrivals: Vec<Vec<Option<u64>>>,
    active: Vec<usize>,
    queue: VecDeque<usize>,
    completed: usize,
    last_arrival: u64,
}

impl ParallelEngine {
    /// Creates an engine over `units` with the given `schedule` and
    /// concurrent-file `limit` (use `usize::MAX` for unlimited).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero or the schedule does not cover the
    /// units.
    #[must_use]
    pub fn new(
        link: Link,
        units: Vec<ClassUnits>,
        schedule: &ParallelSchedule,
        limit: usize,
    ) -> Self {
        assert!(limit > 0, "at least one concurrent transfer is required");
        assert_eq!(
            schedule.class_order.len(),
            units.len(),
            "schedule must cover all classes"
        );
        let n = units.len();
        let mut engine = ParallelEngine {
            cpb: u128::from(link.cycles_per_byte),
            limit,
            arrivals: units.iter().map(|u| vec![None; u.unit_count()]).collect(),
            units,
            class_order: schedule.class_order.clone(),
            thresholds: schedule.thresholds.clone(),
            next_scheduled: 0,
            clock: 0,
            started: vec![false; n],
            progress: vec![0; n],
            next_unit: vec![0; n],
            active: Vec::new(),
            queue: VecDeque::new(),
            completed: 0,
            last_arrival: 0,
        };
        engine.release_triggers();
        engine.fill_slots();
        engine
    }

    /// Bytes of `class` delivered so far.
    fn delivered(&self, class: usize) -> u64 {
        let bytes = self.progress[class] / SCALE / self.cpb;
        (bytes as u64).min(self.units[class].total())
    }

    /// Total bytes delivered from the dependencies of schedule position
    /// `k` (classes earlier in the start order).
    fn dep_delivered(&self, k: usize) -> u64 {
        self.class_order[..k]
            .iter()
            .map(|&c| self.delivered(c))
            .sum()
    }

    /// Releases every scheduled class whose threshold is met.
    fn release_triggers(&mut self) {
        while self.next_scheduled < self.class_order.len() {
            let c = self.class_order[self.next_scheduled];
            if self.started[c] {
                self.next_scheduled += 1;
                continue;
            }
            if self.dep_delivered(self.next_scheduled) >= self.thresholds[self.next_scheduled] {
                self.started[c] = true;
                self.queue.push_back(c);
                self.next_scheduled += 1;
            } else {
                break;
            }
        }
    }

    /// Moves queued classes into free bandwidth slots.
    fn fill_slots(&mut self) {
        while self.active.len() < self.limit {
            let Some(c) = self.queue.pop_front() else {
                break;
            };
            self.active.push(c);
            // Zero-byte units at the head complete instantly.
            self.cross_boundaries(c);
        }
    }

    /// Records arrivals for every boundary `class`'s progress has
    /// passed; removes the class from the active set when finished.
    fn cross_boundaries(&mut self, class: usize) {
        let u = &self.units[class];
        while self.next_unit[class] < u.unit_count() {
            let need = u128::from(u.boundary(self.next_unit[class])) * self.cpb * SCALE;
            if self.progress[class] >= need {
                self.arrivals[class][self.next_unit[class]] = Some(self.clock);
                self.last_arrival = self.last_arrival.max(self.clock);
                self.next_unit[class] += 1;
            } else {
                break;
            }
        }
        if self.next_unit[class] == u.unit_count() {
            if let Some(i) = self.active.iter().position(|&c| c == class) {
                self.active.swap_remove(i);
                self.completed += 1;
            }
        }
    }

    fn all_done(&self) -> bool {
        self.completed == self.units.len()
    }

    /// The fluid event loop.
    fn advance(&mut self, stop: &Stop) {
        loop {
            self.release_triggers();
            self.fill_slots();
            match stop {
                Stop::AtCycle(t) if self.clock >= *t => return,
                Stop::UnitArrived(c, u) if self.arrivals[*c][*u].is_some() => return,
                Stop::AllDone if self.all_done() => return,
                _ => {}
            }
            if self.all_done() {
                return;
            }
            if self.active.is_empty() {
                // Nothing is flowing: either a scheduled class is gated
                // on a threshold that can no longer grow (release it),
                // or only an AtCycle stop remains.
                if self.next_scheduled < self.class_order.len() {
                    let c = self.class_order[self.next_scheduled];
                    if !self.started[c] {
                        self.started[c] = true;
                        self.queue.push_back(c);
                    }
                    self.next_scheduled += 1;
                    continue;
                }
                // All classes started and none active => all done.
                debug_assert!(self.all_done());
                return;
            }

            let n = u128::from(self.active.len() as u64);
            let mut dt: u128 = u128::MAX;

            // Unit-boundary events.
            for &c in &self.active {
                let u = &self.units[c];
                let need = u128::from(u.boundary(self.next_unit[c])) * self.cpb * SCALE;
                let gap = need.saturating_sub(self.progress[c]);
                let t = (gap * n).div_ceil(SCALE).max(1);
                dt = dt.min(t);
            }

            // Dependency-threshold event for the next scheduled class.
            if self.next_scheduled < self.class_order.len() {
                let k = self.next_scheduled;
                let t_bytes = self.thresholds[k];
                let cur = self.dep_delivered(k);
                if cur < t_bytes {
                    let dep_active = self.class_order[..k]
                        .iter()
                        .filter(|c| self.active.contains(c))
                        .count() as u128;
                    if dep_active > 0 {
                        let need_bytes = u128::from(t_bytes - cur);
                        let t = (need_bytes * self.cpb * n).div_ceil(dep_active).max(1);
                        dt = dt.min(t);
                    }
                }
            }

            // Stop-point event.
            if let Stop::AtCycle(t) = stop {
                dt = dt.min(u128::from(t.saturating_sub(self.clock)).max(1));
            }

            debug_assert!(dt < u128::MAX, "active streams always produce an event");
            let dt64 = u64::try_from(dt.min(u128::from(u64::MAX))).expect("bounded");
            self.clock += dt64;
            let gain = u128::from(dt64) * SCALE / n;
            let snapshot: Vec<usize> = self.active.clone();
            for c in snapshot {
                self.progress[c] += gain;
                self.cross_boundaries(c);
            }
        }
    }

    /// The recorded arrival of a unit, if the simulation has reached it
    /// (read-only; use [`TransferEngine::unit_ready`] to simulate
    /// forward).
    #[must_use]
    pub fn recorded_arrival(&self, class: usize, unit: usize) -> Option<u64> {
        self.arrivals[class][unit]
    }

    /// Immediately requests `class` (misprediction correction): starts
    /// it if a slot is free, otherwise queues it to transfer next.
    fn demand_fetch(&mut self, class: usize) {
        if self.started[class] {
            return;
        }
        self.started[class] = true;
        // "it is queued up to be transfered next"
        self.queue.push_front(class);
        self.fill_slots();
    }
}

impl TransferEngine for ParallelEngine {
    fn unit_ready(&mut self, class: usize, unit: usize, now: u64) -> u64 {
        self.advance(&Stop::AtCycle(now));
        if let Some(t) = self.arrivals[class][unit] {
            return t;
        }
        if !self.started[class] {
            self.demand_fetch(class);
        }
        self.advance(&Stop::UnitArrived(class, unit));
        self.arrivals[class][unit].expect("advance ran to arrival")
    }

    fn finish_time(&mut self) -> u64 {
        self.advance(&Stop::AllDone);
        self.last_arrival
    }

    fn total_bytes(&self) -> u64 {
        self.units.iter().map(ClassUnits::total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(sizes: &[(u64, &[u64])]) -> Vec<ClassUnits> {
        sizes
            .iter()
            .map(|&(prelude, methods)| ClassUnits {
                prelude,
                methods: methods.to_vec(),
                trailing: 0,
            })
            .collect()
    }

    fn schedule_for(units: &[ClassUnits], thresholds: Vec<u64>) -> ParallelSchedule {
        ParallelSchedule {
            class_order: (0..units.len()).collect(),
            thresholds,
        }
    }

    const LINK: Link = Link {
        cycles_per_byte: 10,
        name: "test",
    };

    #[test]
    fn single_stream_arrivals_are_exact() {
        let u = units(&[(100, &[50, 50])]);
        let s = schedule_for(&u, vec![0]);
        let mut e = ParallelEngine::new(LINK, u, &s, 4);
        assert_eq!(e.unit_ready(0, 0, 0), 1000);
        assert_eq!(e.unit_ready(0, 1, 0), 1500);
        assert_eq!(e.unit_ready(0, 2, 0), 2000);
        assert_eq!(e.finish_time(), 2000);
    }

    #[test]
    fn two_streams_share_bandwidth_fairly() {
        // Both start at 0 with threshold 0; each 100 bytes; shared link
        // delivers both at cycle 100*10*2 = 2000.
        let u = units(&[(100, &[]), (100, &[])]);
        let s = schedule_for(&u, vec![0, 0]);
        let mut e = ParallelEngine::new(LINK, u, &s, 4);
        let a = e.unit_ready(0, 0, 0);
        let b = e.unit_ready(1, 0, 0);
        assert_eq!(a, 2000);
        assert_eq!(b, 2000);
    }

    #[test]
    fn limit_one_serializes_transfers() {
        let u = units(&[(100, &[]), (100, &[])]);
        let s = schedule_for(&u, vec![0, 0]);
        let mut e = ParallelEngine::new(LINK, u, &s, 1);
        assert_eq!(e.unit_ready(0, 0, 0), 1000);
        assert_eq!(e.unit_ready(1, 0, 0), 2000);
    }

    #[test]
    fn threshold_delays_second_class() {
        // Class 1 may start only after 60 bytes of class 0 have arrived.
        let u = units(&[(100, &[]), (40, &[])]);
        let s = schedule_for(&u, vec![0, 60]);
        let mut e = ParallelEngine::new(LINK, u, &s, 4);
        // class 0 alone until cycle 600; then both share. class 0 has 40
        // left -> +800 cycles => 1400. class 1: 40 bytes shared the whole
        // way => also 1400.
        assert_eq!(e.unit_ready(0, 0, 0), 1400);
        assert_eq!(e.unit_ready(1, 0, 0), 1400);
    }

    #[test]
    fn demand_fetch_starts_unscheduled_class() {
        // Class 1's threshold is past class 0 completion; a demand at
        // cycle 0 overrides it.
        let u = units(&[(100, &[]), (50, &[])]);
        let s = schedule_for(&u, vec![0, 100]);
        let mut e = ParallelEngine::new(LINK, u, &s, 4);
        let t = e.unit_ready(1, 0, 0);
        // both share from 0: class 1 needs 50 bytes at half rate = 1000
        assert_eq!(t, 1000);
    }

    #[test]
    fn demand_fetch_queues_when_limit_reached() {
        let u = units(&[(100, &[]), (100, &[]), (50, &[])]);
        let s = schedule_for(&u, vec![0, 0, u64::MAX]);
        let mut e = ParallelEngine::new(LINK, u, &s, 2);
        // classes 0 and 1 fill both slots until 2000; class 2 demanded at
        // cycle 0 must wait, then gets full bandwidth: 2000 + 500.
        let t = e.unit_ready(2, 0, 0);
        assert_eq!(t, 2500);
    }

    #[test]
    fn finish_time_covers_everything() {
        let u = units(&[(100, &[20, 30]), (50, &[10])]);
        let total: u64 = u.iter().map(ClassUnits::total).sum();
        let s = schedule_for(&u, vec![0, 0]);
        let mut e = ParallelEngine::new(LINK, u, &s, 4);
        // Work-conserving fair sharing finishes all bytes exactly when a
        // single stream would.
        assert_eq!(e.finish_time(), LINK.cycles_for(total));
        assert_eq!(e.total_bytes(), total);
    }

    #[test]
    fn queries_in_the_past_return_recorded_arrivals() {
        let u = units(&[(100, &[50]), (10, &[])]);
        let s = schedule_for(&u, vec![0, 0]);
        let mut e = ParallelEngine::new(LINK, u, &s, 4);
        let t1 = e.unit_ready(1, 0, 0);
        // Re-query later: same answer.
        assert_eq!(e.unit_ready(1, 0, t1 + 10_000), t1);
    }

    #[test]
    fn capped_thresholds_never_deadlock() {
        // Threshold demands more bytes than dependencies hold; the
        // engine force-releases when the pipe drains.
        let u = units(&[(10, &[]), (10, &[])]);
        let s = schedule_for(&u, vec![0, 10]); // cap at dep capacity
        let mut e = ParallelEngine::new(LINK, u, &s, 1);
        assert_eq!(e.unit_ready(1, 0, 0), 200);
    }
}
