//! Seeded Byzantine misbehavior plans for replica-set transfer.
//!
//! The fault layer ([`crate::faults`]) models *random* damage — bits
//! flip, packets drop, links droop — and CRC32 catches all of it. A
//! Byzantine mirror is worse: it serves **internally consistent wrong
//! bytes** (a stale restructure epoch, or an equivocated unit body
//! whose link CRC is valid), so nothing below the content-addressed
//! manifest layer can tell the difference. A [`ByzantinePlan`] is the
//! seeded, deterministic description of which mirrors misbehave and
//! how:
//!
//! * [`ByzantineMode::StaleEpoch`] — the mirror never picks up the
//!   origin's mid-stream re-restructure. Every unit it serves after
//!   the epoch fence carries the old layout's epoch id and fails the
//!   fence check on arrival.
//! * [`ByzantineMode::Equivocate`] — the mirror serves divergent bytes
//!   for a seeded fraction of units. The per-unit manifest digest
//!   catches each divergence at the unit boundary.
//! * [`ByzantineMode::Collude`] — divergent bytes crafted to pass the
//!   (weak, CRC-based) manifest digest. Only the cross-mirror audit
//!   sampler — re-fetching a seeded fraction of units from the
//!   runner-up mirror and comparing bodies — can observe the
//!   divergence.
//!
//! Like every other plan in this crate, all draws are pure functions
//! of `(seed, replica, class, unit)` via [`splitmix`] with
//! domain-separation salts, so a run replays bit for bit and the plan
//! can be consulted eagerly at [`crate::replica::ReplicaEngine`]
//! construction without perturbing the routing clock.

use crate::faults::splitmix;

/// Per-unit probability (ppm) that a Byzantine mirror serves divergent
/// bytes for a given unit under [`ByzantineMode::Equivocate`] and
/// [`ByzantineMode::Collude`]. High enough that a multi-unit stream is
/// certain to hit divergence, low enough that the first units often
/// route cleanly — which is what makes detection latency measurable.
pub const DIVERGENCE_RATE_PM: u32 = 200_000;

/// Cycles the client spends computing and comparing one unit's
/// manifest digest (software CRC over a few-KB unit, ~2 cycles/byte is
/// folded into a flat per-unit charge on the 500 MHz Alpha).
pub const DIGEST_CHECK_CYCLES: u64 = 8_192;

/// Cycles charged for one cross-mirror audit round: issuing the
/// duplicate fetch to the runner-up and comparing the bodies. The
/// audited bytes themselves ride otherwise-idle mirror capacity, so
/// only the fixed compare round lands on the client's timeline.
pub const AUDIT_COMPARE_CYCLES: u64 = 25_000;

/// Cycles charged for quarantining a mirror once divergence is proven:
/// tearing down its stream and re-negotiating with the fallback
/// (~0.2 ms on the 500 MHz Alpha).
pub const QUARANTINE_CYCLES: u64 = 100_000;

/// Domain-separation salts for the equivocation and audit draws.
const SALT_DIVERGE: u64 = 0x4259_5a44_4956_4531;
const SALT_AUDIT: u64 = 0x4155_4449_5453_4d50;

/// How a Byzantine mirror misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ByzantineMode {
    /// Serves the previous restructure epoch after the origin re-keys:
    /// every post-fence unit fails the manifest's epoch check.
    StaleEpoch,
    /// Serves divergent unit bodies at a seeded rate; each one fails
    /// its manifest digest at the unit boundary.
    #[default]
    Equivocate,
    /// Serves divergent bodies crafted to pass the manifest digest;
    /// only the cross-mirror audit sampler can catch them.
    Collude,
}

impl ByzantineMode {
    /// The CLI/report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ByzantineMode::StaleEpoch => "stale-epoch",
            ByzantineMode::Equivocate => "equivocate",
            ByzantineMode::Collude => "collude",
        }
    }

    /// Parses a CLI label.
    #[must_use]
    pub fn parse(s: &str) -> Option<ByzantineMode> {
        match s {
            "stale-epoch" | "stale" => Some(ByzantineMode::StaleEpoch),
            "equivocate" => Some(ByzantineMode::Equivocate),
            "collude" => Some(ByzantineMode::Collude),
            _ => None,
        }
    }

    /// Whether the manifest digest alone catches this mode's divergent
    /// units at the unit boundary (collusion forges the digest, so it
    /// needs the audit sampler).
    #[must_use]
    pub fn detected_inline(self) -> bool {
        !matches!(self, ByzantineMode::Collude)
    }
}

/// A seeded, deterministic misbehavior plan: which mirrors of a replica
/// set are Byzantine, how they diverge, and how aggressively the client
/// cross-audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByzantinePlan {
    /// Seed for every divergence and audit draw.
    pub seed: u64,
    /// Number of Byzantine mirrors. The **highest-indexed** mirrors of
    /// the set misbehave, so mirror 0 (the origin-seeded primary)
    /// stays honest whenever `byzantine < replicas`.
    pub byzantine: u32,
    /// How the Byzantine mirrors misbehave.
    pub mode: ByzantineMode,
    /// Cross-mirror audit sampling rate in ppm of delivered units.
    pub audit_rate_pm: u32,
    /// Encoded size of the origin's unit manifest in wire bytes; the
    /// client fetches and pins it before the first unit, and re-pins
    /// it when the epoch fence crosses.
    pub manifest_bytes: u64,
}

impl ByzantinePlan {
    /// An all-honest plan (no Byzantine mirrors, auditing off).
    #[must_use]
    pub fn honest(seed: u64) -> ByzantinePlan {
        ByzantinePlan {
            seed,
            byzantine: 0,
            mode: ByzantineMode::Equivocate,
            audit_rate_pm: 0,
            manifest_bytes: 0,
        }
    }

    /// Whether mirror `replica` of an `n`-mirror set is Byzantine: the
    /// highest `byzantine` indices misbehave.
    #[must_use]
    pub fn is_byzantine(&self, replica: usize, n: usize) -> bool {
        let byz = (self.byzantine as usize).min(n);
        replica >= n - byz
    }

    /// The deterministic draw for `(replica, class, unit, salt)`.
    fn draw(&self, replica: usize, class: usize, unit: usize, salt: u64) -> u64 {
        let mut h = splitmix(self.seed ^ salt);
        h = splitmix(h ^ replica as u64);
        h = splitmix(h ^ class as u64);
        h = splitmix(h ^ unit as u64);
        h
    }

    /// Whether a uniform draw `h` lands under `rate_pm`.
    fn hits(rate_pm: u32, h: u64) -> bool {
        u128::from(h) * 1_000_000 < u128::from(rate_pm) << 64
    }

    /// Whether mirror `replica` serves divergent bytes for
    /// `(class, unit)` of an `n`-mirror set. `past_fence` is whether
    /// the routing instant is past the origin's re-restructure; only
    /// [`ByzantineMode::StaleEpoch`] keys on it.
    #[must_use]
    pub fn diverges(
        &self,
        replica: usize,
        class: usize,
        unit: usize,
        n: usize,
        past_fence: bool,
    ) -> bool {
        if !self.is_byzantine(replica, n) {
            return false;
        }
        match self.mode {
            ByzantineMode::StaleEpoch => past_fence,
            ByzantineMode::Equivocate | ByzantineMode::Collude => Self::hits(
                DIVERGENCE_RATE_PM,
                self.draw(replica, class, unit, SALT_DIVERGE),
            ),
        }
    }

    /// Whether the audit sampler re-fetches `(class, unit)` from the
    /// runner-up mirror. Replica-independent, so the sample is a pure
    /// function of the stream and never depends on routing history.
    #[must_use]
    pub fn audits(&self, class: usize, unit: usize) -> bool {
        if self.audit_rate_pm == 0 {
            return false;
        }
        Self::hits(self.audit_rate_pm, self.draw(0, class, unit, SALT_AUDIT))
    }
}

/// Aggregate integrity-layer counters for one engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Whether the integrity layer was armed for this run.
    pub armed: bool,
    /// Manifest fetch-and-pin rounds (the initial pin plus one re-pin
    /// per epoch-fence crossing).
    pub manifest_pins: u32,
    /// Per-unit manifest digest checks performed.
    pub digest_checks: u64,
    /// Units a mirror served with divergent bytes (whether or not the
    /// digest caught them inline).
    pub divergent_units: u64,
    /// Divergent units that passed the digest check and were linked
    /// before any audit observed the divergence (collusion only): the
    /// wrong-but-verifiable prefix the threat model worries about.
    pub undetected_units: u64,
    /// Cross-mirror audit rounds sampled.
    pub audits: u64,
    /// Audit rounds whose two mirrors disagreed.
    pub audit_mismatches: u64,
    /// Mirrors quarantined for proven divergence.
    pub quarantines: u32,
    /// Post-fence units a stale mirror tried to serve that were
    /// refetched from an honest mirror (targeted refetch).
    pub fence_refetches: u64,
    /// Payload bytes refetched because of divergence or quarantine.
    pub refetched_bytes: u64,
    /// Total integrity surcharge the engine folded into arrivals.
    pub integrity_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_round_trip() {
        for m in [
            ByzantineMode::StaleEpoch,
            ByzantineMode::Equivocate,
            ByzantineMode::Collude,
        ] {
            assert_eq!(ByzantineMode::parse(m.label()), Some(m));
        }
        assert_eq!(
            ByzantineMode::parse("stale"),
            Some(ByzantineMode::StaleEpoch)
        );
        assert_eq!(ByzantineMode::parse("nope"), None);
    }

    #[test]
    fn highest_indexed_mirrors_are_byzantine() {
        let plan = ByzantinePlan {
            byzantine: 2,
            ..ByzantinePlan::honest(7)
        };
        assert!(!plan.is_byzantine(0, 4));
        assert!(!plan.is_byzantine(1, 4));
        assert!(plan.is_byzantine(2, 4));
        assert!(plan.is_byzantine(3, 4));
        // More byzantine than mirrors: everyone misbehaves, nothing
        // underflows.
        assert!(ByzantinePlan {
            byzantine: 9,
            ..ByzantinePlan::honest(7)
        }
        .is_byzantine(0, 2));
    }

    #[test]
    fn honest_mirrors_never_diverge() {
        let plan = ByzantinePlan {
            byzantine: 1,
            mode: ByzantineMode::Equivocate,
            ..ByzantinePlan::honest(3)
        };
        for c in 0..8 {
            for u in 0..8 {
                assert!(!plan.diverges(0, c, u, 2, true));
            }
        }
    }

    #[test]
    fn equivocation_draws_are_deterministic_and_seeded() {
        let mk = |seed| ByzantinePlan {
            seed,
            byzantine: 1,
            mode: ByzantineMode::Equivocate,
            audit_rate_pm: 0,
            manifest_bytes: 0,
        };
        let a: Vec<bool> = (0..256)
            .map(|u| mk(1).diverges(1, 0, u, 2, false))
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|u| mk(1).diverges(1, 0, u, 2, false))
            .collect();
        let c: Vec<bool> = (0..256)
            .map(|u| mk(2).diverges(1, 0, u, 2, false))
            .collect();
        assert_eq!(a, b, "same seed must draw identically");
        assert_ne!(a, c, "seeds must matter");
        let rate = a.iter().filter(|&&d| d).count();
        assert!(rate > 20 && rate < 90, "≈20% of 256 draws, got {rate}");
    }

    #[test]
    fn stale_epoch_keys_on_the_fence_only() {
        let plan = ByzantinePlan {
            byzantine: 1,
            mode: ByzantineMode::StaleEpoch,
            ..ByzantinePlan::honest(5)
        };
        for u in 0..32 {
            assert!(
                !plan.diverges(1, 0, u, 2, false),
                "pre-fence units are honest"
            );
            assert!(
                plan.diverges(1, 0, u, 2, true),
                "every post-fence unit is stale"
            );
        }
    }

    #[test]
    fn audit_sampler_matches_its_rate() {
        let plan = ByzantinePlan {
            audit_rate_pm: 250_000,
            ..ByzantinePlan::honest(11)
        };
        let hits = (0..1024).filter(|&u| plan.audits(0, u)).count();
        assert!(hits > 180 && hits < 330, "≈25% of 1024 draws, got {hits}");
        let off = ByzantinePlan::honest(11);
        assert!((0..1024).all(|u| !off.audits(0, u)));
    }

    #[test]
    fn collude_diverges_but_is_not_inline_detectable() {
        assert!(ByzantineMode::Equivocate.detected_inline());
        assert!(ByzantineMode::StaleEpoch.detected_inline());
        assert!(!ByzantineMode::Collude.detected_inline());
    }
}
