//! Multi-client server contention: fair-share scheduling, admission
//! control, and the load-shed ladder.
//!
//! A deployment server pushes restructured class files to many clients
//! at once through one egress pipe.  This module models the three
//! server-side defenses the fleet layer (`core::fleet`) composes:
//!
//! * [`drr_schedule`] — deficit-round-robin fair sharing of the egress
//!   pipe over per-client queues of whole transfer units.  The server
//!   clock only advances while bytes move (or jumps to the next
//!   arrival when every queue is empty), so the schedule is
//!   work-conserving by construction, and each client's contention
//!   delay falls out exactly: `finish − arrival − bytes·cpb`.
//! * [`AdmissionController`] — a token bucket over session admissions.
//!   An empty bucket yields a typed [`Rejected`] carrying the earliest
//!   cycle at which a token can exist again; clients honor it with
//!   seeded jittered backoff ([`jitter`]).
//! * [`ShedLadder`] — the ordered degradation ladder applied to
//!   clients whose queueing delay crosses a rung: drop hedged fetches,
//!   then force strict sequential transfer, then shed the session to a
//!   journal checkpoint for later resume.
//!
//! Everything is seeded and deterministic: the only randomness is the
//! SplitMix64 finalizer shared with the fault and outage models.

use crate::faults::splitmix;
use std::fmt;

/// Domain-separation salt for admission backoff jitter draws.
const SALT_JITTER: u64 = 0x4a49_5454_4a49_5454;

/// One client's demand on the shared egress pipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientDemand {
    /// DRR weight (share of the pipe).  Clamped to at least 1.
    pub weight: u32,
    /// Wall cycle at which the client's session is admitted and its
    /// units enter the server queue.
    pub arrival: u64,
    /// Byte size of each transfer unit, in stream order.  Zero-byte
    /// units are allowed (empty trailing slots) and cost nothing.
    pub units: Vec<u64>,
}

impl ClientDemand {
    /// Total bytes this client pulls through the pipe.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.units.iter().sum()
    }
}

/// What the DRR schedule delivered to one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientService {
    /// Wall cycle at which the client's last unit finished sending.
    /// Equal to `arrival` for a client with no bytes.
    pub finish: u64,
    /// Total bytes served.
    pub bytes: u64,
    /// Contention delay: `finish − arrival − bytes·cpb`.  Zero when
    /// the client had the pipe to itself.
    pub queue_cycles: u64,
}

/// Deficit-round-robin schedule of `clients` through one egress pipe
/// of `egress_cpb` cycles per byte.
///
/// Classic DRR (Shreedhar & Varghese): each round, every backlogged
/// client's deficit grows by `quantum × weight`; whole head-of-line
/// units are sent while the deficit covers them; a client that drains
/// its queue forfeits its leftover deficit.  The server clock advances
/// only while a unit is on the wire; when every arrived queue is empty
/// it jumps straight to the next arrival (work conservation: the
/// server is idle iff all queues are empty).
///
/// `quantum` and all weights are clamped to at least 1 so every
/// backlogged client makes progress in every round (no starvation).
///
/// ```
/// use nonstrict_netsim::contention::{drr_schedule, ClientDemand};
///
/// // A lone client sees zero queueing delay at any quantum.
/// let lone = [ClientDemand { weight: 1, arrival: 7, units: vec![100, 50] }];
/// let served = drr_schedule(10, 32, &lone);
/// assert_eq!(served[0].finish, 7 + 150 * 10);
/// assert_eq!(served[0].queue_cycles, 0);
/// ```
#[must_use]
pub fn drr_schedule(egress_cpb: u64, quantum: u64, clients: &[ClientDemand]) -> Vec<ClientService> {
    let quantum = quantum.max(1);
    let mut next_unit = vec![0usize; clients.len()];
    let mut deficit = vec![0u64; clients.len()];
    let mut finish: Vec<u64> = clients.iter().map(|c| c.arrival).collect();
    // Server clock starts at the first arrival; it never runs ahead of
    // demand.
    let mut now = clients.iter().map(|c| c.arrival).min().unwrap_or(0);
    loop {
        let mut sent_any = false;
        let mut backlog = false;
        let mut arrived_backlog = false;
        for (i, c) in clients.iter().enumerate() {
            if next_unit[i] >= c.units.len() {
                continue;
            }
            if c.arrival > now {
                backlog = true;
                continue;
            }
            deficit[i] =
                deficit[i].saturating_add(quantum.saturating_mul(u64::from(c.weight.max(1))));
            while next_unit[i] < c.units.len() && c.units[next_unit[i]] <= deficit[i] {
                let bytes = c.units[next_unit[i]];
                deficit[i] -= bytes;
                now = now.saturating_add(cycles_for(bytes, egress_cpb));
                next_unit[i] += 1;
                finish[i] = now;
                sent_any = true;
            }
            if next_unit[i] >= c.units.len() {
                // Drained queue forfeits its leftover deficit.
                deficit[i] = 0;
            } else {
                backlog = true;
                arrived_backlog = true;
            }
        }
        if !backlog {
            break;
        }
        if !sent_any && !arrived_backlog {
            // Every arrived queue is empty: the only backlog is future
            // arrivals, so jump to the next one.  An arrived client
            // whose head unit still exceeds its deficit (sent_any
            // false, arrived_backlog true) instead keeps taking
            // zero-time rounds until its deficit covers the unit —
            // jumping over it would idle the pipe with work waiting
            // and break the work-conservation invariant.
            if let Some(next) = clients
                .iter()
                .enumerate()
                .filter(|(i, c)| next_unit[*i] < c.units.len() && c.arrival > now)
                .map(|(_, c)| c.arrival)
                .min()
            {
                now = next;
            }
        }
    }
    clients
        .iter()
        .zip(&finish)
        .map(|(c, &f)| {
            let bytes = c.total_bytes();
            ClientService {
                finish: f,
                bytes,
                queue_cycles: f - c.arrival - cycles_for(bytes, egress_cpb),
            }
        })
        .collect()
}

/// `bytes × cpb` in `u128`, saturated to `u64` (the same guard as
/// [`crate::link::Link::cycles_for`]).
fn cycles_for(bytes: u64, cpb: u64) -> u64 {
    u64::try_from(u128::from(bytes) * u128::from(cpb)).unwrap_or(u64::MAX)
}

/// Typed admission rejection: the server's token bucket is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Cycles from the rejected attempt until the bucket next refills
    /// (the earliest moment a retry can possibly succeed).
    pub retry_after: u64,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission rejected; retry after {} cycles",
            self.retry_after
        )
    }
}

impl std::error::Error for Rejected {}

/// Token-bucket admission controller over new sessions.
///
/// The bucket starts full at `burst` tokens and refills `rate` tokens
/// at every `period_cycles` boundary (capped at `burst`).  Each
/// admission spends one token; an empty bucket yields a typed
/// [`Rejected`] telling the client when the next refill lands.
///
/// ```
/// use nonstrict_netsim::contention::AdmissionController;
///
/// let mut ctl = AdmissionController::new(1, 1, 1_000);
/// assert!(ctl.admit(0).is_ok());
/// let rej = ctl.admit(10).unwrap_err();
/// assert_eq!(rej.retry_after, 990); // next refill at cycle 1_000
/// assert!(ctl.admit(1_000).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionController {
    rate: u32,
    burst: u32,
    period_cycles: u64,
    tokens: u32,
    /// Index of the last refill period folded into `tokens`.
    refilled_through: u64,
}

impl AdmissionController {
    /// A controller refilling `rate` tokens per `period_cycles`, with
    /// burst capacity `burst`.  `rate`, `burst`, and `period_cycles`
    /// are clamped to at least 1 (a rate of zero would never admit
    /// anyone; "admission disabled" is a fleet-level concept, not a
    /// controller state).
    #[must_use]
    pub fn new(rate: u32, burst: u32, period_cycles: u64) -> AdmissionController {
        let burst = burst.max(1);
        AdmissionController {
            rate: rate.max(1),
            burst,
            period_cycles: period_cycles.max(1),
            tokens: burst,
            refilled_through: 0,
        }
    }

    /// Try to admit a session at wall cycle `now`.  Calls must be
    /// monotone in `now` (the fleet event loop guarantees this).
    ///
    /// # Errors
    ///
    /// [`Rejected`] when the bucket is empty, with `retry_after` set
    /// to the cycles remaining until the next refill boundary.
    pub fn admit(&mut self, now: u64) -> Result<(), Rejected> {
        let period = now / self.period_cycles;
        if period > self.refilled_through {
            let elapsed = period - self.refilled_through;
            let refill = u64::from(self.rate).saturating_mul(elapsed);
            self.tokens = u32::try_from(u64::from(self.tokens).saturating_add(refill))
                .unwrap_or(u32::MAX)
                .min(self.burst);
            self.refilled_through = period;
        }
        if self.tokens > 0 {
            self.tokens -= 1;
            Ok(())
        } else {
            Err(Rejected {
                // Saturating: near u64::MAX the next refill boundary
                // is unrepresentable, and a clamped (even zero)
                // retry_after is the sane answer rather than overflow.
                retry_after: period
                    .saturating_add(1)
                    .saturating_mul(self.period_cycles)
                    .saturating_sub(now),
            })
        }
    }
}

/// Seeded jitter draw in `[0, span)` for admission backoff: attempt
/// `attempt` of client `client` always draws the same value for the
/// same fleet seed.  Returns 0 when `span` is 0.
#[must_use]
pub fn jitter(seed: u64, client: u64, attempt: u32, span: u64) -> u64 {
    if span == 0 {
        return 0;
    }
    let draw = splitmix(splitmix(seed ^ SALT_JITTER) ^ splitmix(client) ^ u64::from(attempt));
    draw % span
}

/// Error constructing a [`ShedLadder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderError {
    /// The rung thresholds were not in non-decreasing order.
    Unordered,
}

impl fmt::Display for LadderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadderError::Unordered => write!(
                f,
                "shed ladder rungs must be non-decreasing: drop-hedges <= force-strict <= shed"
            ),
        }
    }
}

impl std::error::Error for LadderError {}

/// The load-shedding action chosen for one client, in degradation
/// order.  Later rungs imply the earlier ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedAction {
    /// Queue delay below every rung: serve the session unmodified.
    None,
    /// First rung: cancel hedged duplicate fetches (the cheapest
    /// bandwidth to reclaim — hedges are pure redundancy).
    DropHedges,
    /// Second rung: force strict sequential transfer and execution,
    /// giving up overlap to shrink the client's peak demand.
    ForceStrict,
    /// Final rung: checkpoint the session to a journal and park it for
    /// later resume, freeing its share of the pipe entirely.
    Shed,
}

impl ShedAction {
    /// Stable lowercase label for reports and CSVs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShedAction::None => "serve",
            ShedAction::DropHedges => "drop-hedges",
            ShedAction::ForceStrict => "force-strict",
            ShedAction::Shed => "shed",
        }
    }
}

/// The three-rung load-shedding ladder: queue-delay thresholds (in
/// cycles) at which an overloaded client is degraded.
///
/// ```
/// use nonstrict_netsim::contention::{ShedAction, ShedLadder};
///
/// let ladder = ShedLadder::new(100, 200, 300).unwrap();
/// assert_eq!(ladder.action_for(50), ShedAction::None);
/// assert_eq!(ladder.action_for(100), ShedAction::DropHedges);
/// assert_eq!(ladder.action_for(250), ShedAction::ForceStrict);
/// assert_eq!(ladder.action_for(u64::MAX), ShedAction::Shed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShedLadder {
    /// Queue delay at which hedged fetches are dropped.
    pub drop_hedges: u64,
    /// Queue delay at which the session is forced strict.
    pub force_strict: u64,
    /// Queue delay at which the session is shed to a journal.
    pub shed: u64,
}

impl ShedLadder {
    /// A ladder with the given rung thresholds.
    ///
    /// # Errors
    ///
    /// [`LadderError::Unordered`] unless
    /// `drop_hedges <= force_strict <= shed`.
    pub fn new(drop_hedges: u64, force_strict: u64, shed: u64) -> Result<ShedLadder, LadderError> {
        if drop_hedges <= force_strict && force_strict <= shed {
            Ok(ShedLadder {
                drop_hedges,
                force_strict,
                shed,
            })
        } else {
            Err(LadderError::Unordered)
        }
    }

    /// The highest rung `queue_cycles` reaches (thresholds are
    /// inclusive), or [`ShedAction::None`] below the first rung.
    #[must_use]
    pub fn action_for(&self, queue_cycles: u64) -> ShedAction {
        if queue_cycles >= self.shed {
            ShedAction::Shed
        } else if queue_cycles >= self.force_strict {
            ShedAction::ForceStrict
        } else if queue_cycles >= self.drop_hedges {
            ShedAction::DropHedges
        } else {
            ShedAction::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(weight: u32, arrival: u64, units: &[u64]) -> ClientDemand {
        ClientDemand {
            weight,
            arrival,
            units: units.to_vec(),
        }
    }

    #[test]
    fn lone_client_sees_no_queueing_at_any_quantum() {
        for quantum in [1, 7, 100, 10_000] {
            let served = drr_schedule(10, quantum, &[demand(1, 42, &[100, 5, 0, 30])]);
            assert_eq!(served[0].bytes, 135);
            assert_eq!(served[0].finish, 42 + 1_350);
            assert_eq!(served[0].queue_cycles, 0);
        }
    }

    #[test]
    fn empty_fleet_and_empty_clients_are_fine() {
        assert!(drr_schedule(10, 100, &[]).is_empty());
        let served = drr_schedule(10, 100, &[demand(1, 5, &[])]);
        assert_eq!(served[0].finish, 5);
        assert_eq!(served[0].queue_cycles, 0);
    }

    #[test]
    fn two_equal_clients_split_the_pipe() {
        let served = drr_schedule(
            1,
            100,
            &[demand(1, 0, &[100; 10]), demand(1, 0, &[100; 10])],
        );
        // 2,000 bytes total at 1 cpb: the last finisher lands at 2,000.
        assert_eq!(served.iter().map(|s| s.finish).max(), Some(2_000));
        // Each client alone would need 1,000 cycles; both are delayed.
        for s in &served {
            assert!(s.queue_cycles > 0);
            assert_eq!(s.finish, s.bytes + s.queue_cycles);
        }
    }

    #[test]
    fn weights_bias_the_share() {
        // Heavier client finishes the same backlog sooner.
        let served = drr_schedule(
            1,
            100,
            &[demand(3, 0, &[100; 12]), demand(1, 0, &[100; 12])],
        );
        assert!(served[0].finish < served[1].finish);
        assert!(served[0].queue_cycles < served[1].queue_cycles);
    }

    #[test]
    fn late_arrival_joins_mid_schedule() {
        let served = drr_schedule(1, 100, &[demand(1, 0, &[100; 4]), demand(1, 350, &[100])]);
        // Client 1 arrives while client 0 is mid-stream and must queue
        // behind at least part of it.
        assert!(served[1].finish >= 450);
        assert_eq!(
            served[1].finish,
            350 + 100 + served[1].queue_cycles,
            "finish decomposes into arrival + service + queue"
        );
    }

    #[test]
    fn deficit_starved_head_unit_does_not_yield_to_future_arrivals() {
        // The head unit (10_000 bytes) dwarfs the quantum (100), so
        // the lone arrived client needs many zero-time deficit rounds
        // before it can send.  The clock must NOT jump to the later
        // arrival while that client is backlogged: it sends at cycle 0
        // with zero queueing, and the late client queues behind
        // nothing (the pipe is free again by 10_000 cycles).
        let served = drr_schedule(
            1,
            100,
            &[demand(1, 0, &[10_000]), demand(1, 50_000, &[100])],
        );
        assert_eq!(served[0].finish, 10_000);
        assert_eq!(served[0].queue_cycles, 0, "work conservation: no idle jump");
        assert_eq!(served[1].finish, 50_100);
        assert_eq!(served[1].queue_cycles, 0);
    }

    #[test]
    fn idle_gap_jumps_to_next_arrival() {
        // Client 0 done at cycle 100; client 1 arrives at 10_000.
        let served = drr_schedule(1, 100, &[demand(1, 0, &[100]), demand(1, 10_000, &[50])]);
        assert_eq!(served[0].finish, 100);
        assert_eq!(served[1].finish, 10_050);
        assert_eq!(served[1].queue_cycles, 0);
    }

    #[test]
    fn admission_bucket_spends_burst_then_rejects_with_refill_time() {
        let mut ctl = AdmissionController::new(2, 3, 1_000);
        assert!(ctl.admit(0).is_ok());
        assert!(ctl.admit(0).is_ok());
        assert!(ctl.admit(100).is_ok());
        let rej = ctl.admit(250).unwrap_err();
        assert_eq!(rej.retry_after, 750);
        // The refill at cycle 1_000 grants `rate` = 2 tokens.
        assert!(ctl.admit(1_000).is_ok());
        assert!(ctl.admit(1_001).is_ok());
        assert!(ctl.admit(1_002).is_err());
    }

    #[test]
    fn admission_refill_caps_at_burst() {
        let mut ctl = AdmissionController::new(10, 2, 100);
        assert!(ctl.admit(0).is_ok());
        assert!(ctl.admit(0).is_ok());
        // Many idle periods refill at most `burst` tokens.
        assert!(ctl.admit(10_000).is_ok());
        assert!(ctl.admit(10_000).is_ok());
        assert!(ctl.admit(10_000).is_err());
    }

    #[test]
    fn admission_near_u64_max_saturates_instead_of_overflowing() {
        // period near u64::MAX / period_cycles: the next refill
        // boundary is unrepresentable, so retry_after clamps.
        let mut ctl = AdmissionController::new(1, 1, 2);
        assert!(ctl.admit(u64::MAX).is_ok());
        let rej = ctl.admit(u64::MAX).unwrap_err();
        assert_eq!(rej.retry_after, 0, "clamped, not wrapped");
    }

    #[test]
    fn jitter_is_deterministic_and_in_range() {
        for attempt in 0..8 {
            let a = jitter(0xfeed, 3, attempt, 500);
            let b = jitter(0xfeed, 3, attempt, 500);
            assert_eq!(a, b);
            assert!(a < 500);
        }
        assert_eq!(jitter(0xfeed, 3, 0, 0), 0);
        // Different clients draw different streams (overwhelmingly).
        let distinct: std::collections::HashSet<u64> =
            (0..16).map(|c| jitter(0xfeed, c, 0, u64::MAX)).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn ladder_rejects_unordered_rungs() {
        assert_eq!(ShedLadder::new(200, 100, 300), Err(LadderError::Unordered));
        assert_eq!(ShedLadder::new(100, 300, 200), Err(LadderError::Unordered));
        assert!(ShedLadder::new(100, 100, 100).is_ok());
    }

    #[test]
    fn ladder_labels_are_stable() {
        assert_eq!(ShedAction::None.label(), "serve");
        assert_eq!(ShedAction::DropHedges.label(), "drop-hedges");
        assert_eq!(ShedAction::ForceStrict.label(), "force-strict");
        assert_eq!(ShedAction::Shed.label(), "shed");
    }
}
