//! The transfer-engine abstraction the co-simulator drives.

use crate::byzantine::IntegrityStats;
use crate::faults::FaultStats;
use crate::replica::ReplicaStats;

/// A transfer engine answers one question for the executing program:
/// *when do the bytes I need arrive?* Implementations simulate the
/// network timeline forward on demand.
///
/// The co-simulator guarantees `now` is non-decreasing across calls, and
/// that after a call returning `t > now` the next call's `now` is at
/// least `t` (execution stalls until the bytes arrive). Engines rely on
/// this to never need to rewind their timeline.
pub trait TransferEngine {
    /// The cycle at which unit `unit` of class `class` has fully
    /// arrived. If the class is not yet transferring and the engine
    /// supports demand fetching, the request itself may start it (a
    /// misprediction fetch at cycle `now`).
    fn unit_ready(&mut self, class: usize, unit: usize, now: u64) -> u64;

    /// The cycle at which every byte of every class has arrived,
    /// assuming no further demand fetches.
    fn finish_time(&mut self) -> u64;

    /// Total bytes this engine would transfer to completion.
    fn total_bytes(&self) -> u64;

    /// Aggregate fault-protocol counters. Perfect-link engines report
    /// all zeros; [`crate::faults::FaultedEngine`] overrides this.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Fault-recovery cycles embedded in the most recent
    /// [`TransferEngine::unit_ready`] answer (zero on perfect links).
    /// The co-simulator uses this to split a stall into transfer-wait
    /// versus fault-recovery time.
    fn last_fault_delay(&self) -> u64 {
        0
    }

    /// Cumulative fault events (retransmissions) charged to `class`,
    /// for graceful-degradation pressure accounting.
    fn class_fault_events(&self, _class: usize) -> u64 {
        0
    }

    /// Hedging cycles embedded in the most recent
    /// [`TransferEngine::unit_ready`] answer (zero outside a replica
    /// set). The co-simulator uses this to split a stall into
    /// transfer-wait, fault-recovery, and hedging time.
    fn last_hedge_delay(&self) -> u64 {
        0
    }

    /// Aggregate replica-set counters. Single-origin engines report
    /// all zeros; [`crate::replica::ReplicaEngine`] overrides this.
    fn replica_stats(&self) -> ReplicaStats {
        ReplicaStats::default()
    }

    /// The replica that served (or will serve) the given unit. The
    /// single origin of a non-replicated engine is replica 0.
    fn serving_replica(&self, _class: usize, _unit: usize) -> u32 {
        0
    }

    /// Integrity-layer cycles (manifest pinning, digest-mismatch
    /// refetches, audit arbitration, fence refetches) embedded in the
    /// most recent [`TransferEngine::unit_ready`] answer (zero when no
    /// Byzantine protection is armed). The co-simulator uses this to
    /// split a stall into transfer-wait, fault-recovery, hedging, and
    /// integrity time.
    fn last_integrity_delay(&self) -> u64 {
        0
    }

    /// Aggregate integrity-layer counters. Engines without a manifest
    /// layer report all zeros; [`crate::replica::ReplicaEngine`]
    /// overrides this when armed with a [`crate::byzantine::ByzantinePlan`].
    fn integrity_stats(&self) -> IntegrityStats {
        IntegrityStats::default()
    }
}

impl<E: TransferEngine + ?Sized> TransferEngine for Box<E> {
    fn unit_ready(&mut self, class: usize, unit: usize, now: u64) -> u64 {
        (**self).unit_ready(class, unit, now)
    }

    fn finish_time(&mut self) -> u64 {
        (**self).finish_time()
    }

    fn total_bytes(&self) -> u64 {
        (**self).total_bytes()
    }

    fn fault_stats(&self) -> FaultStats {
        (**self).fault_stats()
    }

    fn last_fault_delay(&self) -> u64 {
        (**self).last_fault_delay()
    }

    fn class_fault_events(&self, class: usize) -> u64 {
        (**self).class_fault_events(class)
    }

    fn last_hedge_delay(&self) -> u64 {
        (**self).last_hedge_delay()
    }

    fn replica_stats(&self) -> ReplicaStats {
        (**self).replica_stats()
    }

    fn serving_replica(&self, class: usize, unit: usize) -> u32 {
        (**self).serving_replica(class, unit)
    }

    fn last_integrity_delay(&self) -> u64 {
        (**self).last_integrity_delay()
    }

    fn integrity_stats(&self) -> IntegrityStats {
        (**self).integrity_stats()
    }
}
