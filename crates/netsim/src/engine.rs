//! The transfer-engine abstraction the co-simulator drives.

/// A transfer engine answers one question for the executing program:
/// *when do the bytes I need arrive?* Implementations simulate the
/// network timeline forward on demand.
///
/// The co-simulator guarantees `now` is non-decreasing across calls, and
/// that after a call returning `t > now` the next call's `now` is at
/// least `t` (execution stalls until the bytes arrive). Engines rely on
/// this to never need to rewind their timeline.
pub trait TransferEngine {
    /// The cycle at which unit `unit` of class `class` has fully
    /// arrived. If the class is not yet transferring and the engine
    /// supports demand fetching, the request itself may start it (a
    /// misprediction fetch at cycle `now`).
    fn unit_ready(&mut self, class: usize, unit: usize, now: u64) -> u64;

    /// The cycle at which every byte of every class has arrived,
    /// assuming no further demand fetches.
    fn finish_time(&mut self) -> u64;

    /// Total bytes this engine would transfer to completion.
    fn total_bytes(&self) -> u64;
}
