//! Fault injection and the resilient transfer protocol.
//!
//! A [`FaultPlan`] describes everything that can go wrong on a link,
//! deterministically: per-unit payload loss, unit corruption (detected
//! by the CRC32 trailer of [`crate::unit::CHECKSUM_BYTES`]), connection
//! drops with a reconnect latency, and periodic bandwidth-droop windows.
//! Every decision is a pure function of `(seed, class, unit, attempt)`,
//! so the same plan always produces the same timeline — there is no
//! hidden RNG state, and replaying a run with the same seed reproduces
//! it bit for bit.
//!
//! [`FaultedEngine`] wraps any [`TransferEngine`] and rewrites its
//! piecewise-linear delivery timeline in closed form:
//!
//! * droop windows stretch the clock through a monotone piecewise-linear
//!   remap (delivery runs at half rate inside a window, so a window of
//!   base-time length `L` costs `L` extra wall cycles);
//! * each unit's recovery penalty (timeouts, retransmissions, capped
//!   exponential backoff, reconnects) accumulates along its class
//!   stream — a resumable stream re-requests from the last verified
//!   unit, never from byte zero, so a fault on unit `k` delays units
//!   `k..` of that class but nothing it already delivered.
//!
//! The retry loop is bounded: after [`RETRY_CAP`] attempts the delivery
//! is forced to succeed, so every faulted transfer terminates and every
//! simulated execution completes. Deliveries whose final attempt only
//! succeeded because of the cap — the draws for that attempt would have
//! failed again — are counted in [`FaultStats::forced`] so the model's
//! optimism is visible instead of silent.

use crate::engine::TransferEngine;
use crate::link::Link;
use crate::unit::ClassUnits;

/// Maximum delivery attempts per unit; the final attempt always
/// succeeds, bounding recovery time and guaranteeing termination.
pub const RETRY_CAP: u32 = 8;

/// First-retry backoff in cycles (~0.1 ms on the 500 MHz Alpha); each
/// further retry doubles it up to [`BACKOFF_CAP_CYCLES`].
pub const BACKOFF_BASE_CYCLES: u64 = 65_536;

/// Ceiling on the exponential backoff (~17 ms on the Alpha).
pub const BACKOFF_CAP_CYCLES: u64 = 8_388_608;

/// Floor added to the loss-detection timeout so tiny units still wait a
/// round-trip before being re-requested.
pub const TIMEOUT_FLOOR_CYCLES: u64 = 262_144;

/// Base-time period of the droop-window pattern (~8 ms on the Alpha):
/// each period carries one half-rate window whose length is set by the
/// plan's droop rate.
pub const DROOP_PERIOD_CYCLES: u64 = 1 << 22;

/// Aggregate fault-protocol counters for one engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Retransmissions of any kind (lost + corrupted + dropped).
    pub retries: u64,
    /// Units whose payload was lost in transit (detected by timeout).
    pub lost: u64,
    /// Units that arrived with a CRC mismatch.
    pub corrupted: u64,
    /// Units that passed the CRC but failed semantic validation at the
    /// verified-prefix gate and were quarantined and re-fetched.
    pub quarantined: u64,
    /// Connection drops (each costs the reconnect latency).
    pub drops: u64,
    /// Cycles the protocol spent on recovery across the whole transfer
    /// (timeouts, retransmissions, backoff, reconnects).
    pub recovery_cycles: u64,
    /// Bytes sent more than once.
    pub retransmitted_bytes: u64,
    /// Deliveries that exhausted every retry and only completed because
    /// [`RETRY_CAP`] forces the final attempt to succeed. A non-zero
    /// count means the plan's fault rates are beyond what the protocol
    /// can genuinely recover from, and the timeline is optimistic.
    pub forced: u64,
}

/// The outcome of delivering one unit under a plan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UnitDelivery {
    /// Attempts used (1 = clean first try).
    pub attempts: u32,
    /// Failed attempts that forced a retransmission.
    pub retries: u32,
    /// Losses among the failed attempts.
    pub lost: u32,
    /// CRC failures among the failed attempts.
    pub corrupted: u32,
    /// Semantic-validation failures (quarantines) among the failed
    /// attempts.
    pub quarantined: u32,
    /// Connection drops among the failed attempts.
    pub drops: u32,
    /// Extra cycles this unit's stream spends recovering.
    pub penalty_cycles: u64,
    /// Whether the final attempt succeeded only because [`RETRY_CAP`]
    /// forces it to — the draws for that attempt would have failed
    /// again.
    pub forced: bool,
}

/// A deterministic, seeded description of everything that can go wrong
/// on a link. All rates are parts-per-million so the plan stays `Eq` and
/// `Hash`-able; a plan with every rate zero is a perfect link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for every per-unit draw and the droop-window phase.
    pub seed: u64,
    /// Per-attempt probability (ppm) a unit's payload is lost.
    pub loss_pm: u32,
    /// Per-attempt probability (ppm) a unit arrives corrupted.
    pub corrupt_pm: u32,
    /// Per-attempt probability (ppm) the connection drops mid-unit.
    pub drop_pm: u32,
    /// Per-attempt probability (ppm) a unit passes its CRC but fails
    /// semantic validation at the verified-prefix gate (an adversarial
    /// or garbled-in-flight unit whose damage the checksum missed). The
    /// receiver quarantines it and re-fetches, exactly like a CRC
    /// failure.
    pub semantic_pm: u32,
    /// Fraction (ppm) of base delivery time spent in half-rate droop
    /// windows.
    pub droop_pm: u32,
    /// Cycles to re-establish the connection after a drop.
    pub reconnect_cycles: u64,
}

/// SplitMix64: the standard 64-bit finalizer used for per-unit draws
/// (shared with the outage model in [`crate::outage`]).
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Domain-separation salts so the loss, corruption, drop, and
/// droop-phase draws are independent streams of the same seed.
const SALT_LOSS: u64 = 0x4c4f_5353_4c4f_5353;
const SALT_CORRUPT: u64 = 0x4352_4350_4352_4350;
const SALT_DROP: u64 = 0x4452_4f50_4452_4f50;
const SALT_PHASE: u64 = 0x5048_4153_5048_4153;
const SALT_SEMANTIC: u64 = 0x5345_4d41_5345_4d41;

impl FaultPlan {
    /// A perfect link under `seed`: every rate zero, default reconnect.
    #[must_use]
    pub fn perfect(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            loss_pm: 0,
            corrupt_pm: 0,
            drop_pm: 0,
            semantic_pm: 0,
            droop_pm: 0,
            reconnect_cycles: 1_000_000,
        }
    }

    /// Whether this plan can never perturb a timeline.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.loss_pm == 0
            && self.corrupt_pm == 0
            && self.drop_pm == 0
            && self.semantic_pm == 0
            && self.droop_pm == 0
    }

    /// The deterministic draw for `(class, unit, attempt, salt)`.
    fn draw(&self, class: usize, unit: usize, attempt: u32, salt: u64) -> u64 {
        let mut h = splitmix(self.seed ^ salt);
        h = splitmix(h ^ class as u64);
        h = splitmix(h ^ unit as u64);
        h = splitmix(h ^ u64::from(attempt));
        h
    }

    /// Whether a uniform draw `h` lands under `rate_pm`.
    fn hits(rate_pm: u32, h: u64) -> bool {
        // h / 2^64 < rate / 1e6, exactly, in integers.
        u128::from(h) * 1_000_000 < u128::from(rate_pm) << 64
    }

    /// Delivers one unit whose clean transmission takes `tx_cycles`,
    /// returning the attempt count and accumulated recovery penalty.
    /// Deterministic in `(seed, class, unit)`; bounded by [`RETRY_CAP`].
    #[must_use]
    pub fn unit_delivery(&self, class: usize, unit: usize, tx_cycles: u64) -> UnitDelivery {
        let mut d = UnitDelivery {
            attempts: 1,
            ..UnitDelivery::default()
        };
        if self.loss_pm == 0 && self.corrupt_pm == 0 && self.drop_pm == 0 && self.semantic_pm == 0 {
            return d;
        }
        for attempt in 0..RETRY_CAP - 1 {
            let dropped = Self::hits(self.drop_pm, self.draw(class, unit, attempt, SALT_DROP));
            let lost = Self::hits(self.loss_pm, self.draw(class, unit, attempt, SALT_LOSS));
            let corrupted = Self::hits(
                self.corrupt_pm,
                self.draw(class, unit, attempt, SALT_CORRUPT),
            );
            let quarantined = Self::hits(
                self.semantic_pm,
                self.draw(class, unit, attempt, SALT_SEMANTIC),
            );
            if !(dropped || lost || corrupted || quarantined) {
                break;
            }
            d.attempts += 1;
            d.retries += 1;
            let backoff = (BACKOFF_BASE_CYCLES << attempt).min(BACKOFF_CAP_CYCLES);
            if dropped {
                // The connection died mid-unit: reconnect, then the
                // resumable stream re-requests this unit only (earlier
                // units were already verified).
                d.drops += 1;
                d.penalty_cycles += self.reconnect_cycles + tx_cycles + backoff;
            } else if lost {
                // Nothing arrived: wait out the per-unit timeout, then
                // retransmit.
                d.lost += 1;
                d.penalty_cycles += loss_timeout(tx_cycles) + tx_cycles + backoff;
            } else if corrupted {
                // Full receipt, CRC mismatch: immediate NAK, retransmit.
                d.corrupted += 1;
                d.penalty_cycles += tx_cycles + backoff;
            } else {
                // Full receipt, CRC fine, but the verified-prefix gate
                // rejected the unit's contents: quarantine it and
                // re-fetch, same timing as a CRC NAK.
                d.quarantined += 1;
                d.penalty_cycles += tx_cycles + backoff;
            }
        }
        if d.retries == RETRY_CAP - 1 {
            // Every real attempt failed and the cap is about to force
            // the final one through. Draw for it anyway: if the dice
            // say it would have failed too, the success is synthetic
            // and must be reported, not hidden. (The draw changes no
            // timing, so existing timelines stay bit-identical.)
            let a = RETRY_CAP - 1;
            d.forced = Self::hits(self.drop_pm, self.draw(class, unit, a, SALT_DROP))
                || Self::hits(self.loss_pm, self.draw(class, unit, a, SALT_LOSS))
                || Self::hits(self.corrupt_pm, self.draw(class, unit, a, SALT_CORRUPT))
                || Self::hits(self.semantic_pm, self.draw(class, unit, a, SALT_SEMANTIC));
        }
        d
    }

    /// Rewrites a base-timeline instant into wall time by stretching
    /// every droop window it crosses (half rate inside a window doubles
    /// its cost). Monotone and piecewise linear; identity when
    /// `droop_pm` is zero.
    #[must_use]
    pub fn remap(&self, t: u64) -> u64 {
        if self.droop_pm == 0 {
            return t;
        }
        let period = DROOP_PERIOD_CYCLES;
        let window = (u128::from(period) * u128::from(self.droop_pm) / 1_000_000) as u64;
        let phase = splitmix(self.seed ^ SALT_PHASE) % period;
        let s = t.saturating_sub(phase);
        let full = s / period;
        let partial = (s % period).min(window);
        t.saturating_add(full.saturating_mul(window))
            .saturating_add(partial)
    }
}

/// Loss is detected by timeout: twice the unit's clean transmission
/// time, floored so tiny units still wait a round trip.
fn loss_timeout(tx_cycles: u64) -> u64 {
    tx_cycles.saturating_mul(2).max(TIMEOUT_FLOOR_CYCLES)
}

/// Wraps a perfect-link [`TransferEngine`] and applies a [`FaultPlan`]
/// to its delivery timeline: droop windows remap the clock, and every
/// unit's recovery penalty accumulates along its class stream (prefix
/// sums, so the rewrite stays closed-form). All penalties are computed
/// eagerly at construction, making arrivals pure lookups.
#[derive(Debug)]
pub struct FaultedEngine<E> {
    inner: E,
    plan: FaultPlan,
    /// Cumulative recovery penalty through each unit, per class.
    penalty_prefix: Vec<Vec<u64>>,
    /// Fault events (retries + drops) per class, for degradation
    /// pressure accounting upstream.
    class_events: Vec<u64>,
    stats: FaultStats,
    last_fault_delay: u64,
}

impl<E: TransferEngine> FaultedEngine<E> {
    /// Wraps `inner`, precomputing every unit's delivery outcome for
    /// `units` over `link`.
    #[must_use]
    pub fn new(inner: E, plan: FaultPlan, units: &[ClassUnits], link: Link) -> Self {
        let mut penalty_prefix = Vec::with_capacity(units.len());
        let mut class_events = vec![0u64; units.len()];
        let mut stats = FaultStats::default();
        for (c, u) in units.iter().enumerate() {
            let sizes: Vec<u64> = std::iter::once(u.prelude)
                .chain(u.methods.iter().copied())
                .chain(std::iter::once(u.trailing))
                .collect();
            let mut prefix = Vec::with_capacity(sizes.len());
            let mut acc = 0u64;
            for (i, &bytes) in sizes.iter().enumerate() {
                let d = plan.unit_delivery(c, i, link.cycles_for(bytes));
                acc = acc.saturating_add(d.penalty_cycles);
                prefix.push(acc);
                stats.retries += u64::from(d.retries);
                stats.lost += u64::from(d.lost);
                stats.corrupted += u64::from(d.corrupted);
                stats.quarantined += u64::from(d.quarantined);
                stats.drops += u64::from(d.drops);
                stats.recovery_cycles += d.penalty_cycles;
                stats.retransmitted_bytes += bytes * u64::from(d.retries);
                stats.forced += u64::from(d.forced);
                class_events[c] += u64::from(d.retries);
            }
            penalty_prefix.push(prefix);
        }
        FaultedEngine {
            inner,
            plan,
            penalty_prefix,
            class_events,
            stats,
            last_fault_delay: 0,
        }
    }

    /// The wrapped perfect-link engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: TransferEngine> TransferEngine for FaultedEngine<E> {
    fn unit_ready(&mut self, class: usize, unit: usize, now: u64) -> u64 {
        let base = self.inner.unit_ready(class, unit, now);
        let t = self
            .plan
            .remap(base)
            .saturating_add(self.penalty_prefix[class][unit]);
        self.last_fault_delay = t - base;
        t
    }

    fn finish_time(&mut self) -> u64 {
        // Run the base timeline to completion, then apply each class
        // stream's full recovery penalty to its last arrival.
        let base_finish = self.inner.finish_time();
        let mut finish = self.plan.remap(base_finish);
        for c in 0..self.penalty_prefix.len() {
            let last = self.penalty_prefix[c].len() - 1;
            let b = self.inner.unit_ready(c, last, base_finish);
            finish = finish.max(
                self.plan
                    .remap(b)
                    .saturating_add(self.penalty_prefix[c][last]),
            );
        }
        finish
    }

    fn total_bytes(&self) -> u64 {
        // Unique payload bytes; retransmissions are reported in
        // `fault_stats().retransmitted_bytes`.
        self.inner.total_bytes()
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    fn last_fault_delay(&self) -> u64 {
        self.last_fault_delay
    }

    fn class_fault_events(&self, class: usize) -> u64 {
        self.class_events[class]
    }

    fn last_hedge_delay(&self) -> u64 {
        self.inner.last_hedge_delay()
    }

    fn replica_stats(&self) -> crate::replica::ReplicaStats {
        self.inner.replica_stats()
    }

    fn serving_replica(&self, class: usize, unit: usize) -> u32 {
        self.inner.serving_replica(class, unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ParallelSchedule;
    use crate::ParallelEngine;

    const LINK: Link = Link {
        cycles_per_byte: 10,
        name: "test",
    };

    fn lossy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            loss_pm: 200_000,
            corrupt_pm: 100_000,
            drop_pm: 50_000,
            semantic_pm: 50_000,
            droop_pm: 100_000,
            reconnect_cycles: 500_000,
        }
    }

    fn sample_units() -> Vec<ClassUnits> {
        vec![
            ClassUnits {
                prelude: 100,
                methods: vec![50, 50],
                trailing: 0,
            },
            ClassUnits {
                prelude: 40,
                methods: vec![20],
                trailing: 10,
            },
        ]
    }

    fn engine(units: &[ClassUnits]) -> ParallelEngine {
        let schedule = ParallelSchedule {
            class_order: (0..units.len()).collect(),
            thresholds: vec![0; units.len()],
        };
        ParallelEngine::new(LINK, units.to_vec(), &schedule, 4)
    }

    #[test]
    fn perfect_plan_is_the_identity() {
        let plan = FaultPlan::perfect(42);
        assert!(plan.is_perfect());
        assert_eq!(plan.remap(123_456_789), 123_456_789);
        let d = plan.unit_delivery(3, 7, 10_000);
        assert_eq!(
            d,
            UnitDelivery {
                attempts: 1,
                ..UnitDelivery::default()
            }
        );
    }

    #[test]
    fn zero_rate_wrapper_matches_the_inner_engine_exactly() {
        let units = sample_units();
        let mut bare = engine(&units);
        let mut faulted = FaultedEngine::new(engine(&units), FaultPlan::perfect(9), &units, LINK);
        for (c, u) in units.iter().enumerate() {
            for i in 0..u.unit_count() {
                assert_eq!(faulted.unit_ready(c, i, 0), bare.unit_ready(c, i, 0));
                assert_eq!(faulted.last_fault_delay(), 0);
            }
        }
        assert_eq!(faulted.finish_time(), bare.finish_time());
        assert_eq!(faulted.fault_stats(), FaultStats::default());
    }

    #[test]
    fn deliveries_are_deterministic_and_seed_sensitive() {
        let plan = lossy(7);
        let a = plan.unit_delivery(1, 2, 5_000);
        let b = plan.unit_delivery(1, 2, 5_000);
        assert_eq!(a, b, "same (seed, class, unit) must replay identically");
        // With aggressive rates, some (class, unit) across seeds must
        // differ — two seeds that agree everywhere would mean the seed
        // is ignored.
        let other = lossy(8);
        let differs =
            (0..20).any(|u| plan.unit_delivery(0, u, 5_000) != other.unit_delivery(0, u, 5_000));
        assert!(differs);
    }

    #[test]
    fn retry_cap_bounds_every_delivery() {
        // Certain loss: every attempt fails, but the cap forces
        // completion with a bounded penalty.
        let plan = FaultPlan {
            seed: 1,
            loss_pm: 1_000_000,
            corrupt_pm: 0,
            drop_pm: 0,
            semantic_pm: 0,
            droop_pm: 0,
            reconnect_cycles: 0,
        };
        let d = plan.unit_delivery(0, 0, 1_000);
        assert_eq!(d.attempts, RETRY_CAP);
        assert_eq!(d.retries, RETRY_CAP - 1);
        assert!(
            d.forced,
            "certain loss means the final attempt only succeeded by force"
        );
        let per_attempt = loss_timeout(1_000) + 1_000 + BACKOFF_CAP_CYCLES;
        assert!(d.penalty_cycles <= u64::from(RETRY_CAP) * per_attempt);
    }

    #[test]
    fn semantic_failures_quarantine_and_refetch_like_crc_failures() {
        // A plan with only semantic faults: every failed attempt is a
        // quarantine, charged the same NAK timing as a corruption.
        let semantic = FaultPlan {
            seed: 6,
            loss_pm: 0,
            corrupt_pm: 0,
            drop_pm: 0,
            semantic_pm: 400_000,
            droop_pm: 0,
            reconnect_cycles: 0,
        };
        let crc = FaultPlan {
            corrupt_pm: 400_000,
            semantic_pm: 0,
            ..semantic
        };
        let mut saw_quarantine = false;
        for u in 0..40 {
            let d = semantic.unit_delivery(0, u, 3_000);
            assert_eq!(d.retries, d.quarantined, "only quarantines can retry");
            assert_eq!(d.lost + d.corrupted + d.drops, 0);
            saw_quarantine |= d.quarantined > 0;
            // Same per-failure penalty shape as a CRC NAK: for a unit
            // where both plans fail the same number of attempts, the
            // penalties agree.
            let c = crc.unit_delivery(0, u, 3_000);
            if c.retries == d.retries {
                assert_eq!(c.penalty_cycles, d.penalty_cycles);
            }
        }
        assert!(saw_quarantine, "40% semantic rate must quarantine units");
    }

    #[test]
    fn remap_is_monotone_and_piecewise_linear() {
        let plan = lossy(3);
        let mut last = 0;
        for k in 0..200 {
            let t = k * (DROOP_PERIOD_CYCLES / 7);
            let r = plan.remap(t);
            assert!(r >= t, "droop only delays");
            assert!(r >= last, "remap must be monotone");
            last = r;
        }
        // 10% droop at half rate adds at most ~10% extra time.
        let horizon = 100 * DROOP_PERIOD_CYCLES;
        let extra = plan.remap(horizon) - horizon;
        assert!(
            extra <= horizon / 9,
            "extra {extra} too large for 10% droop"
        );
    }

    #[test]
    fn faulted_arrivals_stay_monotone_within_each_stream() {
        let units = sample_units();
        let mut faulted = FaultedEngine::new(engine(&units), lossy(11), &units, LINK);
        let finish = faulted.finish_time();
        for (c, u) in units.iter().enumerate() {
            let mut last = 0;
            for i in 0..u.unit_count() {
                let t = faulted.unit_ready(c, i, 0);
                assert!(t >= last, "class {c} unit {i}");
                assert!(t <= finish, "no arrival after the faulted finish");
                last = t;
            }
        }
        let stats = faulted.fault_stats();
        assert!(stats.retries > 0, "aggressive rates must cause retries");
        assert!(stats.recovery_cycles > 0);
    }

    #[test]
    fn stream_penalties_never_leak_across_classes() {
        // A plan that only ever faults class 0's units must leave class
        // 1's arrivals untouched (modulo shared-bandwidth effects, which
        // the base engine already covers — so drive each class alone).
        let units = vec![ClassUnits {
            prelude: 100,
            methods: vec![],
            trailing: 0,
        }];
        let plan = lossy(5);
        let mut faulted = FaultedEngine::new(engine(&units), plan, &units, LINK);
        let d = plan.unit_delivery(0, 0, LINK.cycles_for(100));
        let base = engine(&units).unit_ready(0, 0, 0);
        assert_eq!(
            faulted.unit_ready(0, 0, 0),
            plan.remap(base) + d.penalty_cycles
        );
    }
}
