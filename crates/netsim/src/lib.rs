//! # nonstrict-netsim
//!
//! The network half of the paper's cycle-level co-simulation:
//!
//! * [`link`] — link models in machine cycles per byte (the paper's T1 =
//!   3,815 and 28.8 K modem = 134,698 on a 500 MHz Alpha).
//! * [`unit`] — transfer units: each class file becomes a *prelude*
//!   (global data, or just the needed-first slice under data
//!   partitioning), one unit per method (GMD + local data + code +
//!   method delimiter), and a *trailing* unit of unused globals.
//! * [`schedule`] — the greedy parallel-transfer schedule (§5.1):
//!   first-use class order plus unique-byte dependency thresholds.
//! * [`engine`] — the [`engine::TransferEngine`] abstraction the
//!   co-simulator drives.
//! * [`parallel`] — fluid multi-stream transfer with fair bandwidth
//!   sharing, a concurrent-file limit, threshold-triggered starts, and
//!   demand-fetch correction on misprediction.
//! * [`interleaved`] — the single virtual interleaved file (§5.2).
//! * [`strict`] — sequential whole-class transfer (baseline and
//!   ablation).
//! * [`faults`] — seeded, deterministic fault injection
//!   ([`faults::FaultPlan`]) and the resilient transfer protocol
//!   ([`faults::FaultedEngine`]): CRC32-verified units, retry with
//!   capped exponential backoff, resumable streams after a drop, and
//!   piecewise-linear droop-window time remapping.
//! * [`outage`] — full connection losses ([`outage::OutagePlan`]):
//!   seeded per-period outage events with duration distributions that
//!   freeze the client and the link together, and the monotone
//!   base-to-wall time shift ([`outage::OutageSchedule`]) the session
//!   layer uses for checkpoint/resume accounting.
//! * [`replica`] — replica-set transfer ([`replica::ReplicaEngine`]):
//!   N independently seeded mirrors with EWMA health-scored routing,
//!   hedged duplicate fetches past a stall deadline, and mid-stream
//!   failover at unit boundaries.
//! * [`byzantine`] — seeded Byzantine misbehavior plans
//!   ([`byzantine::ByzantinePlan`]): stale-epoch, equivocating, and
//!   manifest-colluding mirrors, plus the cross-mirror audit sampler
//!   and the integrity counters the manifest layer reports.
//! * [`contention`] — the multi-client server model: deficit-round-
//!   robin fair sharing of one egress pipe over per-client unit
//!   queues, a token-bucket admission controller with typed
//!   [`contention::Rejected`] backpressure, and the three-rung
//!   load-shedding ladder ([`contention::ShedLadder`]).
//!
//! All engines are **event-driven fluid** simulators: transfer progress
//! is piecewise linear, so the engines jump from event to event (unit
//! boundary, stream completion, dependency-threshold crossing) instead
//! of stepping the ~10^10 cycles a modem-link run covers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod byzantine;
pub mod contention;
pub mod engine;
pub mod faults;
pub mod interleaved;
pub mod link;
pub mod outage;
pub mod parallel;
pub mod replica;
pub mod schedule;
pub mod strict;
pub mod unit;

pub use byzantine::{
    ByzantineMode, ByzantinePlan, IntegrityStats, AUDIT_COMPARE_CYCLES, DIGEST_CHECK_CYCLES,
    DIVERGENCE_RATE_PM, QUARANTINE_CYCLES,
};
pub use contention::{
    drr_schedule, jitter, AdmissionController, ClientDemand, ClientService, LadderError, Rejected,
    ShedAction, ShedLadder,
};
pub use engine::TransferEngine;
pub use faults::{FaultPlan, FaultStats, FaultedEngine};
pub use interleaved::InterleavedEngine;
pub use link::{Link, LinkError};
pub use outage::{OutageEngine, OutageEvent, OutagePlan, OutageSchedule, OUTAGE_PERIOD_CYCLES};
pub use parallel::ParallelEngine;
pub use replica::{
    decay_health, replica_seed, ReplicaEngine, ReplicaHealth, ReplicaProfile, ReplicaStats,
    HEDGE_OVERHEAD_CYCLES, MAX_REPLICAS,
};
pub use schedule::{greedy_schedule, ParallelSchedule, ScheduleError, Weights};
pub use strict::StrictEngine;
pub use unit::{
    add_checksum_overhead, class_units, crc32, ClassUnits, CHECKSUM_BYTES, DELIMITER_BYTES,
};
