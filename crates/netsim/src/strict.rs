//! Strict whole-class transfer: the JVM-of-1998 model.
//!
//! Classes transfer one at a time, to completion, in a fixed order; a
//! method is available only when its **entire class file** has arrived.
//! This engine provides:
//!
//! * the strict invocation-latency number of Table 4 (arrival of the
//!   first class file), and
//! * the "strict with overlap" ablation — the paper's *baseline* charges
//!   transfer and execution strictly in sequence (Table 3's sum), which
//!   the experiment layer computes analytically; this engine answers
//!   what strict-per-class availability alone would buy.

use crate::engine::TransferEngine;
use crate::link::Link;
use crate::unit::ClassUnits;

/// Sequential whole-class transfer.
#[derive(Debug, Clone)]
pub struct StrictEngine {
    /// Completion cycle of each class, indexed by class.
    class_done: Vec<u64>,
    finish: u64,
    total_bytes: u64,
}

impl StrictEngine {
    /// Builds the engine: classes stream back-to-back in `class_order`
    /// at full bandwidth.
    #[must_use]
    pub fn new(link: Link, units: &[ClassUnits], class_order: &[usize]) -> Self {
        assert_eq!(
            units.len(),
            class_order.len(),
            "order must cover all classes"
        );
        let mut class_done = vec![0u64; units.len()];
        let mut sent = 0u64;
        for &c in class_order {
            sent += units[c].total();
            class_done[c] = link.cycles_for(sent);
        }
        StrictEngine {
            class_done,
            finish: link.cycles_for(sent),
            total_bytes: sent,
        }
    }

    /// Completion cycle of `class`.
    #[must_use]
    pub fn class_ready(&self, class: usize) -> u64 {
        self.class_done[class]
    }
}

impl TransferEngine for StrictEngine {
    fn unit_ready(&mut self, class: usize, _unit: usize, _now: u64) -> u64 {
        // Strictness: any unit of a class is usable only when the whole
        // class has arrived.
        self.class_done[class]
    }

    fn finish_time(&mut self) -> u64 {
        self.finish
    }

    fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINK: Link = Link {
        cycles_per_byte: 100,
        name: "test",
    };

    fn units() -> Vec<ClassUnits> {
        vec![
            ClassUnits {
                prelude: 10,
                methods: vec![5, 5],
                trailing: 0,
            },
            ClassUnits {
                prelude: 30,
                methods: vec![10],
                trailing: 0,
            },
        ]
    }

    #[test]
    fn classes_complete_sequentially() {
        let mut e = StrictEngine::new(LINK, &units(), &[0, 1]);
        assert_eq!(e.unit_ready(0, 0, 0), 2_000);
        assert_eq!(
            e.unit_ready(0, 2, 0),
            2_000,
            "all units share the class arrival"
        );
        assert_eq!(e.unit_ready(1, 0, 0), 6_000);
        assert_eq!(e.finish_time(), 6_000);
        assert_eq!(e.total_bytes(), 60);
    }

    #[test]
    fn order_controls_completion() {
        let e = StrictEngine::new(LINK, &units(), &[1, 0]);
        assert_eq!(e.class_ready(1), 4_000);
        assert_eq!(e.class_ready(0), 6_000);
    }
}
