//! Interleaved file transfer (§5.2): one virtual file, full bandwidth.
//!
//! All classes are fused into a single virtual interleaved file: each
//! class's prelude is placed immediately before its first-used method,
//! and method units from different classes interleave in global
//! first-use order. One transfer unit streams at a time at the full link
//! bandwidth; trailing (unused) units go last.

use nonstrict_bytecode::{Application, Program};
use nonstrict_reorder::{FirstUseOrder, RestructuredApp};

use crate::engine::TransferEngine;
use crate::link::Link;
use crate::unit::ClassUnits;

/// The single-stream interleaved engine. Arrival times are closed-form;
/// construction precomputes them all.
#[derive(Debug, Clone)]
pub struct InterleavedEngine {
    /// Arrival cycle per class per unit.
    arrivals: Vec<Vec<u64>>,
    total_bytes: u64,
    finish: u64,
}

impl InterleavedEngine {
    /// Builds the virtual interleaved file for `app` laid out by
    /// `order`, and computes every unit's arrival time over `link`.
    #[must_use]
    pub fn new(
        app: &Application,
        restructured: &RestructuredApp,
        units: &[ClassUnits],
        order: &FirstUseOrder,
        link: Link,
    ) -> Self {
        let program = &app.program;
        let mut arrivals: Vec<Vec<u64>> =
            units.iter().map(|u| vec![0u64; u.unit_count()]).collect();
        let mut sent = 0u64;
        let mut prelude_sent = vec![false; units.len()];

        // Stream method units in global first-use order, each class's
        // prelude immediately before its first method.
        for &m in order.order() {
            let c = m.class.0 as usize;
            if !prelude_sent[c] {
                prelude_sent[c] = true;
                sent += units[c].prelude;
                arrivals[c][0] = link.cycles_for(sent);
            }
            let pos = position_of(restructured, program, m);
            let unit = ClassUnits::method_unit(pos);
            sent += units[c].methods[pos];
            arrivals[c][unit] = link.cycles_for(sent);
        }
        // Trailing units (unused globals) go last.
        for (c, u) in units.iter().enumerate() {
            sent += u.trailing;
            let last = u.unit_count() - 1;
            arrivals[c][last] = link.cycles_for(sent);
        }

        InterleavedEngine {
            arrivals,
            total_bytes: sent,
            finish: link.cycles_for(sent),
        }
    }
}

fn position_of(
    restructured: &RestructuredApp,
    program: &Program,
    m: nonstrict_bytecode::MethodId,
) -> usize {
    let _ = program;
    restructured.layouts[m.class.0 as usize].position_of(m.method)
}

impl InterleavedEngine {
    /// The (precomputed) arrival of a unit.
    #[must_use]
    pub fn recorded_arrival(&self, class: usize, unit: usize) -> u64 {
        self.arrivals[class][unit]
    }
}

impl TransferEngine for InterleavedEngine {
    fn unit_ready(&mut self, class: usize, unit: usize, _now: u64) -> u64 {
        self.arrivals[class][unit]
    }

    fn finish_time(&mut self) -> u64 {
        self.finish
    }

    fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{class_units, DELIMITER_BYTES};
    use nonstrict_reorder::{restructure, static_first_use};

    fn engine() -> (
        Application,
        InterleavedEngine,
        Vec<ClassUnits>,
        FirstUseOrder,
    ) {
        let app = nonstrict_workloads::hanoi::build();
        let order = static_first_use(&app.program);
        let r = restructure(&app, &order);
        let units = class_units(&app, &r, None, DELIMITER_BYTES);
        let e = InterleavedEngine::new(&app, &r, &units, &order, Link::T1);
        (app, e, units, order)
    }

    #[test]
    fn total_bytes_match_units() {
        let (_, mut e, units, _) = engine();
        let expect: u64 = units.iter().map(ClassUnits::total).sum();
        assert_eq!(e.total_bytes(), expect);
        assert_eq!(e.finish_time(), Link::T1.cycles_for(expect));
    }

    #[test]
    fn first_used_method_arrives_after_its_prelude_only() {
        let (app, mut e, units, _) = engine();
        let entry = app.program.entry();
        let c = entry.class.0 as usize;
        // entry method is first in its restructured file, so its unit is 1
        let arrival = e.unit_ready(c, 1, 0);
        let expect = Link::T1.cycles_for(units[c].prelude + units[c].methods[0]);
        assert_eq!(arrival, expect);
    }

    #[test]
    fn arrivals_follow_first_use_order() {
        let (app, mut e, _, order) = engine();
        // Each successive first-use method must arrive no earlier than
        // its predecessor in the predicted order.
        let r = restructure(&app, &order);
        let mut last = 0;
        for &m in order.order() {
            let c = m.class.0 as usize;
            let pos = r.layouts[c].position_of(m.method);
            let t = e.unit_ready(c, ClassUnits::method_unit(pos), 0);
            assert!(t >= last, "{m} at {t} before {last}");
            last = t;
        }
    }

    #[test]
    fn queries_are_stable() {
        let (_, mut e, _, _) = engine();
        let a = e.unit_ready(0, 1, 0);
        let b = e.unit_ready(0, 1, 999_999_999);
        assert_eq!(a, b, "interleaved arrivals ignore the query time");
    }
}
