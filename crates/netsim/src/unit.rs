//! Transfer units: the byte chunks whose arrival gates execution.
//!
//! Per class, in stream order:
//!
//! * unit 0 — the **prelude**: the whole global data (no partitioning)
//!   or just the needed-first slice (§7.3 partitioning);
//! * units `1..=M` — one per method *in restructured file order*: its
//!   GMD chunk (partitioning only), local data, code, and the method
//!   delimiter the non-strict JVM looks for (§3);
//! * a final **trailing** unit: unused global data under partitioning
//!   (zero bytes otherwise).
//!
//! All sizes are wire-scaled by the application's calibration factor.

use nonstrict_bytecode::Application;
use nonstrict_reorder::{ClassPartition, RestructuredApp};

/// Bytes of the per-method delimiter marker the non-strict format
/// appends after each method's data and code (§3: "a method delimiter is
/// placed after each procedure and its data").
pub const DELIMITER_BYTES: u64 = 2;

/// Bytes of the CRC32 trailer the resilient transfer protocol appends
/// to every non-empty unit, extending the method-delimiter wire format:
/// the receiver verifies each unit before acknowledging it, so corrupted
/// units are detected and re-requested instead of linked.
pub const CHECKSUM_BYTES: u64 = 4;

/// CRC32 (IEEE 802.3, reflected) of `data` — the per-unit trailer the
/// resilient protocol verifies on receipt. Re-exported from
/// `nonstrict-wire`: the simulated trailer and the real wire frames use
/// the same arithmetic, bit for bit, so the simulator is an honest test
/// double for the socket protocol.
///
/// ```
/// use nonstrict_netsim::unit::crc32;
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub use nonstrict_wire::crc32;

/// Adds the per-unit CRC32 trailer to every non-empty unit, in place.
/// Called when the fault protocol is active; empty units (a zero-byte
/// trailing slot) carry nothing and get no trailer.
pub fn add_checksum_overhead(units: &mut [ClassUnits]) {
    for u in units {
        if u.prelude > 0 {
            u.prelude += CHECKSUM_BYTES;
        }
        for m in &mut u.methods {
            if *m > 0 {
                *m += CHECKSUM_BYTES;
            }
        }
        if u.trailing > 0 {
            u.trailing += CHECKSUM_BYTES;
        }
    }
}

/// The transfer units of one class, in stream order.
///
/// ```
/// use nonstrict_netsim::ClassUnits;
///
/// let units = ClassUnits { prelude: 100, methods: vec![40, 60], trailing: 10 };
/// assert_eq!(units.total(), 210);
/// assert_eq!(units.boundary(0), 100);                     // prelude done
/// assert_eq!(units.boundary(ClassUnits::method_unit(1)), 200); // second method done
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassUnits {
    /// Prelude bytes (unit 0).
    pub prelude: u64,
    /// Method unit bytes, by file position (units `1..=len`).
    pub methods: Vec<u64>,
    /// Trailing bytes (last unit).
    pub trailing: u64,
}

impl ClassUnits {
    /// Number of units (prelude + methods + trailing).
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.methods.len() + 2
    }

    /// Total bytes of the class on the wire.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.prelude + self.methods.iter().sum::<u64>() + self.trailing
    }

    /// Cumulative byte offset at which unit `i` completes.
    #[must_use]
    pub fn boundary(&self, unit: usize) -> u64 {
        let mut acc = self.prelude;
        if unit == 0 {
            return acc;
        }
        for (k, &m) in self.methods.iter().enumerate() {
            acc += m;
            if unit == k + 1 {
                return acc;
            }
        }
        acc + self.trailing
    }

    /// The unit index of the method at file position `pos`.
    #[must_use]
    pub fn method_unit(pos: usize) -> usize {
        pos + 1
    }
}

/// Builds the transfer units for every class of a restructured
/// application.
///
/// * `partitions` — `Some` enables §7.3 global-data partitioning: the
///   prelude shrinks to the needed-first slice, each method unit gains
///   its GMD chunk, and unused globals trail.
/// * `delimiter` — per-method delimiter bytes ([`DELIMITER_BYTES`] for
///   non-strict transfer, 0 to model the unmodified format).
#[must_use]
pub fn class_units(
    app: &Application,
    restructured: &RestructuredApp,
    partitions: Option<&[ClassPartition]>,
    delimiter: u64,
) -> Vec<ClassUnits> {
    let scale = app.wire_scale;
    restructured
        .classes
        .iter()
        .zip(&restructured.layouts)
        .enumerate()
        .map(|(ci, (class, layout))| {
            let method_base: Vec<u64> = class
                .methods
                .iter()
                .map(|m| scale.apply(m.local_data_size()) + scale.apply(m.code_size()) + delimiter)
                .collect();
            match partitions {
                None => ClassUnits {
                    prelude: scale.apply(class.global_data_size()),
                    methods: method_base,
                    trailing: 0,
                },
                Some(parts) => {
                    let p = &parts[ci];
                    let gmd = p.gmd_sizes(&layout.file_order);
                    ClassUnits {
                        prelude: scale.apply(u32::try_from(p.needed_first).expect("fits")),
                        methods: method_base
                            .iter()
                            .zip(&gmd)
                            .map(|(&b, &g)| b + scale.apply(u32::try_from(g).expect("fits")))
                            .collect(),
                        trailing: scale.apply(u32::try_from(p.unused).expect("fits")),
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_reorder::{partition_app, restructure, static_first_use, FirstUseOrder};

    fn setup() -> (Application, RestructuredApp, Vec<ClassPartition>) {
        let app = nonstrict_workloads::hanoi::build();
        let order: FirstUseOrder = static_first_use(&app.program);
        let r = restructure(&app, &order);
        let parts = partition_app(&app);
        (app, r, parts)
    }

    #[test]
    fn unpartitioned_units_cover_the_file_plus_delimiters() {
        let (app, r, _) = setup();
        let units = class_units(&app, &r, None, DELIMITER_BYTES);
        for (ci, u) in units.iter().enumerate() {
            let file = app.wire_scale.apply(app.classes[ci].total_size());
            let delims = DELIMITER_BYTES * app.classes[ci].methods.len() as u64;
            // method local+code are scaled per part; allow ±1 byte per
            // method of rounding versus scaling the whole file at once
            let total = u.total();
            let slack = 1 + app.classes[ci].methods.len() as u64 * 2;
            assert!(
                total >= file && total <= file + delims + slack,
                "class {ci}: units {total} vs file {file} + delims {delims}"
            );
            assert_eq!(u.trailing, 0);
        }
    }

    #[test]
    fn partitioned_units_conserve_global_bytes() {
        let (app, r, parts) = setup();
        let whole = class_units(&app, &r, None, 0);
        let split = class_units(&app, &r, Some(&parts), 0);
        for (ci, (w, s)) in whole.iter().zip(&split).enumerate() {
            // prelude shrinks, per-method grows, trailing appears; totals
            // match up to per-unit rounding of the wire scale
            assert!(s.prelude < w.prelude, "class {ci} prelude must shrink");
            let slack = 2 * (s.methods.len() as u64 + 2);
            let (a, b) = (w.total(), s.total());
            assert!(a.abs_diff(b) <= slack, "class {ci}: {a} vs {b}");
        }
    }

    #[test]
    fn boundaries_are_monotone_and_end_at_total() {
        let (app, r, parts) = setup();
        let units = class_units(&app, &r, Some(&parts), DELIMITER_BYTES);
        for u in &units {
            let mut last = 0;
            for i in 0..u.unit_count() {
                let b = u.boundary(i);
                assert!(b >= last);
                last = b;
            }
            assert_eq!(last, u.total());
        }
    }

    #[test]
    fn method_unit_indexing() {
        assert_eq!(ClassUnits::method_unit(0), 1);
        assert_eq!(ClassUnits::method_unit(5), 6);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        // Corruption is detected: flipping one bit changes the CRC.
        assert_ne!(crc32(b"123456789"), crc32(b"123456788"));
    }

    #[test]
    fn checksum_overhead_skips_empty_units() {
        let mut units = vec![
            ClassUnits {
                prelude: 100,
                methods: vec![40, 0, 60],
                trailing: 0,
            },
            ClassUnits {
                prelude: 0,
                methods: vec![],
                trailing: 8,
            },
        ];
        add_checksum_overhead(&mut units);
        assert_eq!(units[0].prelude, 100 + CHECKSUM_BYTES);
        assert_eq!(
            units[0].methods,
            vec![40 + CHECKSUM_BYTES, 0, 60 + CHECKSUM_BYTES]
        );
        assert_eq!(
            units[0].trailing, 0,
            "empty trailing slot carries no trailer"
        );
        assert_eq!(units[1].prelude, 0);
        assert_eq!(units[1].trailing, 8 + CHECKSUM_BYTES);
    }
}
