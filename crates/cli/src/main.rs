//! The `nonstrict` binary: see [`nonstrict_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nonstrict_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
