//! # nonstrict-cli
//!
//! The `nonstrict` command-line tool: inspect benchmark class files,
//! compute first-use orderings, partition global data, and simulate
//! remote execution — the whole pipeline from one binary.
//!
//! ```text
//! nonstrict list
//! nonstrict inspect jess --class 3
//! nonstrict disasm testdes --class 1 --method 5
//! nonstrict order jhlzip --source scg
//! nonstrict partition bit
//! nonstrict simulate jess --link modem --ordering train --transfer interleaved --partitioned
//! ```
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); [`run`] is the testable entry point, returning the text
//! it would print.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

use nonstrict_bytecode::{Application, Input};
use nonstrict_classfile::{Attribute, GlobalDataBreakdown};
use nonstrict_core::fleet::{run_fleet, AdmissionSettings, FleetClient, FleetSpec};
use nonstrict_core::metrics::{cycles_to_seconds, normalized_percent, queue_share_percent};
use nonstrict_core::model::{
    ByzantineConfig, DataLayout, ExecutionModel, FaultConfig, OrderingSource, OutageConfig,
    ReplicaConfig, SimConfig, TransferPolicy, VerifyMode,
};
use nonstrict_core::sim::{RunOutcome, Session};
use nonstrict_netsim::byzantine::ByzantineMode;
use nonstrict_netsim::{Link, ShedAction, ShedLadder};
use nonstrict_reorder::{partition_app, static_first_use, static_first_use_plain};

/// A CLI failure: a message and the exit code to use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<nonstrict_store::StoreError> for CliError {
    fn from(e: nonstrict_store::StoreError) -> CliError {
        CliError {
            message: e.to_string(),
            code: 1,
        }
    }
}

/// Writes `bytes` to `path` with the durable-store discipline: the
/// containing directory is created, the bytes land in a temp file that
/// is fsynced and atomically renamed into place, and the directory is
/// fsynced too — a crash mid-export leaves either the old journal or
/// the new one, never a torn in-between.
fn write_journal_atomic(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    let p = std::path::Path::new(path);
    let dir = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => std::path::Path::new("."),
    };
    let name = p
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| CliError::usage(format!("--journal {path}: not a valid file name")))?;
    let fs = nonstrict_store::RealFs::open(dir)?;
    use nonstrict_store::Vfs as _;
    fs.write_atomic(name, bytes)?;
    Ok(())
}

/// The usage text.
pub const USAGE: &str = "\
nonstrict — non-strict execution for mobile programs

USAGE:
  nonstrict list
  nonstrict inspect  <benchmark> [--class N]
  nonstrict disasm   <benchmark> [--class N] [--method M]
  nonstrict order    <benchmark> [--source scg|plain|train|test]
  nonstrict partition <benchmark>
  nonstrict simulate <benchmark> [--link t1|modem] [--ordering scg|train|test|source]
                                 [--transfer strict|par1|par2|par4|parinf|interleaved]
                                 [--partitioned] [--strict-execution]
                                 [--verify off|stream|full]
                                 [--fault-seed N] [--loss PPM] [--drop PPM]
                                 [--corrupt PPM] [--droop PPM] [--semantic PPM]
                                 [--outage-seed N] [--outage-rate PPM] [--outage-cycles N]
                                 [--journal PATH] [--interrupt CYCLE]
                                 [--replicas N] [--replica-spread PPM]
                                 [--hedge-deadline CYCLES]
                                 [--byzantine-mirrors N] [--byzantine-seed N]
                                 [--byzantine-mode stale-epoch|equivocate|collude]
                                 [--audit-rate PPM]
                                 [--clients N] [--client-spread PPM]
                                 [--admit-rate N] [--shed-ladder off|H,S,J]
  nonstrict timeline <benchmark> [--link t1|modem] [--ordering scg|train|test]

Outage/resume: --interrupt kills the session at a base cycle and writes
the checkpoint journal to --journal PATH; rerunning with --journal alone
resumes from it (torn journals fail closed to a strict restart).

Replica sets: --replicas N downloads from N mirrors (1..=8) with
health-scored routing and hedged demand fetches; --replica-spread sets
the per-mirror bandwidth droop (ppm) and --hedge-deadline the stall
budget before a duplicate fetch goes to the runner-up mirror. Both
tuning flags require --replicas 2 or more; --replicas 1 is byte-
identical to no replica flags at all.

Byzantine mirrors: --byzantine-mirrors N turns the N highest-numbered
mirrors of the replica set dishonest (at most --replicas - 1, so the
origin-pinned manifest always has an honest source to fail over to);
--byzantine-mode picks how they misbehave (stale-epoch: keep serving
the pre-restructure layout past the epoch fence; equivocate: serve
divergent bytes the per-unit manifest digest catches at the unit
boundary; collude: forge digests so only cross-mirror audits catch
them); --byzantine-seed seeds the misbehavior plan and --audit-rate
sets the cross-mirror audit sampling rate in ppm of delivered units.
--byzantine-mirrors 0 is byte-identical to no byzantine flags at all.

Fleets: --clients N runs N concurrent sessions (the named benchmark
first, the rest cycling through the suite) behind one shared T1 egress
pipe under deficit-round-robin fair sharing, and reports a per-client
outcome table. --client-spread sets the per-client access-link
bandwidth droop (ppm, client i is i*PPM slower); --admit-rate the
token-bucket admission rate (sessions per ~20 ms period, 0 disables);
--shed-ladder H,S,J the queue-delay rungs (cycles) at which a client's
hedges are dropped, its transfer is forced strict, or it is shed to a
journal checkpoint and resumed. The tuning flags require --clients 2
or more; --clients 1 is byte-identical to no fleet flags at all, and
--clients does not combine with --interrupt/--journal (the shed
ladder journals and resumes internally).

BENCHMARKS: bit, hanoi, javacup, jess, jhlzip, testdes";

/// Runs the CLI on `args` (without the program name), returning the
/// output text.
///
/// # Errors
///
/// [`CliError`] with a message and exit code on bad usage or benchmark
/// faults.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage(USAGE));
    };
    match command.as_str() {
        "list" => cmd_list(),
        "inspect" => cmd_inspect(&parse_flags(args)?),
        "disasm" => cmd_disasm(&parse_flags(args)?),
        "order" => cmd_order(&parse_flags(args)?),
        "partition" => cmd_partition(&parse_flags(args)?),
        "simulate" => cmd_simulate(&parse_flags(args)?),
        "timeline" => cmd_timeline(&parse_flags(args)?),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

/// Parsed command arguments: one positional benchmark plus `--key value`
/// and `--flag` options.
#[derive(Debug, Default)]
struct Flags {
    benchmark: Option<String>,
    options: std::collections::HashMap<String, String>,
}

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    fn app(&self) -> Result<Application, CliError> {
        let name = self
            .benchmark
            .as_deref()
            .ok_or_else(|| CliError::usage("missing <benchmark> argument"))?;
        nonstrict_workloads::build_by_name(name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown benchmark {name:?}; expected one of {:?}",
                nonstrict_workloads::BENCHMARK_NAMES
            ))
        })
    }

    fn usize_opt(&self, key: &str) -> Result<Option<usize>, CliError> {
        self.num_opt(key)
    }

    fn num_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("--{key} expects a number, got {v:?}"))),
        }
    }

    /// The fault configuration from `--fault-seed/--loss/--drop/--corrupt/
    /// --droop/--semantic`, or `None` when no fault flag was given. Rates
    /// are parts-per-million of fault probability per delivery attempt.
    /// Spellings and parsing live in the `nonstrict-wire` knob
    /// vocabulary, so the simulator, the wire server, and the loadgen
    /// accept identical fault flags.
    fn fault_config(&self) -> Result<Option<FaultConfig>, CliError> {
        let mut knobs = nonstrict_wire::FaultKnobs::default();
        let mut any = false;
        for key in nonstrict_wire::FaultKnobs::KEYS {
            if let Some(value) = self.get(key) {
                knobs
                    .set(key, value)
                    .map_err(|e| CliError::usage(e.to_string()))?;
                any = true;
            }
        }
        if !any {
            return Ok(None);
        }
        let mut fc = FaultConfig::seeded(knobs.seed);
        fc.loss_pm = knobs.loss_pm;
        fc.drop_pm = knobs.drop_pm;
        fc.corrupt_pm = knobs.corrupt_pm;
        fc.droop_pm = knobs.droop_pm;
        fc.semantic_pm = knobs.semantic_pm;
        Ok(Some(fc))
    }

    /// The outage configuration from `--outage-seed/--outage-rate/
    /// --outage-cycles`, or `None` when no outage flag was given. The
    /// rate is parts-per-million of outage probability per base-time
    /// draw period; `--outage-cycles` pins the loss duration exactly
    /// (min = max), leaving the seeded defaults otherwise.
    fn outage_config(&self) -> Result<Option<OutageConfig>, CliError> {
        let seed: Option<u64> = self.num_opt("outage-seed")?;
        let rate: Option<u32> = self.num_opt("outage-rate")?;
        let cycles: Option<u64> = self.num_opt("outage-cycles")?;
        if seed.is_none() && rate.is_none() && cycles.is_none() {
            return Ok(None);
        }
        let mut oc = OutageConfig::seeded(seed.unwrap_or(0));
        oc.rate_pm = rate.unwrap_or(0);
        if let Some(c) = cycles {
            oc.min_cycles = c;
            oc.max_cycles = c;
        }
        Ok(Some(oc))
    }

    /// The replica-set configuration from `--replicas/--replica-spread/
    /// --hedge-deadline`, or `None` when no replica flag was given. The
    /// tuning flags are meaningless on a single origin, so giving either
    /// without `--replicas 2` or more is a usage error rather than a
    /// silently ignored knob.
    fn replica_config(&self) -> Result<Option<ReplicaConfig>, CliError> {
        let replicas: Option<u32> = self.num_opt("replicas")?;
        let spread: Option<u32> = self.num_opt("replica-spread")?;
        let deadline: Option<u64> = self.num_opt("hedge-deadline")?;
        let Some(n) = replicas else {
            if let Some(flag) = [
                spread.map(|_| "--replica-spread"),
                deadline.map(|_| "--hedge-deadline"),
            ]
            .into_iter()
            .flatten()
            .next()
            {
                return Err(CliError::usage(format!(
                    "{flag} only makes sense with --replicas 2 or more"
                )));
            }
            return Ok(None);
        };
        if !(1..=ReplicaConfig::MAX_REPLICAS).contains(&n) {
            return Err(CliError::usage(format!(
                "--replicas expects 1..={}, got {n}",
                ReplicaConfig::MAX_REPLICAS
            )));
        }
        if n < 2 {
            if let Some(flag) = [
                spread.map(|_| "--replica-spread"),
                deadline.map(|_| "--hedge-deadline"),
            ]
            .into_iter()
            .flatten()
            .next()
            {
                return Err(CliError::usage(format!(
                    "{flag} only makes sense with --replicas 2 or more"
                )));
            }
        }
        let seed: Option<u64> = self.num_opt("fault-seed")?;
        let mut rc = ReplicaConfig::seeded(seed.unwrap_or(0));
        rc.replicas = n;
        if let Some(s) = spread {
            rc.spread_pm = s;
        }
        if let Some(d) = deadline {
            rc.hedge_deadline_cycles = d;
        }
        Ok(Some(rc))
    }

    /// The Byzantine-fleet settings from `--byzantine-mirrors/
    /// --byzantine-mode/--byzantine-seed/--audit-rate`, or `None` when
    /// no mirror misbehaves. The flags model mirrors subverting a
    /// replica set, so all of them require `--replicas 2` or more, and
    /// at least one mirror must stay honest (the origin-pinned
    /// manifest's refetch path needs somewhere to fail over to).
    fn byzantine_config(
        &self,
        replicas: Option<&ReplicaConfig>,
    ) -> Result<Option<ByzantineConfig>, CliError> {
        let mirrors: Option<u32> = self.num_opt("byzantine-mirrors")?;
        let seed: Option<u64> = self.num_opt("byzantine-seed")?;
        let mode_arg = self.get("byzantine-mode");
        let audit: Option<u32> = self.num_opt("audit-rate")?;
        let tuning_flag = [
            seed.map(|_| "--byzantine-seed"),
            mode_arg.map(|_| "--byzantine-mode"),
            audit.map(|_| "--audit-rate"),
        ]
        .into_iter()
        .flatten()
        .next();
        let Some(n) = mirrors else {
            if let Some(flag) = tuning_flag {
                return Err(CliError::usage(format!(
                    "{flag} only makes sense with --byzantine-mirrors 1 or more"
                )));
            }
            return Ok(None);
        };
        let fleet = replicas.map_or(0, |rc| rc.replicas);
        if fleet < 2 {
            return Err(CliError::usage(
                "--byzantine-mirrors needs a replica set to subvert: give --replicas 2 or more",
            ));
        }
        if n >= fleet {
            return Err(CliError::usage(format!(
                "--byzantine-mirrors expects at most --replicas - 1 (at least one honest mirror), \
                 got {n} of {fleet}"
            )));
        }
        if n == 0 {
            // An explicitly honest fleet: the flag was given, so the
            // tuning knobs are legal, but the config normalizes away.
            return Ok(Some(ByzantineConfig::seeded(seed.unwrap_or(0))));
        }
        let mode = match mode_arg {
            None => ByzantineMode::Equivocate,
            Some(v) => ByzantineMode::parse(v).ok_or_else(|| {
                CliError::usage(format!(
                    "unknown byzantine mode {v:?}; use stale-epoch|equivocate|collude"
                ))
            })?,
        };
        let audit_rate_pm = audit.unwrap_or(ByzantineConfig::DEFAULT_AUDIT_RATE_PM);
        if audit_rate_pm > 1_000_000 {
            return Err(CliError::usage(format!(
                "--audit-rate is in ppm of delivered units (0..=1000000), got {audit_rate_pm}"
            )));
        }
        let mut bc = ByzantineConfig::seeded(seed.unwrap_or(0));
        bc.mirrors = n;
        bc.mode = mode;
        bc.audit_rate_pm = audit_rate_pm;
        Ok(Some(bc))
    }

    /// The fleet settings from `--clients/--client-spread/--admit-rate/
    /// --shed-ladder`, or `None` when no fleet flag was given. The
    /// tuning flags are meaningless without contention, so giving any
    /// without `--clients 2` or more is a usage error rather than a
    /// silently ignored knob.
    fn fleet_settings(&self) -> Result<Option<FleetSettings>, CliError> {
        let clients: Option<usize> = self.num_opt("clients")?;
        let spread: Option<u32> = self.num_opt("client-spread")?;
        let admit: Option<u32> = self.num_opt("admit-rate")?;
        let ladder_arg = self.get("shed-ladder");
        let tuning_flag = [
            spread.map(|_| "--client-spread"),
            admit.map(|_| "--admit-rate"),
            ladder_arg.map(|_| "--shed-ladder"),
        ]
        .into_iter()
        .flatten()
        .next();
        let Some(n) = clients else {
            if let Some(flag) = tuning_flag {
                return Err(CliError::usage(format!(
                    "{flag} only makes sense with --clients 2 or more"
                )));
            }
            return Ok(None);
        };
        if !(1..=MAX_FLEET_CLIENTS).contains(&n) {
            return Err(CliError::usage(format!(
                "--clients expects 1..={MAX_FLEET_CLIENTS}, got {n}"
            )));
        }
        if n < 2 {
            if let Some(flag) = tuning_flag {
                return Err(CliError::usage(format!(
                    "{flag} only makes sense with --clients 2 or more"
                )));
            }
        }
        let ladder = match ladder_arg {
            None | Some("off") => None,
            Some(v) => {
                let rungs: Vec<u64> = v
                    .split(',')
                    .map(|p| p.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| {
                        CliError::usage(format!(
                            "--shed-ladder expects off or three cycle counts H,S,J, got {v:?}"
                        ))
                    })?;
                let &[h, s, j] = rungs.as_slice() else {
                    return Err(CliError::usage(format!(
                        "--shed-ladder expects off or three cycle counts H,S,J, got {v:?}"
                    )));
                };
                Some(
                    ShedLadder::new(h, s, j)
                        .map_err(|e| CliError::usage(format!("--shed-ladder: {e}")))?,
                )
            }
        };
        Ok(Some(FleetSettings {
            clients: n,
            spread_pm: spread.unwrap_or(0),
            admit_rate: admit.unwrap_or(0),
            ladder,
        }))
    }

    /// The verification mode from `--verify`, defaulting to `off` so a
    /// plain `simulate` reproduces the paper's verification-free numbers.
    fn verify_mode(&self) -> Result<VerifyMode, CliError> {
        match self.get("verify") {
            None => Ok(VerifyMode::Off),
            Some(v) => VerifyMode::parse(v).ok_or_else(|| {
                CliError::usage(format!("unknown verify mode {v:?}; use off|stream|full"))
            }),
        }
    }
}

/// Hard cap on `--clients`, matching what the per-client outcome table
/// can sensibly render.
const MAX_FLEET_CLIENTS: usize = 64;

/// Parsed fleet flags: `--clients` plus its tuning knobs.
#[derive(Debug, Clone, Copy)]
struct FleetSettings {
    /// Fleet size (`--clients`).
    clients: usize,
    /// Per-client access-link bandwidth droop in ppm (`--client-spread`):
    /// client `i`'s cycles-per-byte is the base link's scaled by
    /// `1 + i * spread_pm / 1e6`, the same arithmetic as replica spread.
    spread_pm: u32,
    /// Token-bucket admission rate (`--admit-rate`); 0 disables.
    admit_rate: u32,
    /// Load-shed ladder rungs (`--shed-ladder H,S,J`); `None` serves
    /// every client unmodified.
    ladder: Option<ShedLadder>,
}

/// Boolean `--x` switches; anything not listed here or in [`VALUE_KEYS`]
/// is rejected so a typo'd flag can't be silently ignored.
const BOOL_KEYS: [&str; 2] = ["partitioned", "strict-execution"];

/// Keys that take a value.
const VALUE_KEYS: [&str; 29] = [
    "class",
    "method",
    "source",
    "link",
    "ordering",
    "transfer",
    "verify",
    "fault-seed",
    "loss",
    "drop",
    "corrupt",
    "droop",
    "semantic",
    "outage-seed",
    "outage-rate",
    "outage-cycles",
    "journal",
    "interrupt",
    "replicas",
    "replica-spread",
    "hedge-deadline",
    "byzantine-seed",
    "byzantine-mirrors",
    "byzantine-mode",
    "audit-rate",
    "clients",
    "client-spread",
    "admit-rate",
    "shed-ladder",
];

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut flags = Flags::default();
    let mut it = args.iter().skip(1).peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if VALUE_KEYS.contains(&key) {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("--{key} needs a value")))?;
                flags.options.insert(key.to_owned(), v.clone());
            } else if BOOL_KEYS.contains(&key) {
                flags.options.insert(key.to_owned(), String::new());
            } else {
                return Err(CliError::usage(format!("unknown flag --{key}")));
            }
        } else if flags.benchmark.is_none() {
            flags.benchmark = Some(a.clone());
        } else {
            return Err(CliError::usage(format!("unexpected argument {a:?}")));
        }
    }
    Ok(flags)
}

fn cmd_list() -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>8} {:>9} {:>6}",
        "benchmark", "classes", "methods", "size KB", "CPI"
    );
    for app in nonstrict_workloads::build_all() {
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>8} {:>9.1} {:>6}",
            app.name,
            app.classes.len(),
            app.program.method_count(),
            app.total_size() as f64 / 1024.0,
            app.cpi
        );
    }
    Ok(out)
}

fn cmd_inspect(flags: &Flags) -> Result<String, CliError> {
    let app = flags.app()?;
    let mut out = String::new();
    match flags.usize_opt("class")? {
        Some(ci) => {
            let class = app.classes.get(ci).ok_or_else(|| {
                CliError::usage(format!(
                    "class {ci} out of range (0..{})",
                    app.classes.len()
                ))
            })?;
            let name = class.name().map_err(|e| CliError::usage(e.to_string()))?;
            let _ = writeln!(out, "class {name} ({} bytes)", class.total_size());
            let _ = writeln!(
                out,
                "  global data: {} bytes ({} pool entries)",
                class.global_data_size(),
                class.constant_pool.len()
            );
            let b = GlobalDataBreakdown::of(class);
            let [cpool, field, attrib, intfc] = b.section_percentages();
            let _ = writeln!(
                out,
                "  breakdown: cpool {cpool:.1}%  fields {field:.1}%  attribs {attrib:.1}%  interfaces {intfc:.1}%"
            );
            for (mi, m) in class.methods.iter().enumerate() {
                let mname = class.method_name(mi).unwrap_or("?");
                let _ = writeln!(
                    out,
                    "  method {mi:>3}: {mname:<28} code {:>5}B  local data {:>5}B",
                    m.code_size(),
                    m.local_data_size()
                );
            }
        }
        None => {
            let _ = writeln!(out, "{} — {} classes", app.name, app.classes.len());
            for (ci, class) in app.classes.iter().enumerate() {
                let name = class.name().map_err(|e| CliError::usage(e.to_string()))?;
                let _ = writeln!(
                    out,
                    "  {ci:>3}: {:<40} {:>7}B  ({} methods, {}B global)",
                    name.0,
                    class.total_size(),
                    class.methods.len(),
                    class.global_data_size()
                );
            }
        }
    }
    Ok(out)
}

fn cmd_disasm(flags: &Flags) -> Result<String, CliError> {
    let app = flags.app()?;
    let ci = flags.usize_opt("class")?.unwrap_or(0);
    let class = app
        .classes
        .get(ci)
        .ok_or_else(|| CliError::usage(format!("class {ci} out of range")))?;
    let mut out = String::new();
    let targets: Vec<usize> = match flags.usize_opt("method")? {
        Some(mi) if mi < class.methods.len() => vec![mi],
        Some(mi) => return Err(CliError::usage(format!("method {mi} out of range"))),
        None => (0..class.methods.len()).collect(),
    };
    for mi in targets {
        let m = &class.methods[mi];
        let name = class.method_name(mi).unwrap_or("?");
        let _ = writeln!(out, "method {mi}: {name}");
        if let Some(Attribute::Code {
            code,
            max_stack,
            max_locals,
            ..
        }) = m.code_attribute()
        {
            let _ = writeln!(
                out,
                "  stack={max_stack}, locals={max_locals}, {} bytes",
                code.len()
            );
            let text =
                nonstrict_bytecode::listing(code, &class.constant_pool).map_err(|e| CliError {
                    message: e.to_string(),
                    code: 1,
                })?;
            out.push_str(&text);
        } else {
            let _ = writeln!(out, "  (no code)");
        }
        out.push('\n');
    }
    Ok(out)
}

fn cmd_order(flags: &Flags) -> Result<String, CliError> {
    let app = flags.app()?;
    let source = flags.get("source").unwrap_or("scg");
    let order = match source {
        "scg" => static_first_use(&app.program),
        "plain" => static_first_use_plain(&app.program),
        "train" | "test" => {
            let input = if source == "train" {
                Input::Train
            } else {
                Input::Test
            };
            let collected = nonstrict_profile::collect(&app, input).map_err(|e| CliError {
                message: e.to_string(),
                code: 1,
            })?;
            nonstrict_reorder::FirstUseOrder::from_profile(
                &app.program,
                &collected.profile,
                &static_first_use(&app.program),
            )
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown ordering source {other:?}; use scg|plain|train|test"
            )))
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "{} first-use order ({source}):", app.name);
    for (i, &m) in order.order().iter().enumerate() {
        let class = &app.program.class(m.class);
        let method = &app.program.method(m);
        let _ = writeln!(out, "{:>5}. {}::{}", i + 1, class.name, method.name);
    }
    Ok(out)
}

fn cmd_partition(flags: &Flags) -> Result<String, CliError> {
    let app = flags.app()?;
    let parts = partition_app(&app);
    let summary = nonstrict_reorder::partition::summarize(&app, &parts);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: local {:.1} KB, global {:.1} KB — needed-first {:.1}%, in-methods {:.1}%, unused {:.1}%",
        app.name,
        summary.local_kb,
        summary.global_kb,
        summary.pct_needed_first,
        summary.pct_in_methods,
        summary.pct_unused
    );
    let _ = writeln!(
        out,
        "{:<42} {:>9} {:>12} {:>11} {:>8}",
        "class", "global B", "needed-first", "in-methods", "unused"
    );
    for (ci, p) in parts.iter().enumerate() {
        let name = app.classes[ci]
            .name()
            .map_err(|e| CliError::usage(e.to_string()))?;
        let _ = writeln!(
            out,
            "{:<42} {:>9} {:>12} {:>11} {:>8}",
            name.0, p.global_total, p.needed_first, p.in_methods, p.unused
        );
    }
    Ok(out)
}

/// Parses the `--link` flag (default `modem`) through the netsim
/// crate's canonical name table.
fn parse_link(flags: &Flags) -> Result<Link, CliError> {
    let name = flags.get("link").unwrap_or("modem");
    Link::by_name(name).ok_or_else(|| {
        CliError::usage(nonstrict_wire::ConfigError::UnknownLink(name.to_owned()).to_string())
    })
}

/// Parses the `--ordering` flag (default `scg`) through the wire
/// crate's ordering vocabulary — the same spellings and codes a Hello
/// frame carries to `paper serve`.
fn parse_ordering(flags: &Flags) -> Result<OrderingSource, CliError> {
    let name = flags.get("ordering").unwrap_or("scg");
    let code =
        nonstrict_wire::config::ordering_code(name).map_err(|e| CliError::usage(e.to_string()))?;
    nonstrict_core::ordering_from_wire(code)
        .ok_or_else(|| CliError::usage(format!("ordering {name:?} has no simulator source")))
}

fn cmd_simulate(flags: &Flags) -> Result<String, CliError> {
    let app = flags.app()?;
    let link = parse_link(flags)?;
    let ordering = parse_ordering(flags)?;
    let transfer = match flags.get("transfer").unwrap_or("par4") {
        "strict" => TransferPolicy::Strict,
        "par1" => TransferPolicy::Parallel { limit: 1 },
        "par2" => TransferPolicy::Parallel { limit: 2 },
        "par4" => TransferPolicy::Parallel { limit: 4 },
        "parinf" => TransferPolicy::Parallel { limit: usize::MAX },
        "interleaved" => TransferPolicy::Interleaved,
        other => {
            return Err(CliError::usage(format!(
                "unknown transfer {other:?}; use strict|par1|par2|par4|parinf|interleaved"
            )))
        }
    };
    let config = SimConfig {
        link,
        ordering,
        transfer,
        data_layout: if flags.has("partitioned") {
            DataLayout::Partitioned
        } else {
            DataLayout::Whole
        },
        execution: if flags.has("strict-execution") {
            ExecutionModel::Strict
        } else {
            ExecutionModel::NonStrict
        },
        faults: flags.fault_config()?,
        verify: flags.verify_mode()?,
        outages: flags.outage_config()?,
        replicas: flags.replica_config()?,
        byzantine: None,
    };
    let config = SimConfig {
        byzantine: flags.byzantine_config(config.replicas.as_ref())?,
        ..config
    };

    if let Some(fs) = flags.fleet_settings()? {
        if flags.has("interrupt") || flags.has("journal") {
            return Err(CliError::usage(
                "--clients does not combine with --interrupt/--journal \
                 (the shed ladder journals and resumes internally)",
            ));
        }
        if fs.clients >= 2 {
            return simulate_fleet(flags, app, &config, &fs);
        }
        // A fleet of one never queues: the single-client path below is
        // bit-identical (asserted in core::fleet's tests), so fall
        // through rather than render a one-row outcome table.
    }

    let session = Session::new(app).map_err(|e| CliError {
        message: e.to_string(),
        code: 1,
    })?;
    let base = session.simulate(Input::Test, &SimConfig::strict(link));
    let mut prelude = String::new();
    let r = if let Some(at) = flags.num_opt::<u64>("interrupt")? {
        let path = flags.get("journal").ok_or_else(|| {
            CliError::usage("--interrupt needs --journal PATH to store the checkpoint")
        })?;
        match session.run_until(Input::Test, &config, at) {
            RunOutcome::Interrupted(bytes) => {
                write_journal_atomic(path, &bytes)?;
                return Ok(format!(
                    "{}: session killed at base cycle {at}; checkpoint journal ({} bytes) written to {path}\n  resume by rerunning with --journal {path} (without --interrupt)\n",
                    session.app.name,
                    bytes.len()
                ));
            }
            RunOutcome::Finished(r) => {
                let _ = writeln!(
                    prelude,
                    "  (run finished at {} cycles, before the --interrupt point {at}; no journal written)",
                    r.total_cycles
                );
                *r
            }
        }
    } else if let Some(path) = flags.get("journal") {
        let bytes = std::fs::read(path).map_err(|e| CliError {
            message: format!("cannot read journal {path}: {e}"),
            code: 1,
        })?;
        let r = session.resume(
            Input::Test,
            &config,
            &bytes,
            OutageConfig::DEFAULT_NEGOTIATION_CYCLES,
        );
        let _ = writeln!(
            prelude,
            "  resumed from journal {path} ({} bytes): {}",
            bytes.len(),
            if r.outage.failed_closed {
                "FAIL-CLOSED — journal untrusted, restarted under strict execution"
            } else if r.outage.refetched_classes > 0 {
                "resumed with targeted refetch of stale classes"
            } else {
                "resumed cleanly"
            }
        );
        r
    } else {
        session.simulate(Input::Test, &config)
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} over {} — {:?}",
        session.app.name, link.name, config
    );
    out.push_str(&prelude);
    let _ = writeln!(
        out,
        "  total:              {:>12} cycles ({:.2} s on the 500MHz Alpha)",
        r.total_cycles,
        cycles_to_seconds(r.total_cycles)
    );
    let _ = writeln!(
        out,
        "  normalized:         {:>11.1}% of the strict baseline ({} cycles)",
        normalized_percent(r.total_cycles, base.total_cycles),
        base.total_cycles
    );
    let _ = writeln!(
        out,
        "  invocation latency: {:>12} cycles ({:.2} s; strict {:.2} s)",
        r.invocation_latency,
        cycles_to_seconds(r.invocation_latency),
        cycles_to_seconds(base.invocation_latency)
    );
    let _ = writeln!(
        out,
        "  stalls:             {:>12} ({} cycles)",
        r.stalls, r.stall_cycles
    );
    let _ = writeln!(
        out,
        "  linker:             {} classes verified, {} methods verified, {} resolved",
        r.link_stats.classes_verified, r.link_stats.methods_verified, r.link_stats.methods_resolved
    );
    if config.verify != VerifyMode::Off {
        let _ = writeln!(
            out,
            "  verification:       {:>12} cycles ({} mode, {:.2}% of total)",
            r.verify_cycles,
            config.verify.label(),
            nonstrict_core::metrics::verify_share_percent(r.verify_cycles, r.total_cycles)
        );
    }
    if config.active_faults().is_some() {
        let f = &r.faults;
        let _ = writeln!(
            out,
            "  fault recovery:     {:>12} cycles ({} retries: {} lost-timeout, {} corrupt, {} quarantined, {} drops)",
            f.recovery_cycles,
            f.retries,
            f.retries - f.corrupted - f.quarantined - f.drops,
            f.corrupted,
            f.quarantined,
            f.drops
        );
        let _ = writeln!(
            out,
            "  degradation:        {} classes demoted to strict{}; run {}",
            f.degraded_classes,
            if f.session_degraded {
                " (session fell back to strict)"
            } else {
                ""
            },
            if f.completed {
                "completed"
            } else {
                "incomplete"
            }
        );
        if f.forced > 0 {
            let _ = writeln!(
                out,
                "  WARNING: {} deliveries exhausted the retry cap and were forced through — the link is at the protocol's survivable edge",
                f.forced
            );
        }
    }
    if r.outage.outages > 0 || r.outage.failed_closed || config.active_outages().is_some() {
        let o = &r.outage;
        let _ = writeln!(
            out,
            "  outages:            {} survived, {} journal resumes, {} classes refetched{}",
            o.outages,
            o.resumes,
            o.refetched_classes,
            if o.failed_closed {
                " (FAIL-CLOSED restart)"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "  resume cost:        {:>12} cycles ({:.2}% of total)",
            o.resume_cycles,
            nonstrict_core::metrics::resume_share_percent(o.resume_cycles, r.total_cycles)
        );
    }
    if config.active_replicas().is_some() {
        let rep = &r.replica;
        let _ = writeln!(
            out,
            "  replica set:        {} mirrors, {} failovers, {} hedged fetches ({} won)",
            rep.replicas, rep.failovers, rep.hedges, rep.hedge_wins
        );
        let _ = writeln!(
            out,
            "  hedge cost:         {:>12} cycles ({:.2}% of total){}",
            rep.hedge_cycles,
            nonstrict_core::metrics::hedge_share_percent(rep.hedge_cycles, r.total_cycles),
            if rep.sole_survivor {
                " — SOLE SURVIVOR, session failed closed to strict"
            } else {
                ""
            }
        );
        if let Some(bc) = config.active_byzantine() {
            let ist = &r.integrity;
            let _ = writeln!(
                out,
                "  byzantine:          {} of {} mirrors dishonest ({}), audit rate {} ppm",
                bc.mirrors,
                rep.replicas,
                bc.mode.label(),
                bc.audit_rate_pm
            );
            let _ = writeln!(
                out,
                "  integrity:          {} manifest pins, {} digest checks, {} divergent units ({} undetected), {} audits ({} mismatched), {} quarantines",
                ist.manifest_pins,
                ist.digest_checks,
                ist.divergent_units,
                ist.undetected_units,
                ist.audits,
                ist.audit_mismatches,
                ist.quarantines
            );
            let _ = writeln!(
                out,
                "  integrity cost:     {:>12} cycles ({:.2}% of total); {} fence refetches, {} bytes refetched",
                ist.integrity_cycles,
                nonstrict_core::metrics::integrity_share_percent(
                    ist.integrity_cycles,
                    r.total_cycles
                ),
                ist.fence_refetches,
                ist.refetched_bytes
            );
        }
        let armed = config.active_byzantine().is_some();
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>7} {:>10} {:>8} {:>8} {:>6} {:>6}",
            "mirror", "health", "units", "bytes", "retries", "outages", "equiv", "state"
        );
        for (i, h) in rep.health.iter().take(rep.replicas as usize).enumerate() {
            let state = if h.quarantined && armed {
                "quar"
            } else if h.alive {
                "live"
            } else {
                "dead"
            };
            let _ = writeln!(
                out,
                "  {:<10} {:>7.1}% {:>7} {:>10} {:>8} {:>8} {:>6} {:>6}",
                format!("mirror {i}"),
                f64::from(h.health_ppm) / 10_000.0,
                h.units_served,
                h.bytes_served,
                h.retries,
                h.outage_hits,
                h.equivocations,
                state
            );
        }
    }
    Ok(out)
}

/// Client `i`'s access link under `--client-spread`: the base link's
/// cycles-per-byte scaled by `1 + i * spread_pm / 1e6` (the replica-
/// spread arithmetic, applied across clients instead of mirrors).
fn client_link(link: Link, spread_pm: u32, i: usize) -> Link {
    let cpb = u128::from(link.cycles_per_byte) * (1_000_000 + u128::from(spread_pm) * i as u128)
        / 1_000_000;
    Link {
        cycles_per_byte: u64::try_from(cpb).unwrap_or(u64::MAX),
        name: link.name,
    }
}

/// Runs `--clients N` concurrent sessions behind the shared egress pipe
/// and renders the fleet report: aggregate tail latency, admission and
/// shed-ladder outcomes, and the per-client outcome table.
fn simulate_fleet(
    flags: &Flags,
    first: Application,
    config: &SimConfig,
    fs: &FleetSettings,
) -> Result<String, CliError> {
    // Client 0 is the named benchmark; the rest cycle through the
    // suite in table order.
    let mut apps = vec![first];
    for i in 1..fs.clients {
        let name = nonstrict_workloads::BENCHMARK_NAMES
            [(i - 1) % nonstrict_workloads::BENCHMARK_NAMES.len()];
        apps.push(nonstrict_workloads::build_by_name(name).expect("suite benchmark builds"));
    }
    let sessions: Vec<Session> = apps
        .into_iter()
        .map(|app| {
            Session::new(app).map_err(|e| CliError {
                message: e.to_string(),
                code: 1,
            })
        })
        .collect::<Result<_, _>>()?;
    let clients: Vec<FleetClient> = sessions
        .iter()
        .enumerate()
        .map(|(i, s)| FleetClient {
            name: &s.app.name,
            session: s,
            link: client_link(config.link, fs.spread_pm, i),
            weight: 1,
        })
        .collect();
    let seed: u64 = flags.num_opt("fault-seed")?.unwrap_or(0);
    let spec = FleetSpec {
        admission: (fs.admit_rate > 0).then(|| AdmissionSettings::per_period(fs.admit_rate)),
        ladder: fs.ladder,
        ..FleetSpec::seeded(seed)
    };
    let fleet = run_fleet(&spec, &clients, Input::Test, config);

    let fleet_total: u64 = fleet.clients.iter().map(|c| c.result.total_cycles).sum();
    let queue = fleet.queue_cycles();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet of {} over shared {} egress — {:?}",
        fs.clients, fleet.egress.name, config
    );
    let _ = writeln!(
        out,
        "  tail latency:       p50 {} / p95 {} / p99 {} cycles ({:.2} s / {:.2} s / {:.2} s)",
        fleet.p50_total,
        fleet.p95_total,
        fleet.p99_total,
        cycles_to_seconds(fleet.p50_total),
        cycles_to_seconds(fleet.p95_total),
        cycles_to_seconds(fleet.p99_total)
    );
    let _ = writeln!(
        out,
        "  queue cycles:       {:>12} across the fleet ({:.2}% of fleet total)",
        queue,
        queue_share_percent(queue, fleet_total)
    );
    match spec.admission {
        Some(a) => {
            let _ = writeln!(
                out,
                "  admission:          {} per {}-cycle period — {} rejections before everyone got in",
                a.rate,
                a.period_cycles,
                fleet.rejections()
            );
        }
        None => {
            let _ = writeln!(
                out,
                "  admission:          disabled (every session admitted on arrival)"
            );
        }
    }
    match fs.ladder {
        Some(l) => {
            let _ = writeln!(
                out,
                "  shed ladder:        {} served, {} hedge-drops, {} forced strict, {} shed to journal (rungs {}/{}/{})",
                fleet.count(ShedAction::None),
                fleet.count(ShedAction::DropHedges),
                fleet.count(ShedAction::ForceStrict),
                fleet.count(ShedAction::Shed),
                l.drop_hedges,
                l.force_strict,
                l.shed
            );
        }
        None => {
            let _ = writeln!(
                out,
                "  shed ladder:        off (every client served unmodified)"
            );
        }
    }
    let _ = writeln!(
        out,
        "  {:<3} {:<10} {:<7} {:>9} {:>4} {:>14} {:>14} {:>14} {:<12}",
        "i", "benchmark", "link", "cyc/B", "rej", "admit-wait", "drr-queue", "total", "outcome"
    );
    for (i, c) in fleet.clients.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<3} {:<10} {:<7} {:>9} {:>4} {:>14} {:>14} {:>14} {:<12}",
            i,
            c.name,
            c.link.name,
            c.link.cycles_per_byte,
            c.rejections,
            c.admission_wait,
            c.drr_queue,
            c.result.total_cycles,
            c.action.label()
        );
    }
    Ok(out)
}

fn cmd_timeline(flags: &Flags) -> Result<String, CliError> {
    use nonstrict_netsim::{
        class_units, greedy_schedule, ParallelEngine, TransferEngine, Weights, DELIMITER_BYTES,
    };
    use nonstrict_reorder::restructure;

    let app = flags.app()?;
    let link = parse_link(flags)?;
    let order = match flags.get("ordering").unwrap_or("scg") {
        "scg" => static_first_use(&app.program),
        "train" | "test" => {
            let input = if flags.get("ordering") == Some("train") {
                Input::Train
            } else {
                Input::Test
            };
            let collected = nonstrict_profile::collect(&app, input).map_err(|e| CliError {
                message: e.to_string(),
                code: 1,
            })?;
            nonstrict_reorder::FirstUseOrder::from_profile(
                &app.program,
                &collected.profile,
                &static_first_use(&app.program),
            )
        }
        other => return Err(CliError::usage(format!("unknown ordering {other:?}"))),
    };
    let r = restructure(&app, &order);
    let units = class_units(&app, &r, None, DELIMITER_BYTES);
    let schedule = greedy_schedule(&app, &order, &units, &r.layouts, Weights::Static);
    let mut engine = ParallelEngine::new(link, units.clone(), &schedule, 4);
    let finish = engine.finish_time();

    const WIDTH: usize = 64;
    let col = |t: u64| -> usize { (t as u128 * WIDTH as u128 / finish.max(1) as u128) as usize };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} over {}: parallel(4) transfer timeline, {} total cycles",
        app.name, link.name, finish
    );
    let _ = writeln!(
        out,
        "{:<36} |{}|",
        "class (in schedule order)",
        "-".repeat(WIDTH)
    );
    for &c in &schedule.class_order {
        let first = engine.recorded_arrival(c, 0).unwrap_or(finish);
        let last = engine
            .recorded_arrival(c, units[c].unit_count() - 1)
            .unwrap_or(finish);
        let (a, b) = (col(first).min(WIDTH - 1), col(last).min(WIDTH - 1));
        let mut bar = vec![b' '; WIDTH];
        bar[a..=b].fill(b'#');
        let name = app.classes[c]
            .name()
            .map_err(|e| CliError::usage(e.to_string()))?;
        let shown: String = name
            .0
            .chars()
            .rev()
            .take(34)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let _ = writeln!(
            out,
            "{:<36} |{}|",
            shown,
            String::from_utf8(bar).expect("ascii")
        );
    }
    let _ = writeln!(out, "(# spans prelude-arrival .. last-unit-arrival)");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn list_shows_all_benchmarks() {
        let out = run_str(&["list"]).unwrap();
        for name in nonstrict_workloads::BENCHMARK_NAMES {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn no_command_is_usage_error() {
        let err = run(&[]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("USAGE"));
    }

    #[test]
    fn unknown_benchmark_is_reported() {
        let err = run_str(&["inspect", "nope"]).unwrap_err();
        assert!(err.message.contains("unknown benchmark"));
    }

    #[test]
    fn typoed_flag_is_rejected_not_ignored() {
        // `--los` must not silently run a faultless simulation.
        let err = run_str(&["simulate", "jess", "--los", "5"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(
            err.message.contains("unknown flag --los"),
            "{}",
            err.message
        );
    }

    #[test]
    fn inspect_class_lists_methods() {
        let out = run_str(&["inspect", "hanoi", "--class", "1"]).unwrap();
        assert!(out.contains("hanoi/Solver"), "{out}");
        assert!(out.contains("solve"), "{out}");
        assert!(out.contains("moveDisk"), "{out}");
    }

    #[test]
    fn disasm_renders_bytecode() {
        let out = run_str(&["disasm", "hanoi", "--class", "1", "--method", "1"]).unwrap();
        assert!(out.contains("solve"), "{out}");
        assert!(out.contains("invokestatic"), "{out}");
        assert!(out.contains("iload"), "{out}");
    }

    #[test]
    fn order_sources_differ() {
        let scg = run_str(&["order", "hanoi", "--source", "scg"]).unwrap();
        let plain = run_str(&["order", "hanoi", "--source", "plain"]).unwrap();
        assert!(scg.lines().count() == plain.lines().count());
        assert!(scg.contains("hanoi/Solver::solve"));
    }

    #[test]
    fn partition_reports_every_class() {
        let out = run_str(&["partition", "testdes"]).unwrap();
        assert!(out.contains("des/TestDes"), "{out}");
        assert!(out.contains("des/Tables"), "{out}");
        assert!(out.contains("needed-first"), "{out}");
    }

    #[test]
    fn simulate_reports_normalized_time() {
        let out = run_str(&[
            "simulate",
            "hanoi",
            "--link",
            "modem",
            "--ordering",
            "test",
            "--transfer",
            "interleaved",
        ])
        .unwrap();
        assert!(out.contains("normalized"), "{out}");
        assert!(out.contains("invocation latency"), "{out}");
    }

    #[test]
    fn simulate_with_fault_flags_reports_recovery() {
        let out = run_str(&[
            "simulate",
            "hanoi",
            "--link",
            "modem",
            "--fault-seed",
            "7",
            "--loss",
            "100000",
            "--drop",
            "20000",
            "--corrupt",
            "50000",
        ])
        .unwrap();
        assert!(out.contains("fault recovery"), "{out}");
        assert!(out.contains("degradation"), "{out}");
        assert!(out.contains("run completed"), "{out}");
        let same = run_str(&[
            "simulate",
            "hanoi",
            "--link",
            "modem",
            "--fault-seed",
            "7",
            "--loss",
            "100000",
            "--drop",
            "20000",
            "--corrupt",
            "50000",
        ])
        .unwrap();
        assert_eq!(out, same, "same seed, same report");
    }

    #[test]
    fn simulate_with_stream_verification_reports_the_charge() {
        let out = run_str(&["simulate", "hanoi", "--link", "modem", "--verify", "stream"]).unwrap();
        assert!(out.contains("verification"), "{out}");
        assert!(out.contains("stream mode"), "{out}");
    }

    #[test]
    fn verify_off_is_the_default_and_identical() {
        let plain = run_str(&["simulate", "hanoi", "--link", "t1"]).unwrap();
        let off = run_str(&["simulate", "hanoi", "--link", "t1", "--verify", "off"]).unwrap();
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&plain), tail(&off));
        assert!(!plain.contains("verification"), "{plain}");
    }

    #[test]
    fn bad_verify_mode_is_a_usage_error() {
        let err = run_str(&["simulate", "hanoi", "--verify", "streaming"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(
            err.message.contains("unknown verify mode"),
            "{}",
            err.message
        );
    }

    #[test]
    fn semantic_fault_flag_reports_quarantine() {
        let out = run_str(&[
            "simulate",
            "hanoi",
            "--link",
            "modem",
            "--fault-seed",
            "7",
            "--semantic",
            "100000",
        ])
        .unwrap();
        assert!(out.contains("quarantined"), "{out}");
        assert!(out.contains("run completed"), "{out}");
    }

    #[test]
    fn zero_rate_fault_flags_leave_the_report_unchanged() {
        let perfect = run_str(&["simulate", "hanoi", "--link", "t1"]).unwrap();
        let seeded = run_str(&["simulate", "hanoi", "--link", "t1", "--fault-seed", "99"]).unwrap();
        // An armed-but-zero-rate config must not perturb the numbers; the
        // only difference is the echoed config.
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&perfect), tail(&seeded));
    }

    #[test]
    fn timeline_draws_every_class() {
        let out = run_str(&["timeline", "hanoi", "--link", "t1"]).unwrap();
        assert!(out.contains("hanoi/Solver"), "{out}");
        assert!(out.contains('#'), "{out}");
        assert_eq!(out.lines().filter(|l| l.contains('|')).count(), 4); // header + 3 classes
    }

    #[test]
    fn flag_value_missing_is_usage_error() {
        let err = run_str(&["simulate", "hanoi", "--link"]).unwrap_err();
        assert!(err.message.contains("needs a value"));
    }

    #[test]
    fn outage_flags_report_resume_cost_deterministically() {
        let args = [
            "simulate",
            "hanoi",
            "--link",
            "modem",
            "--outage-seed",
            "7",
            "--outage-rate",
            "600000",
            "--outage-cycles",
            "2000000",
        ];
        let a = run_str(&args).unwrap();
        let b = run_str(&args).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("outages:"), "{a}");
        assert!(a.contains("resume cost:"), "{a}");
    }

    #[test]
    fn zero_rate_outage_flags_leave_the_report_tail_unchanged() {
        let plain = run_str(&["simulate", "hanoi", "--link", "t1"]).unwrap();
        let seeded = run_str(&["simulate", "hanoi", "--link", "t1", "--outage-seed", "3"]).unwrap();
        // An armed-but-zero-rate outage config is normalized away by
        // `active_outages`, so only the echoed config line may differ.
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&plain), tail(&seeded));
        assert!(!plain.contains("resume cost"), "{plain}");
    }

    #[test]
    fn replica_run_reports_the_mirror_table_deterministically() {
        let args = [
            "simulate",
            "hanoi",
            "--link",
            "modem",
            "--replicas",
            "3",
            "--fault-seed",
            "7",
            "--loss",
            "200000",
            "--hedge-deadline",
            "500000",
        ];
        let a = run_str(&args).unwrap();
        let b = run_str(&args).unwrap();
        assert_eq!(a, b, "same seed, same report");
        assert!(a.contains("replica set:"), "{a}");
        assert!(a.contains("3 mirrors"), "{a}");
        assert!(a.contains("hedge cost:"), "{a}");
        assert!(a.contains("mirror 2"), "{a}");
        assert!(a.contains("live"), "{a}");
    }

    #[test]
    fn single_replica_leaves_the_report_tail_unchanged() {
        let plain = run_str(&["simulate", "hanoi", "--link", "t1"]).unwrap();
        let one = run_str(&["simulate", "hanoi", "--link", "t1", "--replicas", "1"]).unwrap();
        // A one-mirror set is normalized away by `active_replicas`, so
        // only the echoed config line may differ.
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&plain), tail(&one));
        assert!(!plain.contains("replica set"), "{plain}");
    }

    #[test]
    fn hedge_deadline_without_replicas_is_a_usage_error() {
        let err = run_str(&["simulate", "hanoi", "--hedge-deadline", "1000000"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--replicas 2"), "{}", err.message);
        let err = run_str(&[
            "simulate",
            "hanoi",
            "--replicas",
            "1",
            "--hedge-deadline",
            "1000000",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--replicas 2"), "{}", err.message);
    }

    #[test]
    fn replica_spread_without_replicas_is_a_usage_error() {
        let err = run_str(&["simulate", "hanoi", "--replica-spread", "100000"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--replica-spread"), "{}", err.message);
    }

    #[test]
    fn replica_count_out_of_range_is_a_usage_error() {
        for n in ["0", "9"] {
            let err = run_str(&["simulate", "hanoi", "--replicas", n]).unwrap_err();
            assert_eq!(err.code, 2);
            assert!(err.message.contains("1..=8"), "{}", err.message);
        }
    }

    #[test]
    fn interrupt_without_journal_is_a_usage_error() {
        let err = run_str(&["simulate", "hanoi", "--interrupt", "1000"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--journal"), "{}", err.message);
    }

    #[test]
    fn interrupt_writes_a_journal_that_resumes_the_session() {
        let path =
            std::env::temp_dir().join(format!("nonstrict-cli-journal-{}.bin", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let killed = run_str(&[
            "simulate",
            "hanoi",
            "--link",
            "modem",
            "--interrupt",
            "5000000",
            "--journal",
            &path,
        ])
        .unwrap();
        assert!(
            killed.contains("session killed at base cycle 5000000"),
            "{killed}"
        );
        assert!(killed.contains("journal"), "{killed}");
        let resumed =
            run_str(&["simulate", "hanoi", "--link", "modem", "--journal", &path]).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(resumed.contains("resumed cleanly"), "{resumed}");
        assert!(resumed.contains("resume cost:"), "{resumed}");
        // The resumed run pays exactly the reconnect negotiation on top
        // of the uninterrupted total.
        let plain = run_str(&["simulate", "hanoi", "--link", "modem"]).unwrap();
        let total = |s: &str| -> u64 {
            s.lines()
                .find(|l| l.contains("total:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
                .unwrap()
        };
        assert_eq!(
            total(&resumed),
            total(&plain) + OutageConfig::DEFAULT_NEGOTIATION_CYCLES
        );
    }

    #[test]
    fn fleet_run_reports_the_client_table_deterministically() {
        let args = [
            "simulate",
            "hanoi",
            "--link",
            "t1",
            "--clients",
            "4",
            "--admit-rate",
            "1",
            "--shed-ladder",
            "0,2000000000,4000000000",
        ];
        let a = run_str(&args).unwrap();
        let b = run_str(&args).unwrap();
        assert_eq!(a, b, "same seed, same fleet report");
        assert!(a.contains("fleet of 4"), "{a}");
        assert!(a.contains("tail latency:"), "{a}");
        assert!(a.contains("admission:"), "{a}");
        assert!(a.contains("shed ladder:"), "{a}");
        // Client 0 is the named benchmark; the rest cycle the suite.
        assert!(a.contains("Hanoi"), "{a}");
        assert!(a.contains("BIT"), "{a}");
        assert!(a.contains("JavaCup"), "{a}");
        // A zero first rung means nobody is plainly served.
        assert!(a.contains("0 served"), "{a}");
        assert!(a.contains("drop-hedges"), "{a}");
    }

    #[test]
    fn client_spread_slows_later_clients() {
        let out = run_str(&[
            "simulate",
            "hanoi",
            "--link",
            "t1",
            "--clients",
            "2",
            "--client-spread",
            "500000",
        ])
        .unwrap();
        // Client 0 keeps the T1's 3815 cycles/byte; client 1 runs 50%
        // slower.
        assert!(out.contains(" 3815"), "{out}");
        assert!(out.contains(" 5722"), "{out}");
    }

    #[test]
    fn a_fleet_of_one_is_byte_identical_to_no_fleet_flags() {
        let plain = run_str(&["simulate", "hanoi", "--link", "t1"]).unwrap();
        let one = run_str(&["simulate", "hanoi", "--link", "t1", "--clients", "1"]).unwrap();
        // `--clients` lives outside SimConfig, so even the echoed
        // config line matches: the whole report must be identical.
        assert_eq!(plain, one);
        assert!(!plain.contains("fleet of"), "{plain}");
    }

    #[test]
    fn fleet_tuning_without_clients_is_a_usage_error() {
        for args in [
            ["simulate", "hanoi", "--admit-rate", "1"],
            ["simulate", "hanoi", "--client-spread", "100000"],
            ["simulate", "hanoi", "--shed-ladder", "1,2,3"],
        ] {
            let err = run_str(&args).unwrap_err();
            assert_eq!(err.code, 2);
            assert!(err.message.contains("--clients 2"), "{}", err.message);
        }
        let err =
            run_str(&["simulate", "hanoi", "--clients", "1", "--admit-rate", "1"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--clients 2"), "{}", err.message);
    }

    #[test]
    fn bad_shed_ladders_are_usage_errors() {
        // Two rungs instead of three.
        let err = run_str(&[
            "simulate",
            "hanoi",
            "--clients",
            "2",
            "--shed-ladder",
            "1,2",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("H,S,J"), "{}", err.message);
        // Rungs out of order get the typed ladder error.
        let err = run_str(&[
            "simulate",
            "hanoi",
            "--clients",
            "2",
            "--shed-ladder",
            "5,4,3",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--shed-ladder"), "{}", err.message);
    }

    #[test]
    fn client_count_out_of_range_is_a_usage_error() {
        for n in ["0", "65"] {
            let err = run_str(&["simulate", "hanoi", "--clients", n]).unwrap_err();
            assert_eq!(err.code, 2);
            assert!(err.message.contains("1..=64"), "{}", err.message);
        }
    }

    #[test]
    fn clients_with_journal_flags_is_a_usage_error() {
        let err = run_str(&[
            "simulate",
            "hanoi",
            "--clients",
            "2",
            "--interrupt",
            "1000",
            "--journal",
            "/tmp/never-written.bin",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--clients"), "{}", err.message);
    }

    #[test]
    fn corrupt_journal_fails_closed_in_the_report() {
        let path = std::env::temp_dir().join(format!(
            "nonstrict-cli-torn-journal-{}.bin",
            std::process::id()
        ));
        let path = path.to_str().unwrap().to_string();
        std::fs::write(&path, b"not a journal at all").unwrap();
        let out = run_str(&["simulate", "hanoi", "--link", "modem", "--journal", &path]).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(out.contains("FAIL-CLOSED"), "{out}");
        assert!(out.contains("restarted under strict execution"), "{out}");
    }
}
