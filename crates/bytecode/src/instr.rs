//! The instruction set: a JVM-flavoured integer subset with real opcode
//! encodings and exact byte sizes.
//!
//! The set is deliberately integer-only (plus arrays and strings): the
//! paper's transfer experiments depend on *sizes and control structure*,
//! not on the arithmetic domain, and the six workloads compute real
//! results (DES rounds, recursion, parser tables, …) with integers alone.

use std::fmt;

use crate::ids::MethodId;

/// A branch condition against zero ([`Instruction::If`]) or between the
/// top two stack values ([`Instruction::IfICmp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Greater or equal.
    Ge,
    /// Greater than.
    Gt,
    /// Less or equal.
    Le,
}

impl Cond {
    /// Evaluates the condition on `a ? b`.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Gt => a > b,
            Cond::Le => a <= b,
        }
    }
}

/// A branch target: an **instruction index** within the method body
/// (byte offsets are computed at encode time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A reference to a static field: class index and field index within that
/// class's static list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticRef {
    /// Owning class index.
    pub class: u16,
    /// Field index within the class's statics.
    pub field: u16,
}

/// Whether a call encodes as `invokestatic` or `invokevirtual`.
///
/// Both resolve to a fixed callee in this model (the workloads are
/// monomorphic, like most 1998 Java benchmarks); the distinction matters
/// for opcode realism and constant-pool composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// `invokestatic`.
    Static,
    /// `invokevirtual` (receiver-less in this model).
    Virtual,
}

/// Built-in runtime routines, modelling calls into `java/lang` and
/// friends. They execute in one bytecode instruction; their true hardware
/// cost is absorbed by the per-program CPI constant, exactly as the paper
/// treats uninstrumented system methods (its Hanoi discussion, §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeFn {
    /// `java/io/PrintStream.println(I)V` — pops and discards one value.
    PrintInt,
    /// `java/io/PrintStream.println(Ljava/lang/String;)V` — pops one.
    PrintString,
    /// `java/lang/System.currentTimeMillis()J` — pushes a deterministic
    /// pseudo-time that advances by one per call.
    TimeMillis,
    /// `java/lang/Math.abs(I)I`.
    Abs,
    /// `java/lang/Math.min(II)I` — pops two, pushes one.
    Min,
    /// `java/lang/Math.max(II)I` — pops two, pushes one.
    Max,
    /// `java/util/Random.nextInt(I)I` — deterministic LCG, pops the
    /// bound (the receiver is implicit in this model), pushes a value in
    /// `[0, bound)`.
    NextInt,
    /// `java/lang/String.hashCode()I` — pops a handle, pushes a hash.
    HashCode,
}

impl RuntimeFn {
    /// (class, name, descriptor) of the modelled runtime entry point, for
    /// constant-pool realism during lowering.
    #[must_use]
    pub fn symbol(self) -> (&'static str, &'static str, &'static str) {
        match self {
            RuntimeFn::PrintInt => ("java/io/PrintStream", "println", "(I)V"),
            RuntimeFn::PrintString => ("java/io/PrintStream", "println", "(Ljava/lang/String;)V"),
            RuntimeFn::TimeMillis => ("java/lang/System", "currentTimeMillis", "()J"),
            RuntimeFn::Abs => ("java/lang/Math", "abs", "(I)I"),
            RuntimeFn::Min => ("java/lang/Math", "min", "(II)I"),
            RuntimeFn::Max => ("java/lang/Math", "max", "(II)I"),
            RuntimeFn::NextInt => ("java/util/Random", "nextInt", "(I)I"),
            RuntimeFn::HashCode => ("java/lang/String", "hashCode", "()I"),
        }
    }

    /// Net stack effect: (pops, pushes).
    #[must_use]
    pub fn stack_effect(self) -> (u16, u16) {
        match self {
            RuntimeFn::PrintInt | RuntimeFn::PrintString => (1, 0),
            RuntimeFn::TimeMillis => (0, 1),
            RuntimeFn::Abs | RuntimeFn::HashCode | RuntimeFn::NextInt => (1, 1),
            RuntimeFn::Min | RuntimeFn::Max => (2, 1),
        }
    }
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Push an integer constant. Encodes as `iconst_n`, `bipush`,
    /// `sipush`, or `ldc_w` of a pool `Integer` depending on magnitude.
    IConst(i32),
    /// Push (a handle to) a string literal from the constant pool
    /// (`ldc_w` of a `String` entry).
    LdcString(String),
    /// Load local slot (`iload`).
    ILoad(u16),
    /// Store to local slot (`istore`).
    IStore(u16),
    /// Add an immediate to a local slot (`iinc`).
    IInc(u16, i16),
    /// `iadd`.
    IAdd,
    /// `isub`.
    ISub,
    /// `imul`.
    IMul,
    /// `idiv`. Traps on zero divisor.
    IDiv,
    /// `irem`. Traps on zero divisor.
    IRem,
    /// `ineg`.
    INeg,
    /// `iand`.
    IAnd,
    /// `ior`.
    IOr,
    /// `ixor`.
    IXor,
    /// `ishl` (shift count masked to 0–63 in this model).
    IShl,
    /// `ishr` (arithmetic).
    IShr,
    /// `iushr` (logical).
    IUShr,
    /// `dup`.
    Dup,
    /// `pop`.
    Pop,
    /// `swap`.
    Swap,
    /// `newarray int`: pops length, pushes array handle.
    NewArray,
    /// `iaload`: pops index and handle, pushes element.
    IALoad,
    /// `iastore`: pops value, index, handle.
    IAStore,
    /// `arraylength`: pops handle, pushes length.
    ArrayLength,
    /// `getstatic`: pushes the field value.
    GetStatic(StaticRef),
    /// `putstatic`: pops into the field.
    PutStatic(StaticRef),
    /// Unconditional branch.
    Goto(Label),
    /// Branch if the popped value satisfies `cond` against zero
    /// (`ifeq` … `ifle`).
    If(Cond, Label),
    /// Branch comparing the two popped values (`if_icmpeq` …).
    IfICmp(Cond, Label),
    /// Call another method of the program. Arguments are popped (callee
    /// arity), and the return value (if any) is pushed.
    Invoke {
        /// Encoding kind.
        kind: CallKind,
        /// The callee.
        target: MethodId,
    },
    /// Call a modelled runtime routine (uninstrumented system code).
    InvokeRuntime(RuntimeFn),
    /// `return` (void).
    Return,
    /// `ireturn` (one value).
    IReturn,
    /// `nop`.
    Nop,
}

impl Instruction {
    /// Exact encoded size in bytes, matching [`crate::encode`].
    #[must_use]
    pub fn byte_size(&self) -> u32 {
        match self {
            Instruction::IConst(v) => match *v {
                -1..=5 => 1,
                v if i8::try_from(v).is_ok() => 2,
                v if i16::try_from(v).is_ok() => 3,
                _ => 3, // ldc_w of a pool Integer
            },
            Instruction::LdcString(_) => 3,
            Instruction::ILoad(slot) | Instruction::IStore(slot) => {
                if *slot <= 3 {
                    1
                } else if *slot <= 255 {
                    2
                } else {
                    4 // wide form
                }
            }
            Instruction::IInc(slot, delta) => {
                if *slot <= 255 && i8::try_from(*delta).is_ok() {
                    3
                } else {
                    6 // wide form
                }
            }
            Instruction::IAdd
            | Instruction::ISub
            | Instruction::IMul
            | Instruction::IDiv
            | Instruction::IRem
            | Instruction::INeg
            | Instruction::IAnd
            | Instruction::IOr
            | Instruction::IXor
            | Instruction::IShl
            | Instruction::IShr
            | Instruction::IUShr
            | Instruction::Dup
            | Instruction::Pop
            | Instruction::Swap
            | Instruction::IALoad
            | Instruction::IAStore
            | Instruction::ArrayLength
            | Instruction::Return
            | Instruction::IReturn
            | Instruction::Nop => 1,
            Instruction::NewArray => 2,
            Instruction::GetStatic(_)
            | Instruction::PutStatic(_)
            | Instruction::Goto(_)
            | Instruction::If(..)
            | Instruction::IfICmp(..)
            | Instruction::Invoke { .. }
            | Instruction::InvokeRuntime(_) => 3,
        }
    }

    /// The branch target, if this is a branch.
    #[must_use]
    pub fn branch_target(&self) -> Option<Label> {
        match self {
            Instruction::Goto(l) | Instruction::If(_, l) | Instruction::IfICmp(_, l) => Some(*l),
            _ => None,
        }
    }

    /// Whether control can fall through to the next instruction.
    #[must_use]
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Instruction::Goto(_) | Instruction::Return | Instruction::IReturn
        )
    }

    /// Whether this instruction ends a basic block.
    #[must_use]
    pub fn is_block_end(&self) -> bool {
        matches!(
            self,
            Instruction::Goto(_)
                | Instruction::If(..)
                | Instruction::IfICmp(..)
                | Instruction::Return
                | Instruction::IReturn
        )
    }

    /// The called program method, if this is an [`Instruction::Invoke`].
    #[must_use]
    pub fn call_target(&self) -> Option<MethodId> {
        match self {
            Instruction::Invoke { target, .. } => Some(*target),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iconst_sizes_follow_jvm_forms() {
        assert_eq!(Instruction::IConst(0).byte_size(), 1);
        assert_eq!(Instruction::IConst(5).byte_size(), 1);
        assert_eq!(Instruction::IConst(-1).byte_size(), 1);
        assert_eq!(Instruction::IConst(6).byte_size(), 2);
        assert_eq!(Instruction::IConst(-2).byte_size(), 2);
        assert_eq!(Instruction::IConst(127).byte_size(), 2);
        assert_eq!(Instruction::IConst(128).byte_size(), 3);
        assert_eq!(Instruction::IConst(40_000).byte_size(), 3);
        assert_eq!(Instruction::IConst(100_000).byte_size(), 3);
    }

    #[test]
    fn load_store_short_forms() {
        assert_eq!(Instruction::ILoad(3).byte_size(), 1);
        assert_eq!(Instruction::ILoad(4).byte_size(), 2);
        assert_eq!(Instruction::IStore(255).byte_size(), 2);
        assert_eq!(Instruction::IStore(256).byte_size(), 4);
    }

    #[test]
    fn cond_eval_all_variants() {
        assert!(Cond::Eq.eval(1, 1) && !Cond::Eq.eval(1, 2));
        assert!(Cond::Ne.eval(1, 2) && !Cond::Ne.eval(1, 1));
        assert!(Cond::Lt.eval(1, 2) && !Cond::Lt.eval(2, 2));
        assert!(Cond::Ge.eval(2, 2) && !Cond::Ge.eval(1, 2));
        assert!(Cond::Gt.eval(3, 2) && !Cond::Gt.eval(2, 2));
        assert!(Cond::Le.eval(2, 2) && !Cond::Le.eval(3, 2));
    }

    #[test]
    fn block_end_and_fallthrough_agree() {
        let g = Instruction::Goto(Label(0));
        assert!(g.is_block_end() && !g.falls_through());
        let c = Instruction::If(Cond::Eq, Label(0));
        assert!(c.is_block_end() && c.falls_through());
        assert!(!Instruction::IAdd.is_block_end() && Instruction::IAdd.falls_through());
    }

    #[test]
    fn runtime_fn_symbols_are_java_like() {
        let (c, n, d) = RuntimeFn::Min.symbol();
        assert_eq!((c, n, d), ("java/lang/Math", "min", "(II)I"));
    }
}
