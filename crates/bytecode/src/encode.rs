//! Encoding of method bodies into real JVM bytecode bytes.
//!
//! Branch targets are instruction indices in [`crate::program::MethodDef`]
//! bodies; encoding resolves them into signed 16-bit byte offsets relative
//! to the branching opcode, exactly as the JVM wire format does. Constant
//! operands (large integers, strings, field/method references) are
//! interned into the class's constant pool, and every pool index a
//! method's code references is reported back for the data-partitioning
//! analysis (§7.3).

use nonstrict_classfile::{ConstantPool, CpIndex};

use crate::error::BytecodeError;
use crate::ids::MethodId;
use crate::instr::{CallKind, Cond, Instruction, RuntimeFn};
use crate::program::Program;

/// Real JVM opcodes for the subset.
mod op {
    pub const NOP: u8 = 0x00;
    pub const ICONST_M1: u8 = 0x02;
    pub const ICONST_0: u8 = 0x03;
    pub const BIPUSH: u8 = 0x10;
    pub const SIPUSH: u8 = 0x11;
    pub const LDC_W: u8 = 0x13;
    pub const ILOAD: u8 = 0x15;
    pub const ILOAD_0: u8 = 0x1A;
    pub const IALOAD: u8 = 0x2E;
    pub const ISTORE: u8 = 0x36;
    pub const ISTORE_0: u8 = 0x3B;
    pub const IASTORE: u8 = 0x4F;
    pub const POP: u8 = 0x57;
    pub const DUP: u8 = 0x59;
    pub const SWAP: u8 = 0x5F;
    pub const IADD: u8 = 0x60;
    pub const ISUB: u8 = 0x64;
    pub const IMUL: u8 = 0x68;
    pub const IDIV: u8 = 0x6C;
    pub const IREM: u8 = 0x70;
    pub const INEG: u8 = 0x74;
    pub const ISHL: u8 = 0x78;
    pub const ISHR: u8 = 0x7A;
    pub const IUSHR: u8 = 0x7C;
    pub const IAND: u8 = 0x7E;
    pub const IOR: u8 = 0x80;
    pub const IXOR: u8 = 0x82;
    pub const IINC: u8 = 0x84;
    pub const IFEQ: u8 = 0x99;
    pub const IF_ICMPEQ: u8 = 0x9F;
    pub const GOTO: u8 = 0xA7;
    pub const IRETURN: u8 = 0xAC;
    pub const RETURN: u8 = 0xB1;
    pub const GETSTATIC: u8 = 0xB2;
    pub const PUTSTATIC: u8 = 0xB3;
    pub const INVOKEVIRTUAL: u8 = 0xB6;
    pub const INVOKESTATIC: u8 = 0xB8;
    pub const NEWARRAY: u8 = 0xBC;
    pub const ARRAYLENGTH: u8 = 0xBE;
    pub const WIDE: u8 = 0xC4;
}

/// `newarray` array-type code for `int`.
const ATYPE_INT: u8 = 10;

fn cond_offset(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Gt => 4,
        Cond::Le => 5,
    }
}

/// The encoded form of one method.
#[derive(Debug, Clone)]
pub struct EncodedMethod {
    /// The bytecode bytes.
    pub code: Vec<u8>,
    /// Constant-pool indices directly referenced by operands in `code`.
    pub used_constants: Vec<CpIndex>,
}

/// Encodes the body of `id` into real bytecode, interning operand
/// constants into `pool`.
///
/// # Errors
///
/// [`BytecodeError::BadBranchTarget`] if a branch displacement exceeds
/// the signed 16-bit range; pool-capacity errors otherwise.
pub fn encode_method(
    program: &Program,
    id: MethodId,
    pool: &mut ConstantPool,
) -> Result<EncodedMethod, BytecodeError> {
    let method = program.method(id);
    let body = &method.body;

    // Pass 1: byte offset of every instruction.
    let mut offsets = Vec::with_capacity(body.len() + 1);
    let mut at: u32 = 0;
    for instr in body {
        offsets.push(at);
        at += instr.byte_size();
    }
    offsets.push(at);

    let mut code = Vec::with_capacity(at as usize);
    let mut used = Vec::new();

    let branch =
        |code: &mut Vec<u8>, opcode: u8, pc: usize, target: u32| -> Result<(), BytecodeError> {
            let from = i64::from(offsets[pc]);
            let to = i64::from(offsets[target as usize]);
            let delta = to - from;
            let delta = i16::try_from(delta).map_err(|_| BytecodeError::BadBranchTarget {
                method: id,
                at: pc as u32,
                target,
            })?;
            code.push(opcode);
            code.extend_from_slice(&delta.to_be_bytes());
            Ok(())
        };

    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instruction::IConst(v) => match *v {
                -1..=5 => code.push((ICONST_BASE + v) as u8),
                v if i8::try_from(v).is_ok() => {
                    code.push(op::BIPUSH);
                    code.push(v as i8 as u8);
                }
                v if i16::try_from(v).is_ok() => {
                    code.push(op::SIPUSH);
                    code.extend_from_slice(&(v as i16).to_be_bytes());
                }
                v => {
                    let idx = pool.intern(nonstrict_classfile::Constant::Integer(v))?;
                    used.push(idx);
                    code.push(op::LDC_W);
                    code.extend_from_slice(&idx.0.to_be_bytes());
                }
            },
            Instruction::LdcString(s) => {
                let idx = pool.string(s)?;
                used.push(idx);
                code.push(op::LDC_W);
                code.extend_from_slice(&idx.0.to_be_bytes());
            }
            Instruction::ILoad(slot) => emit_local(&mut code, op::ILOAD_0, op::ILOAD, *slot),
            Instruction::IStore(slot) => emit_local(&mut code, op::ISTORE_0, op::ISTORE, *slot),
            Instruction::IInc(slot, delta) => {
                if *slot <= 255 && i8::try_from(*delta).is_ok() {
                    code.push(op::IINC);
                    code.push(*slot as u8);
                    code.push(*delta as i8 as u8);
                } else {
                    code.push(op::WIDE);
                    code.push(op::IINC);
                    code.extend_from_slice(&slot.to_be_bytes());
                    code.extend_from_slice(&delta.to_be_bytes());
                }
            }
            Instruction::IAdd => code.push(op::IADD),
            Instruction::ISub => code.push(op::ISUB),
            Instruction::IMul => code.push(op::IMUL),
            Instruction::IDiv => code.push(op::IDIV),
            Instruction::IRem => code.push(op::IREM),
            Instruction::INeg => code.push(op::INEG),
            Instruction::IAnd => code.push(op::IAND),
            Instruction::IOr => code.push(op::IOR),
            Instruction::IXor => code.push(op::IXOR),
            Instruction::IShl => code.push(op::ISHL),
            Instruction::IShr => code.push(op::ISHR),
            Instruction::IUShr => code.push(op::IUSHR),
            Instruction::Dup => code.push(op::DUP),
            Instruction::Pop => code.push(op::POP),
            Instruction::Swap => code.push(op::SWAP),
            Instruction::NewArray => {
                code.push(op::NEWARRAY);
                code.push(ATYPE_INT);
            }
            Instruction::IALoad => code.push(op::IALOAD),
            Instruction::IAStore => code.push(op::IASTORE),
            Instruction::ArrayLength => code.push(op::ARRAYLENGTH),
            Instruction::GetStatic(r) | Instruction::PutStatic(r) => {
                let class = program.class(crate::ids::ClassId(r.class));
                let field = &class.statics[r.field as usize];
                let idx = pool.field_ref(&class.name, &field.name, &field.descriptor)?;
                used.push(idx);
                code.push(if matches!(instr, Instruction::GetStatic(_)) {
                    op::GETSTATIC
                } else {
                    op::PUTSTATIC
                });
                code.extend_from_slice(&idx.0.to_be_bytes());
            }
            Instruction::Goto(l) => branch(&mut code, op::GOTO, pc, l.0)?,
            Instruction::If(c, l) => branch(&mut code, op::IFEQ + cond_offset(*c), pc, l.0)?,
            Instruction::IfICmp(c, l) => {
                branch(&mut code, op::IF_ICMPEQ + cond_offset(*c), pc, l.0)?
            }
            Instruction::Invoke { kind, target } => {
                let callee_class = program.class(target.class);
                let callee = &callee_class.methods[target.method as usize];
                let idx =
                    pool.method_ref(&callee_class.name, &callee.name, &callee.descriptor())?;
                used.push(idx);
                code.push(match kind {
                    CallKind::Static => op::INVOKESTATIC,
                    CallKind::Virtual => op::INVOKEVIRTUAL,
                });
                code.extend_from_slice(&idx.0.to_be_bytes());
            }
            Instruction::InvokeRuntime(rt) => {
                let (class, name, desc) = rt.symbol();
                let idx = pool.method_ref(class, name, desc)?;
                used.push(idx);
                code.push(if runtime_is_virtual(*rt) {
                    op::INVOKEVIRTUAL
                } else {
                    op::INVOKESTATIC
                });
                code.extend_from_slice(&idx.0.to_be_bytes());
            }
            Instruction::Return => code.push(op::RETURN),
            Instruction::IReturn => code.push(op::IRETURN),
            Instruction::Nop => code.push(op::NOP),
        }
        debug_assert_eq!(
            code.len() as u32,
            offsets[pc + 1],
            "size model out of sync with encoder at {id}:{pc}"
        );
    }

    used.sort_unstable();
    used.dedup();
    Ok(EncodedMethod {
        code,
        used_constants: used,
    })
}

const ICONST_BASE: i32 = op::ICONST_0 as i32;
const _: () = assert!(op::ICONST_M1 as i32 == ICONST_BASE - 1);

fn emit_local(code: &mut Vec<u8>, short_base: u8, long_op: u8, slot: u16) {
    if slot <= 3 {
        code.push(short_base + slot as u8);
    } else if slot <= 255 {
        code.push(long_op);
        code.push(slot as u8);
    } else {
        code.push(op::WIDE);
        code.push(long_op);
        code.extend_from_slice(&slot.to_be_bytes());
    }
}

fn runtime_is_virtual(rt: RuntimeFn) -> bool {
    matches!(
        rt,
        RuntimeFn::PrintInt | RuntimeFn::PrintString | RuntimeFn::NextInt | RuntimeFn::HashCode
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instruction as I, Label, StaticRef};
    use crate::program::{ClassDef, MethodDef, Program, StaticDef};

    fn one_method_program(body: Vec<I>) -> Program {
        let mut a = ClassDef::new("e/A");
        a.add_static(StaticDef::int("s", 0));
        a.add_method(MethodDef::new("main", 0, body));
        let mut helper = MethodDef::new("h", 2, vec![I::IConst(1), I::IReturn]);
        helper.returns_value = true;
        a.add_method(helper);
        Program::new(vec![a], "e/A", "main").unwrap()
    }

    #[test]
    fn encoded_length_matches_size_model() {
        let p = one_method_program(vec![
            I::IConst(0),
            I::IConst(100),
            I::IConst(40_000),
            I::IConst(1_000_000),
            I::IAdd,
            I::IAdd,
            I::IAdd,
            I::IStore(5),
            I::ILoad(5),
            I::Pop,
            I::LdcString("hello".into()),
            I::Pop,
            I::GetStatic(StaticRef { class: 0, field: 0 }),
            I::Pop,
            I::Return,
        ]);
        let mut pool = ConstantPool::new();
        let enc = encode_method(&p, p.entry(), &mut pool).unwrap();
        assert_eq!(enc.code.len() as u32, p.method(p.entry()).code_size());
        // two pool integer literals (40_000 and 1_000_000 both exceed
        // sipush range) + string + fieldref recorded
        assert_eq!(enc.used_constants.len(), 4);
    }

    #[test]
    fn branch_offsets_are_relative_and_signed() {
        // 0: goto 2 ; 1: return ; 2: goto 1
        let p = one_method_program(vec![I::Goto(Label(2)), I::Return, I::Goto(Label(1))]);
        let mut pool = ConstantPool::new();
        let enc = encode_method(&p, p.entry(), &mut pool).unwrap();
        // goto at byte 0 targeting byte 4: delta +4
        assert_eq!(&enc.code[0..3], &[0xA7, 0x00, 0x04]);
        // goto at byte 4 targeting byte 3: delta -1
        assert_eq!(&enc.code[4..7], &[0xA7, 0xFF, 0xFF]);
    }

    #[test]
    fn iconst_forms_encode_correctly() {
        let p = one_method_program(vec![I::IConst(-1), I::Pop, I::IConst(5), I::Pop, I::Return]);
        let mut pool = ConstantPool::new();
        let enc = encode_method(&p, p.entry(), &mut pool).unwrap();
        assert_eq!(enc.code[0], 0x02); // iconst_m1
        assert_eq!(enc.code[2], 0x08); // iconst_5
    }

    #[test]
    fn invoke_interns_method_ref() {
        let p = one_method_program(vec![
            I::IConst(1),
            I::IConst(2),
            I::Invoke {
                kind: crate::instr::CallKind::Static,
                target: MethodId::new(0, 1),
            },
            I::Pop,
            I::Return,
        ]);
        let mut pool = ConstantPool::new();
        let enc = encode_method(&p, p.entry(), &mut pool).unwrap();
        // iconst_1 iconst_2 occupy bytes 0-1; invokestatic opcode at 2
        assert_eq!(enc.code[2], 0xB8);
        assert_eq!(enc.used_constants.len(), 1);
        let m = pool.get(enc.used_constants[0]).unwrap();
        assert!(matches!(m, nonstrict_classfile::Constant::MethodRef { .. }));
    }

    #[test]
    fn runtime_call_uses_java_symbols() {
        let p = one_method_program(vec![
            I::IConst(3),
            I::InvokeRuntime(RuntimeFn::PrintInt),
            I::Return,
        ]);
        let mut pool = ConstantPool::new();
        let enc = encode_method(&p, p.entry(), &mut pool).unwrap();
        assert_eq!(enc.code[1], 0xB6); // println is virtual
        let found = pool
            .iter()
            .any(|(_, c)| matches!(c, nonstrict_classfile::Constant::Utf8(s) if s == "java/io/PrintStream"));
        assert!(found);
    }

    #[test]
    fn wide_forms_encode() {
        let p = one_method_program(vec![
            I::IConst(0),
            I::IStore(300),
            I::IInc(300, 1000),
            I::ILoad(300),
            I::Pop,
            I::Return,
        ]);
        let mut pool = ConstantPool::new();
        let enc = encode_method(&p, p.entry(), &mut pool).unwrap();
        assert_eq!(enc.code.len() as u32, p.method(p.entry()).code_size());
        assert_eq!(enc.code[1], 0xC4); // wide istore
    }
}
