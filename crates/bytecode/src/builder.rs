//! An ergonomic assembler for method bodies with forward-reference
//! labels, used heavily by the workload generators.

use crate::ids::MethodId;
use crate::instr::{CallKind, Cond, Instruction, Label, RuntimeFn, StaticRef};
use crate::program::MethodDef;

/// A label handle created by [`MethodBuilder::new_label`]; bind it with
/// [`MethodBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelRef(usize);

/// Builds one method body, resolving labels at [`MethodBuilder::finish`].
///
/// ```
/// use nonstrict_bytecode::builder::MethodBuilder;
/// use nonstrict_bytecode::instr::Cond;
///
/// // sum = 0; for (i = 10; i != 0; i--) sum += i;  return sum;
/// let mut b = MethodBuilder::new("sum10", 0);
/// b.returns_value();
/// b.iconst(0).istore(0); // sum
/// b.iconst(10).istore(1); // i
/// let head = b.new_label();
/// let exit = b.new_label();
/// b.bind(head);
/// b.iload(1).if_(Cond::Eq, exit);
/// b.iload(0).iload(1).iadd().istore(0);
/// b.iinc(1, -1).goto(head);
/// b.bind(exit);
/// b.iload(0).ireturn();
/// let method = b.finish();
/// assert!(method.returns_value);
/// ```
#[derive(Debug)]
pub struct MethodBuilder {
    name: String,
    arity: u16,
    returns_value: bool,
    line_entries: Option<u16>,
    instrs: Vec<Instruction>,
    /// Bound position of each label, by `LabelRef` index.
    labels: Vec<Option<u32>>,
}

impl MethodBuilder {
    /// Starts a void method taking `arity` ints.
    #[must_use]
    pub fn new(name: impl Into<String>, arity: u16) -> Self {
        MethodBuilder {
            name: name.into(),
            arity,
            returns_value: false,
            line_entries: None,
            instrs: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Declares that the method returns an int.
    pub fn returns_value(&mut self) -> &mut Self {
        self.returns_value = true;
        self
    }

    /// Overrides the number of `LineNumberTable` entries emitted at
    /// lowering (defaults to roughly one per three instructions).
    pub fn line_entries(&mut self, n: u16) -> &mut Self {
        self.line_entries = Some(n);
        self
    }

    /// Number of instructions appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> LabelRef {
        self.labels.push(None);
        LabelRef(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: LabelRef) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.instrs.len() as u32);
    }

    /// Appends a raw instruction. Branch instructions appended this way
    /// must carry final instruction indices, not `LabelRef`s.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Appends `iconst`.
    pub fn iconst(&mut self, v: i32) -> &mut Self {
        self.push(Instruction::IConst(v))
    }

    /// Appends `ldc` of a string literal.
    pub fn ldc_str(&mut self, s: impl Into<String>) -> &mut Self {
        self.push(Instruction::LdcString(s.into()))
    }

    /// Appends `iload`.
    pub fn iload(&mut self, slot: u16) -> &mut Self {
        self.push(Instruction::ILoad(slot))
    }

    /// Appends `istore`.
    pub fn istore(&mut self, slot: u16) -> &mut Self {
        self.push(Instruction::IStore(slot))
    }

    /// Appends `iinc`.
    pub fn iinc(&mut self, slot: u16, delta: i16) -> &mut Self {
        self.push(Instruction::IInc(slot, delta))
    }

    /// Appends `iadd`.
    pub fn iadd(&mut self) -> &mut Self {
        self.push(Instruction::IAdd)
    }

    /// Appends `isub`.
    pub fn isub(&mut self) -> &mut Self {
        self.push(Instruction::ISub)
    }

    /// Appends `imul`.
    pub fn imul(&mut self) -> &mut Self {
        self.push(Instruction::IMul)
    }

    /// Appends `idiv`.
    pub fn idiv(&mut self) -> &mut Self {
        self.push(Instruction::IDiv)
    }

    /// Appends `irem`.
    pub fn irem(&mut self) -> &mut Self {
        self.push(Instruction::IRem)
    }

    /// Appends `iand`.
    pub fn iand(&mut self) -> &mut Self {
        self.push(Instruction::IAnd)
    }

    /// Appends `ior`.
    pub fn ior(&mut self) -> &mut Self {
        self.push(Instruction::IOr)
    }

    /// Appends `ixor`.
    pub fn ixor(&mut self) -> &mut Self {
        self.push(Instruction::IXor)
    }

    /// Appends `ishl`.
    pub fn ishl(&mut self) -> &mut Self {
        self.push(Instruction::IShl)
    }

    /// Appends `ishr`.
    pub fn ishr(&mut self) -> &mut Self {
        self.push(Instruction::IShr)
    }

    /// Appends `iushr`.
    pub fn iushr(&mut self) -> &mut Self {
        self.push(Instruction::IUShr)
    }

    /// Appends `dup`.
    pub fn dup(&mut self) -> &mut Self {
        self.push(Instruction::Dup)
    }

    /// Appends `pop`.
    pub fn pop(&mut self) -> &mut Self {
        self.push(Instruction::Pop)
    }

    /// Appends `swap`.
    pub fn swap(&mut self) -> &mut Self {
        self.push(Instruction::Swap)
    }

    /// Appends `newarray int`.
    pub fn newarray(&mut self) -> &mut Self {
        self.push(Instruction::NewArray)
    }

    /// Appends `iaload`.
    pub fn iaload(&mut self) -> &mut Self {
        self.push(Instruction::IALoad)
    }

    /// Appends `iastore`.
    pub fn iastore(&mut self) -> &mut Self {
        self.push(Instruction::IAStore)
    }

    /// Appends `arraylength`.
    pub fn arraylength(&mut self) -> &mut Self {
        self.push(Instruction::ArrayLength)
    }

    /// Appends `getstatic`.
    pub fn getstatic(&mut self, class: u16, field: u16) -> &mut Self {
        self.push(Instruction::GetStatic(StaticRef { class, field }))
    }

    /// Appends `putstatic`.
    pub fn putstatic(&mut self, class: u16, field: u16) -> &mut Self {
        self.push(Instruction::PutStatic(StaticRef { class, field }))
    }

    /// Appends `goto label`.
    pub fn goto(&mut self, label: LabelRef) -> &mut Self {
        self.push(Instruction::Goto(Label(Self::placeholder(label))))
    }

    /// Appends a compare-to-zero branch.
    pub fn if_(&mut self, cond: Cond, label: LabelRef) -> &mut Self {
        self.push(Instruction::If(cond, Label(Self::placeholder(label))))
    }

    /// Appends a two-operand compare branch.
    pub fn if_icmp(&mut self, cond: Cond, label: LabelRef) -> &mut Self {
        self.push(Instruction::IfICmp(cond, Label(Self::placeholder(label))))
    }

    /// Appends an `invokestatic` of another program method.
    pub fn invoke(&mut self, target: MethodId) -> &mut Self {
        self.push(Instruction::Invoke {
            kind: CallKind::Static,
            target,
        })
    }

    /// Appends an `invokevirtual` of another program method.
    pub fn invoke_virtual(&mut self, target: MethodId) -> &mut Self {
        self.push(Instruction::Invoke {
            kind: CallKind::Virtual,
            target,
        })
    }

    /// Appends a runtime-routine call.
    pub fn invoke_runtime(&mut self, rt: RuntimeFn) -> &mut Self {
        self.push(Instruction::InvokeRuntime(rt))
    }

    /// Appends `return`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instruction::Return)
    }

    /// Appends `ireturn`.
    pub fn ireturn(&mut self) -> &mut Self {
        self.push(Instruction::IReturn)
    }

    /// Appends `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instruction::Nop)
    }

    /// Labels are stored as `u32::MAX - id` placeholders until `finish`,
    /// keeping `Instruction` free of builder-specific variants.
    fn placeholder(label: LabelRef) -> u32 {
        u32::MAX - label.0 as u32
    }

    /// Resolves labels and produces the [`MethodDef`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound (a builder-usage
    /// bug, not a data error).
    #[must_use]
    pub fn finish(mut self) -> MethodDef {
        let labels = &self.labels;
        let resolve = |l: &mut Label| {
            if l.0 > u32::MAX - labels.len() as u32 {
                let id = (u32::MAX - l.0) as usize;
                l.0 = labels[id].expect("branch to unbound label");
            }
        };
        for instr in &mut self.instrs {
            match instr {
                Instruction::Goto(l) | Instruction::If(_, l) | Instruction::IfICmp(_, l) => {
                    resolve(l)
                }
                _ => {}
            }
        }
        let line_entries = self
            .line_entries
            .unwrap_or_else(|| (self.instrs.len() as u16 / 3).max(1));
        let mut def = MethodDef::new(self.name, self.arity, self.instrs);
        def.returns_value = self.returns_value;
        def.line_entries = line_entries;
        def
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ClassDef, Program};

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = MethodBuilder::new("m", 0);
        let head = b.new_label();
        let exit = b.new_label();
        b.iconst(3).istore(0);
        b.bind(head);
        b.iload(0).if_(Cond::Eq, exit);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.ret();
        let def = b.finish();
        // if_ at index 3 must target the bound exit (index 6)
        assert_eq!(def.body[3].branch_target().unwrap().0, 6);
        // goto at index 5 must target head (index 2)
        assert_eq!(def.body[5].branch_target().unwrap().0, 2);
        // and it verifies
        let mut c = ClassDef::new("b/T");
        c.add_method(def);
        Program::new(vec![c], "b/T", "m").unwrap();
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_finish() {
        let mut b = MethodBuilder::new("m", 0);
        let l = b.new_label();
        b.goto(l).ret();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = MethodBuilder::new("m", 0);
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn default_line_entries_scale_with_size() {
        let mut b = MethodBuilder::new("m", 0);
        for _ in 0..30 {
            b.nop();
        }
        b.ret();
        assert_eq!(b.finish().line_entries, 10);
    }
}
