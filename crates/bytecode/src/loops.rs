//! Loop analysis over intra-method CFGs.
//!
//! The static first-use estimator prioritizes branch paths "with the
//! greatest number of static loops" and defers loop-exit edges until a
//! loop's blocks are exhausted (§4.1). This module finds back edges,
//! natural-loop membership, and per-block reachable-loop counts to feed
//! those heuristics.

use std::collections::BTreeSet;

use crate::cfg::Cfg;

/// Loop structure of one method.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Back edges `(from_block, header_block)` discovered by DFS.
    pub back_edges: Vec<(usize, usize)>,
    /// Distinct loop-header blocks, ascending.
    pub headers: Vec<usize>,
    /// Per block: indices into `headers` of every natural loop containing
    /// the block.
    pub membership: Vec<Vec<usize>>,
    /// Per block: number of distinct loop headers reachable from the
    /// block (including itself), the branch-priority metric.
    pub reachable_loops: Vec<u32>,
}

impl LoopInfo {
    /// Analyzes `cfg`.
    #[must_use]
    pub fn analyze(cfg: &Cfg) -> LoopInfo {
        let n = cfg.len();
        let mut back_edges = Vec::new();

        // Iterative DFS with colors: 0 white, 1 grey, 2 black.
        let mut color = vec![0u8; n];
        if n > 0 {
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            color[0] = 1;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                if *next < cfg.blocks[b].succs.len() {
                    let s = cfg.blocks[b].succs[*next];
                    *next += 1;
                    match color[s] {
                        0 => {
                            color[s] = 1;
                            stack.push((s, 0));
                        }
                        1 => back_edges.push((b, s)),
                        _ => {}
                    }
                } else {
                    color[b] = 2;
                    stack.pop();
                }
            }
        }

        let headers: Vec<usize> = {
            let set: BTreeSet<usize> = back_edges.iter().map(|&(_, h)| h).collect();
            set.into_iter().collect()
        };

        // Natural loop membership: for each back edge (t, h), walk
        // predecessors from t until h.
        let preds = cfg.predecessors();
        let mut membership = vec![Vec::new(); n];
        for (hi, &h) in headers.iter().enumerate() {
            let mut in_loop = vec![false; n];
            in_loop[h] = true;
            let mut work: Vec<usize> = back_edges
                .iter()
                .filter(|&&(_, hh)| hh == h)
                .map(|&(t, _)| t)
                .collect();
            while let Some(b) = work.pop() {
                if !in_loop[b] {
                    in_loop[b] = true;
                    work.extend(preds[b].iter().copied());
                }
            }
            for (b, &inside) in in_loop.iter().enumerate() {
                if inside {
                    membership[b].push(hi);
                }
            }
        }

        // Reachable loop headers per block: reverse-propagate header sets.
        // Blocks are few per method, so a simple fixed point over bitsets
        // is plenty fast.
        let words = n.div_ceil(64);
        let mut sets = vec![0u64; n * words];
        for (hi, &h) in headers.iter().enumerate() {
            let _ = hi;
            sets[h * words + h / 64] |= 1u64 << (h % 64);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                for si in 0..cfg.blocks[b].succs.len() {
                    let s = cfg.blocks[b].succs[si];
                    for w in 0..words {
                        let merged = sets[b * words + w] | sets[s * words + w];
                        if merged != sets[b * words + w] {
                            sets[b * words + w] = merged;
                            changed = true;
                        }
                    }
                }
            }
        }
        let reachable_loops = (0..n)
            .map(|b| (0..words).map(|w| sets[b * words + w].count_ones()).sum())
            .collect();

        LoopInfo {
            back_edges,
            headers,
            membership,
            reachable_loops,
        }
    }

    /// Number of distinct loops (the paper's "static loops" count).
    #[must_use]
    pub fn loop_count(&self) -> usize {
        self.headers.len()
    }

    /// Whether `block` is inside the loop headed by `headers[header_pos]`.
    #[must_use]
    pub fn in_loop(&self, block: usize, header_pos: usize) -> bool {
        self.membership[block].contains(&header_pos)
    }

    /// The innermost (most deeply nested) loop containing `block`, as a
    /// position in `headers`, if any. Nesting is approximated by loop
    /// size: smaller natural loops are more deeply nested.
    #[must_use]
    pub fn innermost_loop(&self, block: usize, loop_sizes: &[usize]) -> Option<usize> {
        self.membership[block]
            .iter()
            .copied()
            .min_by_key(|&hp| loop_sizes[hp])
    }

    /// Size (block count) of each loop, indexed like `headers`.
    #[must_use]
    pub fn loop_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.headers.len()];
        for m in &self.membership {
            for &hp in m {
                sizes[hp] += 1;
            }
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Instruction as I, Label};

    fn analyze(body: &[I]) -> (Cfg, LoopInfo) {
        let cfg = Cfg::build(body);
        let info = LoopInfo::analyze(&cfg);
        (cfg, info)
    }

    #[test]
    fn straightline_has_no_loops() {
        let (_, info) = analyze(&[I::IConst(1), I::Pop, I::Return]);
        assert_eq!(info.loop_count(), 0);
        assert!(info.back_edges.is_empty());
    }

    #[test]
    fn single_loop_detected() {
        let body = vec![
            I::IConst(10),
            I::IStore(0),
            I::ILoad(0), // block 1: header
            I::If(Cond::Eq, Label(6)),
            I::IInc(0, -1), // block 2: latch
            I::Goto(Label(2)),
            I::Return,
        ];
        let (cfg, info) = analyze(&body);
        assert_eq!(info.loop_count(), 1);
        let h = info.headers[0];
        assert_eq!(cfg.blocks[h].start, 2);
        // membership: header and latch blocks in loop, entry/exit out
        assert!(info.in_loop(h, 0));
        assert!(info.in_loop(2, 0));
        assert!(!info.in_loop(0, 0));
        assert!(!info.in_loop(3, 0));
    }

    #[test]
    fn nested_loops_counted() {
        // outer: 1..; inner: 3..
        let body = vec![
            I::IConst(3),
            I::IStore(0), // b0
            I::ILoad(0),  // b1 outer header
            I::If(Cond::Eq, Label(12)),
            I::IConst(3), // b2
            I::IStore(1),
            I::ILoad(1), // b3 inner header
            I::If(Cond::Eq, Label(10)),
            I::IInc(1, -1), // b4
            I::Goto(Label(6)),
            I::IInc(0, -1), // b5
            I::Goto(Label(2)),
            I::Return, // b6
        ];
        let (_, info) = analyze(&body);
        assert_eq!(info.loop_count(), 2);
        // entry block can reach both loops
        assert_eq!(info.reachable_loops[0], 2);
        let sizes = info.loop_sizes();
        assert_eq!(sizes.len(), 2);
        assert!(sizes.iter().any(|&s| s >= 2));
    }

    #[test]
    fn reachable_loops_guides_branches() {
        // if (c) goto loopy else goto flat
        let body = vec![
            I::IConst(1),              // 0: b0
            I::If(Cond::Eq, Label(7)), // -> b3 (flat exit)
            I::IConst(5),              // 2: b1 loopy path
            I::IStore(0),
            I::ILoad(0),               // 4: b2 loop header
            I::If(Cond::Ne, Label(4)), // self-loop
            I::Return,                 // 6
            I::Return,                 // 7: b4 flat
        ];
        let (cfg, info) = analyze(&body);
        let b0 = 0;
        let succs = &cfg.blocks[b0].succs;
        // fallthrough (loopy) must have more reachable loops than taken (flat)
        assert!(info.reachable_loops[succs[0]] > info.reachable_loops[succs[1]]);
    }

    #[test]
    fn innermost_prefers_smaller_loop() {
        let body = vec![
            I::ILoad(0), // b0: outer header
            I::If(Cond::Eq, Label(6)),
            I::ILoad(1),               // b1: inner header
            I::If(Cond::Ne, Label(2)), // inner self-loop
            I::IInc(0, -1),            // b2
            I::Goto(Label(0)),
            I::Return,
        ];
        let (cfg, info) = analyze(&body);
        let sizes = info.loop_sizes();
        let inner_block = cfg.block_at(2);
        let inner = info.innermost_loop(inner_block, &sizes).unwrap();
        assert_eq!(cfg.blocks[info.headers[inner]].start, 2);
    }
}
