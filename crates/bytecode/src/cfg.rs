//! Intra-method control-flow graphs and the interprocedural call graph.
//!
//! The static first-use estimator (§4.1 of the paper) walks a basic-block
//! CFG with interprocedural edges at call sites; this module provides the
//! graph and the call-site inventory.

use std::collections::BTreeSet;

use crate::ids::MethodId;
use crate::instr::Instruction;
use crate::program::Program;

/// One basic block: the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor block indices. For a conditional branch the fall-through
    /// successor precedes the taken successor.
    pub succs: Vec<usize>,
    /// Call sites inside the block: `(instruction index, callee)`, in
    /// order.
    pub calls: Vec<(u32, MethodId)>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the block holds no instructions (never true for built
    /// CFGs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The control-flow graph of one method.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in instruction order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Map from instruction index to owning block, for target lookups.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Partitions `body` into basic blocks and wires successor edges.
    ///
    /// Leaders are: instruction 0, every branch target, and every
    /// instruction following a block-ending instruction.
    #[must_use]
    pub fn build(body: &[Instruction]) -> Cfg {
        let n = body.len();
        let mut leaders = BTreeSet::new();
        if n > 0 {
            leaders.insert(0u32);
        }
        for (i, instr) in body.iter().enumerate() {
            if let Some(t) = instr.branch_target() {
                leaders.insert(t.0);
            }
            if instr.is_block_end() && i + 1 < n {
                leaders.insert(i as u32 + 1);
            }
        }
        let starts: Vec<u32> = leaders.into_iter().collect();
        let mut blocks = Vec::with_capacity(starts.len());
        let mut block_of = vec![0usize; n];
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(n as u32);
            for pc in start..end {
                block_of[pc as usize] = bi;
            }
            let calls = (start..end)
                .filter_map(|pc| body[pc as usize].call_target().map(|t| (pc, t)))
                .collect();
            blocks.push(BasicBlock {
                start,
                end,
                succs: Vec::new(),
                calls,
            });
        }
        // Successor edges.
        for bi in 0..blocks.len() {
            let last = blocks[bi].end - 1;
            let instr = &body[last as usize];
            let mut succs = Vec::new();
            if instr.falls_through() && (blocks[bi].end as usize) < n {
                succs.push(block_of[blocks[bi].end as usize]);
            }
            if let Some(t) = instr.branch_target() {
                let tb = block_of[t.0 as usize];
                if !succs.contains(&tb) {
                    succs.push(tb);
                }
            }
            blocks[bi].succs = succs;
        }
        Cfg { blocks, block_of }
    }

    /// The block containing instruction `pc`.
    #[must_use]
    pub fn block_at(&self, pc: u32) -> usize {
        self.block_of[pc as usize]
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (empty body).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Predecessor lists (computed on demand).
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (bi, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                preds[s].push(bi);
            }
        }
        preds
    }
}

/// The interprocedural call graph of a program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Per method (global index): distinct callees in first-call-site
    /// order.
    callees: Vec<Vec<MethodId>>,
}

impl CallGraph {
    /// Builds the call graph.
    #[must_use]
    pub fn build(program: &Program) -> CallGraph {
        let mut callees = vec![Vec::new(); program.method_count()];
        for (id, method) in program.iter_methods() {
            let g = program.global_index(id);
            let mut seen = BTreeSet::new();
            for instr in &method.body {
                if let Some(t) = instr.call_target() {
                    if seen.insert(t) {
                        callees[g].push(t);
                    }
                }
            }
        }
        CallGraph { callees }
    }

    /// Distinct callees of `id`, in the order their first call sites
    /// appear in the body.
    #[must_use]
    pub fn callees(&self, program: &Program, id: MethodId) -> &[MethodId] {
        &self.callees[program.global_index(id)]
    }

    /// Methods reachable from `root` (including `root`), in BFS order.
    #[must_use]
    pub fn reachable_from(&self, program: &Program, root: MethodId) -> Vec<MethodId> {
        let mut seen = vec![false; program.method_count()];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        seen[program.global_index(root)] = true;
        queue.push_back(root);
        while let Some(m) = queue.pop_front() {
            order.push(m);
            for &c in &self.callees[program.global_index(m)] {
                let g = program.global_index(c);
                if !seen[g] {
                    seen[g] = true;
                    queue.push_back(c);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CallKind, Cond, Instruction as I, Label};
    use crate::program::{ClassDef, MethodDef};

    fn body_loop() -> Vec<I> {
        vec![
            I::IConst(10),             // 0  block0
            I::IStore(0),              // 1
            I::ILoad(0),               // 2  block1 (loop head)
            I::If(Cond::Eq, Label(6)), // 3
            I::IInc(0, -1),            // 4  block2
            I::Goto(Label(2)),         // 5
            I::Return,                 // 6  block3
        ]
    }

    #[test]
    fn loop_cfg_shape() {
        let cfg = Cfg::build(&body_loop());
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.blocks[0].succs, vec![1]);
        assert_eq!(cfg.blocks[1].succs, vec![2, 3]); // fallthrough first
        assert_eq!(cfg.blocks[2].succs, vec![1]);
        assert!(cfg.blocks[3].succs.is_empty());
        assert_eq!(cfg.block_at(4), 2);
    }

    #[test]
    fn blocks_cover_body_exactly() {
        let body = body_loop();
        let cfg = Cfg::build(&body);
        let total: u32 = cfg.blocks.iter().map(BasicBlock::len).sum();
        assert_eq!(total as usize, body.len());
        for w in cfg.blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn call_sites_recorded_in_order() {
        let body = vec![
            I::Invoke {
                kind: CallKind::Static,
                target: MethodId::new(0, 1),
            },
            I::Invoke {
                kind: CallKind::Static,
                target: MethodId::new(0, 2),
            },
            I::Return,
        ];
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.blocks[0].calls.len(), 2);
        assert_eq!(cfg.blocks[0].calls[0], (0, MethodId::new(0, 1)));
    }

    #[test]
    fn predecessors_invert_successors() {
        let cfg = Cfg::build(&body_loop());
        let preds = cfg.predecessors();
        assert_eq!(preds[1], vec![0, 2]);
        assert_eq!(preds[3], vec![1]);
    }

    #[test]
    fn call_graph_reachability() {
        // main -> a -> b, c unreachable
        let mut class = ClassDef::new("g/A");
        class.add_method(MethodDef::new(
            "main",
            0,
            vec![
                I::Invoke {
                    kind: CallKind::Static,
                    target: MethodId::new(0, 1),
                },
                I::Return,
            ],
        ));
        class.add_method(MethodDef::new(
            "a",
            0,
            vec![
                I::Invoke {
                    kind: CallKind::Static,
                    target: MethodId::new(0, 2),
                },
                I::Return,
            ],
        ));
        class.add_method(MethodDef::new("b", 0, vec![I::Return]));
        class.add_method(MethodDef::new("c", 0, vec![I::Return]));
        let p = crate::program::Program::new(vec![class], "g/A", "main").unwrap();
        let cg = CallGraph::build(&p);
        let reach = cg.reachable_from(&p, p.entry());
        assert_eq!(reach.len(), 3);
        assert!(!reach.contains(&MethodId::new(0, 3)));
    }
}
