//! Lowering: from a verified [`Program`] to real [`ClassFile`]s.
//!
//! Each [`crate::program::ClassDef`] becomes one class file whose sizes
//! are exact serialized sizes: the transfer simulator never sees a made-up
//! number. Lowering also reports which constant-pool entries each method's
//! code references, which the global-data partitioning analysis (§7.3)
//! consumes.

use nonstrict_classfile::{ClassFile, ClassFileBuilder, Constant, CpIndex, MethodData};

use crate::encode::encode_method;
use crate::error::BytecodeError;
use crate::ids::MethodId;
use crate::program::Program;

/// The product of lowering a whole program.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// One class file per [`crate::program::ClassDef`], methods in source
    /// order.
    pub classes: Vec<ClassFile>,
    /// Per method (global index): pool indices its code references.
    pub code_usage: Vec<Vec<CpIndex>>,
}

/// Lowers every class of `program`.
///
/// # Errors
///
/// Propagates encoding and class-file construction failures.
pub fn lower_program(program: &Program) -> Result<LoweredProgram, BytecodeError> {
    let mut classes = Vec::with_capacity(program.class_count());
    let mut code_usage = vec![Vec::new(); program.method_count()];
    for (ci, class) in program.classes().iter().enumerate() {
        let mut builder = ClassFileBuilder::new(class.name.clone());
        if let Some(sf) = &class.source_file {
            builder.source_file(sf.clone());
        } else {
            let simple = class.name.rsplit('/').next().unwrap_or(&class.name);
            builder.source_file(format!("{simple}.java"));
        }
        for i in &class.interfaces {
            builder.interface(i.clone());
        }
        for s in &class.statics {
            if s.constant {
                let v = builder
                    .pool_mut()
                    .intern(Constant::Integer(s.initial as i32))?;
                builder.add_constant_field(&s.name, &s.descriptor, v)?;
            } else {
                builder.add_static_field(&s.name, &s.descriptor)?;
            }
        }
        // Unreferenced pool residue (javac emits these for debug info and
        // dead code); `push` rather than `intern` so duplicates survive,
        // as they do in real files.
        for s in &class.unused_strings {
            builder.pool_mut().push(Constant::Utf8(s.clone()))?;
        }
        for &v in &class.unused_ints {
            builder.pool_mut().push(Constant::Integer(v))?;
        }
        for (mi, method) in class.methods.iter().enumerate() {
            let id = MethodId::new(ci as u16, mi as u16);
            let encoded = encode_method(program, id, builder.pool_mut())?;
            let mut data = MethodData::new(&method.name, method.descriptor(), encoded.code);
            data.limits(method.max_stack.max(1), method.max_locals.max(1));
            data.line_numbers(line_table(method.line_entries, method.code_size()));
            builder.add_method(data)?;
            code_usage[program.global_index(id)] = encoded.used_constants;
        }
        classes.push(builder.build()?);
    }
    Ok(LoweredProgram {
        classes,
        code_usage,
    })
}

/// Synthesizes a plausible `LineNumberTable`: `entries` evenly spaced
/// program counters mapping to increasing source lines.
fn line_table(entries: u16, code_len: u32) -> Vec<(u16, u16)> {
    let entries = u32::from(entries);
    if entries == 0 || code_len == 0 {
        return Vec::new();
    }
    (0..entries)
        .map(|i| {
            let pc = (i * code_len / entries).min(code_len - 1) as u16;
            (pc, (i + 1) as u16)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instruction as I;
    use crate::program::{ClassDef, MethodDef, StaticDef};

    fn two_class_program() -> Program {
        let mut a = ClassDef::new("l/A");
        a.add_static(StaticDef::int("x", 7));
        a.add_static(StaticDef {
            name: "K".into(),
            descriptor: "I".into(),
            initial: 9,
            constant: true,
        });
        a.unused_strings.push("leftover debug text".into());
        a.unused_ints.push(12345);
        let mut main = MethodDef::new(
            "main",
            0,
            vec![
                I::IConst(1_000_000),
                I::Pop,
                I::LdcString("greeting".into()),
                I::Pop,
                I::Invoke {
                    kind: crate::instr::CallKind::Static,
                    target: MethodId::new(1, 0),
                },
                I::Return,
            ],
        );
        main.line_entries = 3;
        a.add_method(main);
        let mut b = ClassDef::new("l/B");
        b.add_method(MethodDef::new("helper", 0, vec![I::Return]));
        Program::new(vec![a, b], "l/A", "main").unwrap()
    }

    #[test]
    fn lowering_produces_serializable_classes() {
        let p = two_class_program();
        let lowered = lower_program(&p).unwrap();
        assert_eq!(lowered.classes.len(), 2);
        for c in &lowered.classes {
            assert_eq!(c.to_bytes().len() as u32, c.total_size());
            c.validate().unwrap();
        }
    }

    #[test]
    fn code_usage_covers_literals_and_refs() {
        let p = two_class_program();
        let lowered = lower_program(&p).unwrap();
        let main_usage = &lowered.code_usage[0];
        // integer literal, string, cross-class method ref
        assert_eq!(main_usage.len(), 3);
        let pool = &lowered.classes[0].constant_pool;
        assert!(main_usage
            .iter()
            .any(|&i| matches!(pool.get(i), Some(Constant::MethodRef { .. }))));
    }

    #[test]
    fn method_code_sizes_match_model() {
        let p = two_class_program();
        let lowered = lower_program(&p).unwrap();
        for (id, m) in p.iter_methods() {
            let cf = &lowered.classes[id.class.0 as usize];
            assert_eq!(cf.methods[id.method as usize].code_size(), m.code_size());
        }
    }

    #[test]
    fn unused_constants_inflate_global_data() {
        let p = two_class_program();
        let lowered = lower_program(&p).unwrap();
        let with = lowered.classes[0].global_data_size();
        // strip the residue and re-lower
        let mut classes = p.classes().to_vec();
        classes[0].unused_strings.clear();
        classes[0].unused_ints.clear();
        let p2 = Program::new(classes, "l/A", "main").unwrap();
        let lowered2 = lower_program(&p2).unwrap();
        assert!(with > lowered2.classes[0].global_data_size());
    }

    #[test]
    fn line_table_spacing() {
        let t = line_table(3, 30);
        assert_eq!(t, vec![(0, 1), (10, 2), (20, 3)]);
        assert!(line_table(0, 30).is_empty());
        assert!(line_table(3, 0).is_empty());
    }

    #[test]
    fn constant_static_gets_constant_value() {
        let p = two_class_program();
        let lowered = lower_program(&p).unwrap();
        let f = &lowered.classes[0].fields[1];
        assert_eq!(f.attributes.len(), 1);
    }
}
