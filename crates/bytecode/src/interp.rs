//! The bytecode interpreter — the execution half of the BIT analog.
//!
//! Programs run for real on an operand-stack machine with 32-bit integer
//! semantics (values stored in `i64` slots, wrapped to `i32` after
//! arithmetic, as the JVM does). An [`EventSink`] receives method
//! entry/exit events and per-segment instruction counts; the profiler and
//! the transfer co-simulator are both sinks.
//!
//! The interpreter also records **coverage** (which static instructions
//! ever executed), which feeds Table 2's "% executed" and the
//! profile-guided transfer schedules' executed-bytes thresholds.

use crate::error::InterpError;
use crate::ids::{ClassId, MethodId};
use crate::instr::{Cond, Instruction, RuntimeFn};
use crate::program::Program;

/// Receives execution events. All methods have empty defaults so sinks
/// implement only what they need; `()` is the null sink.
pub trait EventSink {
    /// Control entered `method` (a call, or program start for `main`).
    fn method_enter(&mut self, method: MethodId) {
        let _ = method;
    }
    /// `count` instructions executed inside `method` since the last
    /// event. Emitted at every call, return, and program end, so the
    /// concatenation of runs is the exact dynamic instruction stream.
    fn run(&mut self, method: MethodId, count: u64) {
        let _ = (method, count);
    }
    /// Control returned from `method`.
    fn method_exit(&mut self, method: MethodId) {
        let _ = method;
    }
}

impl EventSink for () {}

/// Default instruction budget: far above any benchmark's dynamic count,
/// low enough to catch accidental infinite loops quickly.
pub const DEFAULT_BUDGET: u64 = 500_000_000;

/// Call-stack depth limit.
const MAX_DEPTH: usize = 4096;

/// Interpreter over one [`Program`].
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    statics: Vec<Vec<i64>>,
    arrays: Vec<Vec<i64>>,
    coverage: Vec<Vec<bool>>,
    budget: u64,
    executed: u64,
    time_counter: i64,
    rng_state: u64,
    output: Vec<i64>,
}

/// One call frame.
struct Frame {
    method: MethodId,
    pc: u32,
    locals: Vec<i64>,
    stack: Vec<i64>,
    /// Instructions executed in this frame since its last emitted event.
    run: u64,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter with statics initialized per their
    /// declarations (the JVM *preparation* step).
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        let statics = program
            .classes()
            .iter()
            .map(|c| c.statics.iter().map(|s| s.initial).collect())
            .collect();
        let coverage = program
            .iter_methods()
            .map(|(_, m)| vec![false; m.body.len()])
            .collect();
        Interpreter {
            program,
            statics,
            arrays: Vec::new(),
            coverage,
            budget: DEFAULT_BUDGET,
            executed: 0,
            time_counter: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            output: Vec::new(),
        }
    }

    /// Replaces the instruction budget (runaway guard).
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Total instructions executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Values printed through [`RuntimeFn::PrintInt`] (capped at 65,536
    /// entries), for asserting workload correctness.
    #[must_use]
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Coverage bitmaps per method (global index), per instruction.
    #[must_use]
    pub fn coverage(&self) -> &[Vec<bool>] {
        &self.coverage
    }

    /// The current value of a static field, if it exists — lets tests
    /// inspect program results after a run.
    #[must_use]
    pub fn static_value(&self, class: u16, field: u16) -> Option<i64> {
        self.statics
            .get(class as usize)?
            .get(field as usize)
            .copied()
    }

    /// The heap array behind `handle` (an `int` value produced by
    /// `newarray`), if it exists.
    #[must_use]
    pub fn array(&self, handle: i64) -> Option<&[i64]> {
        self.arrays
            .get(usize::try_from(handle).ok()?)
            .map(Vec::as_slice)
    }

    /// Percent (0–100) of static instructions that executed at least
    /// once — Table 2's "% Executed".
    #[must_use]
    pub fn executed_static_percent(&self) -> f64 {
        let total: usize = self.coverage.iter().map(Vec::len).sum();
        let hit: usize = self
            .coverage
            .iter()
            .map(|m| m.iter().filter(|&&b| b).count())
            .sum();
        if total == 0 {
            0.0
        } else {
            100.0 * hit as f64 / total as f64
        }
    }

    /// Bytes of each method's code that executed at least once, by global
    /// method index — the "unique bytes" the profile-guided transfer
    /// schedule accumulates (§5.1).
    #[must_use]
    pub fn executed_code_bytes(&self) -> Vec<u32> {
        self.program
            .iter_methods()
            .map(|(id, m)| {
                let cov = &self.coverage[self.program.global_index(id)];
                m.body
                    .iter()
                    .zip(cov.iter())
                    .filter(|(_, &hit)| hit)
                    .map(|(i, _)| i.byte_size())
                    .sum()
            })
            .collect()
    }

    /// Runs `main` with `args`, streaming events into `sink`.
    ///
    /// Returns `main`'s return value if it returns one.
    ///
    /// # Errors
    ///
    /// Any [`InterpError`] fault; the interpreter state is then
    /// unspecified and should be discarded.
    pub fn run(
        &mut self,
        args: &[i64],
        sink: &mut dyn EventSink,
    ) -> Result<Option<i64>, InterpError> {
        let entry = self.program.entry();
        let entry_def = self.program.method(entry);
        let mut locals = vec![0i64; entry_def.max_locals.max(entry_def.arity) as usize];
        for (slot, &a) in locals.iter_mut().zip(args.iter()) {
            *slot = a;
        }
        let mut frames = vec![Frame {
            method: entry,
            pc: 0,
            locals,
            stack: Vec::with_capacity(entry_def.max_stack as usize),
            run: 0,
        }];
        sink.method_enter(entry);

        loop {
            let frame = frames.last_mut().expect("frame stack never empty in loop");
            let method = self.program.method(frame.method);
            let gidx = self.program.global_index(frame.method);
            let instr = &method.body[frame.pc as usize];
            self.coverage[gidx][frame.pc as usize] = true;
            self.executed += 1;
            frame.run += 1;
            if self.executed > self.budget {
                return Err(InterpError::BudgetExhausted {
                    executed: self.executed,
                });
            }

            let m = frame.method;
            macro_rules! pop {
                () => {
                    frame.stack.pop().ok_or(InterpError::StackUnderflow(m))?
                };
            }
            macro_rules! binop {
                ($f:expr) => {{
                    let b = pop!();
                    let a = pop!();
                    let f: fn(i32, i32) -> i32 = $f;
                    frame.stack.push(i64::from(f(a as i32, b as i32)));
                    frame.pc += 1;
                }};
            }

            match instr {
                Instruction::IConst(v) => {
                    frame.stack.push(i64::from(*v));
                    frame.pc += 1;
                }
                Instruction::LdcString(s) => {
                    // String handles are modelled as their FNV-1a hash.
                    frame.stack.push(i64::from(fnv(s)));
                    frame.pc += 1;
                }
                Instruction::ILoad(slot) => {
                    let v = frame.locals[*slot as usize];
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Instruction::IStore(slot) => {
                    let v = pop!();
                    frame.locals[*slot as usize] = v;
                    frame.pc += 1;
                }
                Instruction::IInc(slot, delta) => {
                    let s = &mut frame.locals[*slot as usize];
                    *s = i64::from((*s as i32).wrapping_add(i32::from(*delta)));
                    frame.pc += 1;
                }
                Instruction::IAdd => binop!(i32::wrapping_add),
                Instruction::ISub => binop!(i32::wrapping_sub),
                Instruction::IMul => binop!(i32::wrapping_mul),
                Instruction::IDiv => {
                    let b = pop!();
                    let a = pop!();
                    if b as i32 == 0 {
                        return Err(InterpError::DivisionByZero(m));
                    }
                    frame
                        .stack
                        .push(i64::from((a as i32).wrapping_div(b as i32)));
                    frame.pc += 1;
                }
                Instruction::IRem => {
                    let b = pop!();
                    let a = pop!();
                    if b as i32 == 0 {
                        return Err(InterpError::DivisionByZero(m));
                    }
                    frame
                        .stack
                        .push(i64::from((a as i32).wrapping_rem(b as i32)));
                    frame.pc += 1;
                }
                Instruction::INeg => {
                    let a = pop!();
                    frame.stack.push(i64::from((a as i32).wrapping_neg()));
                    frame.pc += 1;
                }
                Instruction::IAnd => binop!(|a, b| a & b),
                Instruction::IOr => binop!(|a, b| a | b),
                Instruction::IXor => binop!(|a, b| a ^ b),
                Instruction::IShl => binop!(|a, b| a.wrapping_shl(b as u32 & 31)),
                Instruction::IShr => binop!(|a, b| a.wrapping_shr(b as u32 & 31)),
                Instruction::IUShr => {
                    binop!(|a, b| ((a as u32).wrapping_shr(b as u32 & 31)) as i32)
                }
                Instruction::Dup => {
                    let v = *frame.stack.last().ok_or(InterpError::StackUnderflow(m))?;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Instruction::Pop => {
                    pop!();
                    frame.pc += 1;
                }
                Instruction::Swap => {
                    let b = pop!();
                    let a = pop!();
                    frame.stack.push(b);
                    frame.stack.push(a);
                    frame.pc += 1;
                }
                Instruction::NewArray => {
                    let len = pop!();
                    if len < 0 {
                        return Err(InterpError::NegativeArraySize(m));
                    }
                    self.arrays.push(vec![0i64; len as usize]);
                    frame.stack.push((self.arrays.len() - 1) as i64);
                    frame.pc += 1;
                }
                Instruction::IALoad => {
                    let idx = pop!();
                    let arr = pop!();
                    let a = self
                        .arrays
                        .get(usize::try_from(arr).map_err(|_| InterpError::BadArrayRef(m))?)
                        .ok_or(InterpError::BadArrayRef(m))?;
                    let v = *a
                        .get(
                            usize::try_from(idx).map_err(|_| InterpError::IndexOutOfBounds {
                                method: m,
                                index: idx,
                                len: a.len(),
                            })?,
                        )
                        .ok_or(InterpError::IndexOutOfBounds {
                            method: m,
                            index: idx,
                            len: a.len(),
                        })?;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Instruction::IAStore => {
                    let val = pop!();
                    let idx = pop!();
                    let arr = pop!();
                    let a = self
                        .arrays
                        .get_mut(usize::try_from(arr).map_err(|_| InterpError::BadArrayRef(m))?)
                        .ok_or(InterpError::BadArrayRef(m))?;
                    let len = a.len();
                    let slot = a
                        .get_mut(usize::try_from(idx).map_err(|_| {
                            InterpError::IndexOutOfBounds {
                                method: m,
                                index: idx,
                                len,
                            }
                        })?)
                        .ok_or(InterpError::IndexOutOfBounds {
                            method: m,
                            index: idx,
                            len,
                        })?;
                    *slot = i64::from(val as i32);
                    frame.pc += 1;
                }
                Instruction::ArrayLength => {
                    let arr = pop!();
                    let a = self
                        .arrays
                        .get(usize::try_from(arr).map_err(|_| InterpError::BadArrayRef(m))?)
                        .ok_or(InterpError::BadArrayRef(m))?;
                    frame.stack.push(a.len() as i64);
                    frame.pc += 1;
                }
                Instruction::GetStatic(r) => {
                    let v = *self
                        .statics
                        .get(r.class as usize)
                        .and_then(|c| c.get(r.field as usize))
                        .ok_or(InterpError::BadStatic(ClassId(r.class), r.field))?;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Instruction::PutStatic(r) => {
                    let v = pop!();
                    let slot = self
                        .statics
                        .get_mut(r.class as usize)
                        .and_then(|c| c.get_mut(r.field as usize))
                        .ok_or(InterpError::BadStatic(ClassId(r.class), r.field))?;
                    *slot = i64::from(v as i32);
                    frame.pc += 1;
                }
                Instruction::Goto(l) => frame.pc = l.0,
                Instruction::If(c, l) => {
                    let v = pop!();
                    frame.pc = if eval_zero(*c, v) { l.0 } else { frame.pc + 1 };
                }
                Instruction::IfICmp(c, l) => {
                    let b = pop!();
                    let a = pop!();
                    frame.pc = if c.eval(a, b) { l.0 } else { frame.pc + 1 };
                }
                Instruction::Invoke { target, .. } => {
                    let target = *target;
                    if frames.len() >= MAX_DEPTH {
                        return Err(InterpError::CallStackOverflow(target));
                    }
                    let callee = self.program.method(target);
                    let arity = callee.arity as usize;
                    let frame = frames.last_mut().expect("current frame");
                    if frame.stack.len() < arity {
                        return Err(InterpError::StackUnderflow(frame.method));
                    }
                    let mut locals = vec![0i64; callee.max_locals.max(callee.arity) as usize];
                    let split = frame.stack.len() - arity;
                    for (slot, v) in locals.iter_mut().zip(frame.stack.drain(split..)) {
                        *slot = v;
                    }
                    frame.pc += 1; // resume after the call
                    sink.run(frame.method, frame.run);
                    frame.run = 0;
                    sink.method_enter(target);
                    frames.push(Frame {
                        method: target,
                        pc: 0,
                        locals,
                        stack: Vec::with_capacity(callee.max_stack as usize),
                        run: 0,
                    });
                }
                Instruction::InvokeRuntime(rt) => {
                    let rt = *rt;
                    self.runtime_call(rt, frame)?;
                    frame.pc += 1;
                }
                Instruction::Return | Instruction::IReturn => {
                    let returns = matches!(instr, Instruction::IReturn);
                    let ret = if returns { Some(pop!()) } else { None };
                    let finished = frames.pop().expect("current frame");
                    sink.run(finished.method, finished.run);
                    sink.method_exit(finished.method);
                    match frames.last_mut() {
                        Some(caller) => {
                            if let Some(v) = ret {
                                caller.stack.push(v);
                            }
                        }
                        None => return Ok(ret),
                    }
                }
                Instruction::Nop => frame.pc += 1,
            }
        }
    }

    fn runtime_call(&mut self, rt: RuntimeFn, frame: &mut Frame) -> Result<(), InterpError> {
        let m = frame.method;
        let mut pop = || frame.stack.pop().ok_or(InterpError::StackUnderflow(m));
        match rt {
            RuntimeFn::PrintInt => {
                let v = pop()?;
                if self.output.len() < 65_536 {
                    self.output.push(v);
                }
            }
            RuntimeFn::PrintString => {
                pop()?;
            }
            RuntimeFn::TimeMillis => {
                self.time_counter += 1;
                frame.stack.push(self.time_counter);
            }
            RuntimeFn::Abs => {
                let v = pop()?;
                frame.stack.push(i64::from((v as i32).wrapping_abs()));
            }
            RuntimeFn::Min => {
                let b = pop()?;
                let a = pop()?;
                frame.stack.push(a.min(b));
            }
            RuntimeFn::Max => {
                let b = pop()?;
                let a = pop()?;
                frame.stack.push(a.max(b));
            }
            RuntimeFn::NextInt => {
                let bound = pop()?;
                self.rng_state = self
                    .rng_state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let v = if bound <= 0 {
                    0
                } else {
                    ((self.rng_state >> 33) as i64) % bound
                };
                frame.stack.push(v);
            }
            RuntimeFn::HashCode => {
                let v = pop()?;
                frame
                    .stack
                    .push(i64::from((v as i32).wrapping_mul(31).wrapping_add(17)));
            }
        }
        Ok(())
    }
}

fn eval_zero(c: Cond, v: i64) -> bool {
    c.eval(v, 0)
}

fn fnv(s: &str) -> i32 {
    let mut h: u32 = 0x811C_9DC5;
    for b in s.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::program::{ClassDef, Program, StaticDef};

    fn run_main(build: impl FnOnce(&mut MethodBuilder)) -> Result<Option<i64>, InterpError> {
        let mut b = MethodBuilder::new("main", 0);
        build(&mut b);
        let mut c = ClassDef::new("i/T");
        c.add_static(StaticDef::int("s", 5));
        c.add_method(b.finish());
        let p = Program::new(vec![c], "i/T", "main").unwrap();
        Interpreter::new(&p).run(&[], &mut ())
    }

    #[test]
    fn arithmetic_wraps_at_32_bits() {
        let r = run_main(|b| {
            b.returns_value();
            b.iconst(i32::MAX).iconst(1).iadd().ireturn();
        })
        .unwrap();
        assert_eq!(r, Some(i64::from(i32::MIN)));
    }

    #[test]
    fn loop_sums_correctly() {
        let r = run_main(|b| {
            b.returns_value();
            b.iconst(0).istore(0);
            b.iconst(100).istore(1);
            let head = b.new_label();
            let exit = b.new_label();
            b.bind(head);
            b.iload(1).if_(Cond::Eq, exit);
            b.iload(0).iload(1).iadd().istore(0);
            b.iinc(1, -1).goto(head);
            b.bind(exit);
            b.iload(0).ireturn();
        })
        .unwrap();
        assert_eq!(r, Some(5050));
    }

    #[test]
    fn statics_prepare_and_update() {
        let r = run_main(|b| {
            b.returns_value();
            b.getstatic(0, 0).iconst(2).imul().dup().putstatic(0, 0);
            b.ireturn();
        })
        .unwrap();
        assert_eq!(r, Some(10));
    }

    #[test]
    fn arrays_allocate_load_store() {
        let r = run_main(|b| {
            b.returns_value();
            b.iconst(4).newarray().istore(0);
            b.iload(0).iconst(2).iconst(99).iastore();
            b.iload(0).iconst(2).iaload();
            b.iload(0).arraylength().iadd();
            b.ireturn();
        })
        .unwrap();
        assert_eq!(r, Some(103));
    }

    #[test]
    fn division_by_zero_faults() {
        let e = run_main(|b| {
            b.iconst(1).iconst(0).idiv().pop().ret();
        })
        .unwrap_err();
        assert!(matches!(e, InterpError::DivisionByZero(_)));
    }

    #[test]
    fn out_of_bounds_faults() {
        let e = run_main(|b| {
            b.iconst(2).newarray().istore(0);
            b.iload(0).iconst(5).iaload().pop().ret();
        })
        .unwrap_err();
        assert!(matches!(
            e,
            InterpError::IndexOutOfBounds {
                index: 5,
                len: 2,
                ..
            }
        ));
    }

    #[test]
    fn budget_guards_infinite_loops() {
        let mut b = MethodBuilder::new("main", 0);
        let head = b.new_label();
        b.bind(head);
        b.goto(head);
        let mut c = ClassDef::new("i/T");
        c.add_method(b.finish());
        let p = Program::new(vec![c], "i/T", "main").unwrap();
        let mut i = Interpreter::new(&p);
        i.set_budget(1000);
        let err = i.run(&[], &mut ()).unwrap_err();
        assert!(matches!(err, InterpError::BudgetExhausted { .. }));
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        // main: return add3(4) where add3(x) = x + 3
        let mut add3 = MethodBuilder::new("add3", 1);
        add3.returns_value();
        add3.iload(0).iconst(3).iadd().ireturn();
        let mut main = MethodBuilder::new("main", 0);
        main.returns_value();
        main.iconst(4).invoke(MethodId::new(0, 1)).ireturn();
        let mut c = ClassDef::new("i/T");
        c.add_method(main.finish());
        c.add_method(add3.finish());
        let p = Program::new(vec![c], "i/T", "main").unwrap();
        let r = Interpreter::new(&p).run(&[], &mut ()).unwrap();
        assert_eq!(r, Some(7));
    }

    #[test]
    fn events_bracket_calls() {
        #[derive(Default)]
        struct Log(Vec<String>);
        impl EventSink for Log {
            fn method_enter(&mut self, m: MethodId) {
                self.0.push(format!("+{m}"));
            }
            fn run(&mut self, m: MethodId, n: u64) {
                self.0.push(format!("{m}x{n}"));
            }
            fn method_exit(&mut self, m: MethodId) {
                self.0.push(format!("-{m}"));
            }
        }
        let mut callee = MethodBuilder::new("f", 0);
        callee.ret();
        let mut main = MethodBuilder::new("main", 0);
        main.invoke(MethodId::new(0, 1)).ret();
        let mut c = ClassDef::new("i/T");
        c.add_method(main.finish());
        c.add_method(callee.finish());
        let p = Program::new(vec![c], "i/T", "main").unwrap();
        let mut log = Log::default();
        Interpreter::new(&p).run(&[], &mut log).unwrap();
        assert_eq!(
            log.0,
            vec!["+C0.m0", "C0.m0x1", "+C0.m1", "C0.m1x1", "-C0.m1", "C0.m0x1", "-C0.m0"]
        );
    }

    #[test]
    fn run_counts_sum_to_executed() {
        #[derive(Default)]
        struct Counter(u64);
        impl EventSink for Counter {
            fn run(&mut self, _m: MethodId, n: u64) {
                self.0 += n;
            }
        }
        let mut helper = MethodBuilder::new("h", 1);
        helper.returns_value();
        helper.iload(0).iconst(1).iadd().ireturn();
        let mut main = MethodBuilder::new("main", 0);
        main.iconst(0).istore(0);
        main.iconst(50).istore(1);
        let head = main.new_label();
        let exit = main.new_label();
        main.bind(head);
        main.iload(1).if_(Cond::Eq, exit);
        main.iload(0).invoke(MethodId::new(0, 1)).istore(0);
        main.iinc(1, -1).goto(head);
        main.bind(exit);
        main.ret();
        let mut c = ClassDef::new("i/T");
        c.add_method(main.finish());
        c.add_method(helper.finish());
        let p = Program::new(vec![c], "i/T", "main").unwrap();
        let mut counter = Counter::default();
        let mut interp = Interpreter::new(&p);
        interp.run(&[], &mut counter).unwrap();
        assert_eq!(counter.0, interp.executed());
        assert!(interp.executed() > 300);
    }

    #[test]
    fn coverage_and_executed_bytes_track_execution() {
        let mut main = MethodBuilder::new("main", 0);
        let skip = main.new_label();
        main.iconst(1).if_(Cond::Ne, skip); // always taken
        main.iconst(42).pop(); // dead
        main.bind(skip);
        main.ret();
        let mut c = ClassDef::new("i/T");
        c.add_method(main.finish());
        let p = Program::new(vec![c], "i/T", "main").unwrap();
        let mut interp = Interpreter::new(&p);
        interp.run(&[], &mut ()).unwrap();
        let pct = interp.executed_static_percent();
        assert!(pct < 100.0 && pct > 0.0, "{pct}");
        let bytes = interp.executed_code_bytes();
        let m = p.method(p.entry());
        assert!(bytes[0] < m.code_size());
        assert!(bytes[0] > 0);
    }

    #[test]
    fn main_args_arrive_in_locals() {
        let mut main = MethodBuilder::new("main", 2);
        main.returns_value();
        main.iload(0).iload(1).isub().ireturn();
        let mut c = ClassDef::new("i/T");
        c.add_method(main.finish());
        let p = Program::new(vec![c], "i/T", "main").unwrap();
        let r = Interpreter::new(&p).run(&[10, 3], &mut ()).unwrap();
        assert_eq!(r, Some(7));
    }

    #[test]
    fn runtime_functions_behave() {
        let r = run_main(|b| {
            b.returns_value();
            b.iconst(-5).invoke_runtime(RuntimeFn::Abs);
            b.iconst(3).invoke_runtime(RuntimeFn::Min); // min(5,3)=3
            b.iconst(10).invoke_runtime(RuntimeFn::Max); // max(3,10)=10
            b.dup().invoke_runtime(RuntimeFn::PrintInt);
            b.ireturn();
        })
        .unwrap();
        assert_eq!(r, Some(10));
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut b = MethodBuilder::new("main", 0);
            b.returns_value();
            b.iconst(100).invoke_runtime(RuntimeFn::NextInt);
            b.iconst(100).invoke_runtime(RuntimeFn::NextInt);
            b.iadd().ireturn();
            let mut c = ClassDef::new("i/T");
            c.add_method(b.finish());
            Program::new(vec![c], "i/T", "main").unwrap()
        };
        let p1 = build();
        let p2 = build();
        let r1 = Interpreter::new(&p1).run(&[], &mut ()).unwrap();
        let r2 = Interpreter::new(&p2).run(&[], &mut ()).unwrap();
        assert_eq!(r1, r2);
    }
}
