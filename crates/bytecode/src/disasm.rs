//! Disassembly: decoding encoded bytecode back into inspectable form.
//!
//! [`decode`] is the inverse of [`crate::encode::encode_method`] at the
//! raw-operand level: it produces one [`RawOp`] per instruction with the
//! exact operand bytes interpreted (constant-pool indices, branch
//! offsets, immediates). [`RawOp::encode_into`] re-emits the original
//! bytes, so decoding round-trips exactly — a property test in the
//! workspace drives every benchmark method through it.
//!
//! [`listing`] renders a javap-flavoured text listing, resolving pool
//! indices through the class's constant pool.

use std::error::Error;
use std::fmt;

use nonstrict_classfile::{Constant, ConstantPool};

/// Errors from decoding bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DisasmError {
    /// The code ended in the middle of an instruction.
    TruncatedInstruction {
        /// Offset of the instruction's opcode.
        at: usize,
    },
    /// An opcode outside the supported subset.
    UnknownOpcode {
        /// The opcode byte.
        opcode: u8,
        /// Its offset.
        at: usize,
    },
}

impl fmt::Display for DisasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TruncatedInstruction { at } => {
                write!(f, "code truncated inside instruction at offset {at}")
            }
            Self::UnknownOpcode { opcode, at } => {
                write!(f, "unknown opcode {opcode:#04x} at offset {at}")
            }
        }
    }
}

impl Error for DisasmError {}

/// One decoded instruction with raw operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawOp {
    /// `nop`.
    Nop,
    /// `iconst_<n>` / `bipush` / `sipush` with the decoded immediate.
    Const {
        /// The immediate value.
        value: i32,
        /// Encoded width in bytes (1, 2, or 3).
        width: u8,
    },
    /// `ldc_w` of a pool entry.
    LdcW(u16),
    /// `iload` in short (`iload_<n>`), one-byte, or wide form.
    ILoad {
        /// Local slot.
        slot: u16,
        /// Encoded width (1, 2, or 4).
        width: u8,
    },
    /// `istore`, same forms as `iload`.
    IStore {
        /// Local slot.
        slot: u16,
        /// Encoded width (1, 2, or 4).
        width: u8,
    },
    /// `iinc` (short or wide form).
    IInc {
        /// Local slot.
        slot: u16,
        /// Increment.
        delta: i16,
        /// Encoded width (3 or 6).
        width: u8,
    },
    /// A one-byte arithmetic/stack/array opcode, kept verbatim.
    Simple(u8),
    /// `newarray` with its array-type code.
    NewArray(u8),
    /// `getstatic`/`putstatic` with the pool index.
    Static {
        /// The opcode (0xB2 or 0xB3).
        opcode: u8,
        /// Field-ref pool index.
        index: u16,
    },
    /// A branch with its relative 16-bit displacement.
    Branch {
        /// The opcode (`goto`, `ifeq`…`ifle`, `if_icmp*`).
        opcode: u8,
        /// Signed displacement from the opcode offset.
        delta: i16,
    },
    /// `invokestatic`/`invokevirtual` with the pool index.
    Invoke {
        /// The opcode (0xB8 or 0xB6).
        opcode: u8,
        /// Method-ref pool index.
        index: u16,
    },
}

impl RawOp {
    /// The mnemonic.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            RawOp::Nop => "nop",
            RawOp::Const { width: 1, .. } => "iconst",
            RawOp::Const { width: 2, .. } => "bipush",
            RawOp::Const { .. } => "sipush",
            RawOp::LdcW(_) => "ldc_w",
            RawOp::ILoad { .. } => "iload",
            RawOp::IStore { .. } => "istore",
            RawOp::IInc { .. } => "iinc",
            RawOp::Simple(op) => simple_mnemonic(*op),
            RawOp::NewArray(_) => "newarray",
            RawOp::Static { opcode: 0xB2, .. } => "getstatic",
            RawOp::Static { .. } => "putstatic",
            RawOp::Branch { opcode, .. } => branch_mnemonic(*opcode),
            RawOp::Invoke { opcode: 0xB8, .. } => "invokestatic",
            RawOp::Invoke { .. } => "invokevirtual",
        }
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            RawOp::Nop | RawOp::Simple(_) => 1,
            RawOp::Const { width, .. } => *width as usize,
            RawOp::NewArray(_) => 2,
            RawOp::LdcW(_)
            | RawOp::Static { .. }
            | RawOp::Branch { .. }
            | RawOp::Invoke { .. }
            | RawOp::IInc { width: 3, .. } => 3,
            RawOp::IInc { .. } => 6,
            RawOp::ILoad { width, .. } | RawOp::IStore { width, .. } => *width as usize,
        }
    }

    /// Re-encodes this instruction exactly as it was decoded.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RawOp::Nop => out.push(0x00),
            RawOp::Const { value, width: 1 } => out.push((0x03 + value) as u8),
            RawOp::Const { value, width: 2 } => {
                out.push(0x10);
                out.push(*value as i8 as u8);
            }
            RawOp::Const { value, .. } => {
                out.push(0x11);
                out.extend_from_slice(&(*value as i16).to_be_bytes());
            }
            RawOp::LdcW(i) => {
                out.push(0x13);
                out.extend_from_slice(&i.to_be_bytes());
            }
            RawOp::ILoad { slot, width: 1 } => out.push(0x1A + *slot as u8),
            RawOp::ILoad { slot, width: 2 } => {
                out.push(0x15);
                out.push(*slot as u8);
            }
            RawOp::ILoad { slot, .. } => {
                out.extend_from_slice(&[0xC4, 0x15]);
                out.extend_from_slice(&slot.to_be_bytes());
            }
            RawOp::IStore { slot, width: 1 } => out.push(0x3B + *slot as u8),
            RawOp::IStore { slot, width: 2 } => {
                out.push(0x36);
                out.push(*slot as u8);
            }
            RawOp::IStore { slot, .. } => {
                out.extend_from_slice(&[0xC4, 0x36]);
                out.extend_from_slice(&slot.to_be_bytes());
            }
            RawOp::IInc {
                slot,
                delta,
                width: 3,
            } => {
                out.push(0x84);
                out.push(*slot as u8);
                out.push(*delta as i8 as u8);
            }
            RawOp::IInc { slot, delta, .. } => {
                out.extend_from_slice(&[0xC4, 0x84]);
                out.extend_from_slice(&slot.to_be_bytes());
                out.extend_from_slice(&delta.to_be_bytes());
            }
            RawOp::Simple(op) => out.push(*op),
            RawOp::NewArray(t) => {
                out.push(0xBC);
                out.push(*t);
            }
            RawOp::Static { opcode, index } | RawOp::Invoke { opcode, index } => {
                out.push(*opcode);
                out.extend_from_slice(&index.to_be_bytes());
            }
            RawOp::Branch { opcode, delta } => {
                out.push(*opcode);
                out.extend_from_slice(&delta.to_be_bytes());
            }
        }
    }
}

fn simple_mnemonic(op: u8) -> &'static str {
    match op {
        0x2E => "iaload",
        0x4F => "iastore",
        0x57 => "pop",
        0x59 => "dup",
        0x5F => "swap",
        0x60 => "iadd",
        0x64 => "isub",
        0x68 => "imul",
        0x6C => "idiv",
        0x70 => "irem",
        0x74 => "ineg",
        0x78 => "ishl",
        0x7A => "ishr",
        0x7C => "iushr",
        0x7E => "iand",
        0x80 => "ior",
        0x82 => "ixor",
        0xAC => "ireturn",
        0xB1 => "return",
        0xBE => "arraylength",
        _ => "simple",
    }
}

fn branch_mnemonic(op: u8) -> &'static str {
    match op {
        0x99 => "ifeq",
        0x9A => "ifne",
        0x9B => "iflt",
        0x9C => "ifge",
        0x9D => "ifgt",
        0x9E => "ifle",
        0x9F => "if_icmpeq",
        0xA0 => "if_icmpne",
        0xA1 => "if_icmplt",
        0xA2 => "if_icmpge",
        0xA3 => "if_icmpgt",
        0xA4 => "if_icmple",
        0xA7 => "goto",
        _ => "branch",
    }
}

/// Decodes `code` into `(byte offset, RawOp)` pairs.
///
/// # Errors
///
/// [`DisasmError`] on truncation or an opcode outside the subset the
/// encoder emits.
pub fn decode(code: &[u8]) -> Result<Vec<(usize, RawOp)>, DisasmError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let need = |pos: usize, n: usize| -> Result<(), DisasmError> {
        if pos + n > code.len() {
            Err(DisasmError::TruncatedInstruction { at: pos })
        } else {
            Ok(())
        }
    };
    while pos < code.len() {
        let at = pos;
        let op = code[pos];
        let raw = match op {
            0x00 => RawOp::Nop,
            0x02..=0x08 => RawOp::Const {
                value: op as i32 - 0x03,
                width: 1,
            },
            0x10 => {
                need(pos, 2)?;
                RawOp::Const {
                    value: i32::from(code[pos + 1] as i8),
                    width: 2,
                }
            }
            0x11 => {
                need(pos, 3)?;
                let v = i16::from_be_bytes([code[pos + 1], code[pos + 2]]);
                RawOp::Const {
                    value: i32::from(v),
                    width: 3,
                }
            }
            0x13 => {
                need(pos, 3)?;
                RawOp::LdcW(u16::from_be_bytes([code[pos + 1], code[pos + 2]]))
            }
            0x15 => {
                need(pos, 2)?;
                RawOp::ILoad {
                    slot: u16::from(code[pos + 1]),
                    width: 2,
                }
            }
            0x1A..=0x1D => RawOp::ILoad {
                slot: u16::from(op - 0x1A),
                width: 1,
            },
            0x36 => {
                need(pos, 2)?;
                RawOp::IStore {
                    slot: u16::from(code[pos + 1]),
                    width: 2,
                }
            }
            0x3B..=0x3E => RawOp::IStore {
                slot: u16::from(op - 0x3B),
                width: 1,
            },
            0x84 => {
                need(pos, 3)?;
                RawOp::IInc {
                    slot: u16::from(code[pos + 1]),
                    delta: i16::from(code[pos + 2] as i8),
                    width: 3,
                }
            }
            0x2E | 0x4F | 0x57 | 0x59 | 0x5F | 0x60 | 0x64 | 0x68 | 0x6C | 0x70 | 0x74 | 0x78
            | 0x7A | 0x7C | 0x7E | 0x80 | 0x82 | 0xAC | 0xB1 | 0xBE => RawOp::Simple(op),
            0xBC => {
                need(pos, 2)?;
                RawOp::NewArray(code[pos + 1])
            }
            0xB2 | 0xB3 => {
                need(pos, 3)?;
                RawOp::Static {
                    opcode: op,
                    index: u16::from_be_bytes([code[pos + 1], code[pos + 2]]),
                }
            }
            0x99..=0xA4 | 0xA7 => {
                need(pos, 3)?;
                RawOp::Branch {
                    opcode: op,
                    delta: i16::from_be_bytes([code[pos + 1], code[pos + 2]]),
                }
            }
            0xB6 | 0xB8 => {
                need(pos, 3)?;
                RawOp::Invoke {
                    opcode: op,
                    index: u16::from_be_bytes([code[pos + 1], code[pos + 2]]),
                }
            }
            0xC4 => {
                need(pos, 2)?;
                match code[pos + 1] {
                    0x15 | 0x36 => {
                        need(pos, 4)?;
                        let slot = u16::from_be_bytes([code[pos + 2], code[pos + 3]]);
                        if code[pos + 1] == 0x15 {
                            RawOp::ILoad { slot, width: 4 }
                        } else {
                            RawOp::IStore { slot, width: 4 }
                        }
                    }
                    0x84 => {
                        need(pos, 6)?;
                        RawOp::IInc {
                            slot: u16::from_be_bytes([code[pos + 2], code[pos + 3]]),
                            delta: i16::from_be_bytes([code[pos + 4], code[pos + 5]]),
                            width: 6,
                        }
                    }
                    other => return Err(DisasmError::UnknownOpcode { opcode: other, at }),
                }
            }
            other => return Err(DisasmError::UnknownOpcode { opcode: other, at }),
        };
        pos += raw.size();
        out.push((at, raw));
    }
    Ok(out)
}

/// Resolves a pool index into a short human-readable form.
fn describe_constant(pool: &ConstantPool, index: u16) -> String {
    match pool.get(nonstrict_classfile::CpIndex(index)) {
        Some(Constant::Integer(v)) => format!("int {v}"),
        Some(Constant::String { utf8 }) => {
            let s = pool.utf8_at(*utf8).unwrap_or("?");
            format!("string {s:?}")
        }
        Some(Constant::FieldRef {
            class,
            name_and_type,
        })
        | Some(Constant::MethodRef {
            class,
            name_and_type,
        })
        | Some(Constant::InterfaceMethodRef {
            class,
            name_and_type,
        }) => {
            let cname = match pool.get(*class) {
                Some(Constant::Class { name }) => pool.utf8_at(*name).unwrap_or("?"),
                _ => "?",
            };
            let (n, d) = match pool.get(*name_and_type) {
                Some(Constant::NameAndType { name, descriptor }) => (
                    pool.utf8_at(*name).unwrap_or("?"),
                    pool.utf8_at(*descriptor).unwrap_or("?"),
                ),
                _ => ("?", "?"),
            };
            format!("{cname}.{n}{d}")
        }
        Some(c) => format!("{c:?}"),
        None => format!("#{index}?"),
    }
}

/// Renders a javap-flavoured listing of `code`, resolving pool operands.
///
/// ```
/// use nonstrict_bytecode::listing;
/// use nonstrict_classfile::ConstantPool;
///
/// // iconst_2; iconst_3; imul; ireturn
/// let text = listing(&[0x05, 0x06, 0x68, 0xAC], &ConstantPool::new()).unwrap();
/// assert!(text.contains("imul"));
/// assert!(text.contains("ireturn"));
/// ```
///
/// # Errors
///
/// Propagates decode failures.
pub fn listing(code: &[u8], pool: &ConstantPool) -> Result<String, DisasmError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (offset, op) in decode(code)? {
        let _ = write!(out, "{offset:>6}: {:<14}", op.mnemonic());
        match &op {
            RawOp::Const { value, .. } => {
                let _ = write!(out, "{value}");
            }
            RawOp::LdcW(i) => {
                let _ = write!(out, "#{i} // {}", describe_constant(pool, *i));
            }
            RawOp::ILoad { slot, .. } | RawOp::IStore { slot, .. } => {
                let _ = write!(out, "{slot}");
            }
            RawOp::IInc { slot, delta, .. } => {
                let _ = write!(out, "{slot}, {delta}");
            }
            RawOp::NewArray(t) => {
                let _ = write!(out, "{}", if *t == 10 { "int" } else { "?" });
            }
            RawOp::Static { index, .. } | RawOp::Invoke { index, .. } => {
                let _ = write!(out, "#{index} // {}", describe_constant(pool, *index));
            }
            RawOp::Branch { delta, .. } => {
                let _ = write!(out, "{}", offset as i64 + i64::from(*delta));
            }
            RawOp::Nop | RawOp::Simple(_) => {}
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_method;
    use crate::program::Program;

    fn roundtrip(code: &[u8]) {
        let decoded = decode(code).unwrap();
        let mut re = Vec::with_capacity(code.len());
        for (_, op) in &decoded {
            op.encode_into(&mut re);
        }
        assert_eq!(re, code);
    }

    #[test]
    fn every_hanoi_method_roundtrips() {
        let app = build_hanoi_like();
        let mut pool = ConstantPool::new();
        for (id, _) in app.iter_methods() {
            let enc = encode_method(&app, id, &mut pool).unwrap();
            roundtrip(&enc.code);
        }
    }

    fn build_hanoi_like() -> Program {
        use crate::builder::MethodBuilder;
        use crate::program::{ClassDef, StaticDef};
        use crate::{Cond, MethodId, RuntimeFn};
        let mut c = ClassDef::new("d/T");
        c.add_static(StaticDef::int("s", 0));
        let mut main = MethodBuilder::new("main", 1);
        main.iconst(1_000_000).istore(300); // forces ldc_w + wide forms
        main.iinc(300, 1000);
        main.ldc_str("hello");
        main.invoke_runtime(RuntimeFn::HashCode);
        main.pop();
        let head = main.new_label();
        let exit = main.new_label();
        main.bind(head);
        main.iload(0).if_(Cond::Le, exit);
        main.getstatic(0, 0).iconst(1).iadd().putstatic(0, 0);
        main.iconst(4).newarray().iconst(0).iconst(7).iastore();
        main.iinc(0, -1).goto(head);
        main.bind(exit);
        main.invoke(MethodId::new(0, 1));
        main.ret();
        c.add_method(main.finish());
        let mut f = MethodBuilder::new("f", 0);
        f.ret();
        c.add_method(f.finish());
        Program::new(vec![c], "d/T", "main").unwrap()
    }

    #[test]
    fn decode_reports_offsets_and_sizes_consistently() {
        let app = build_hanoi_like();
        let mut pool = ConstantPool::new();
        let enc = encode_method(&app, app.entry(), &mut pool).unwrap();
        let ops = decode(&enc.code).unwrap();
        let mut expect = 0usize;
        for (offset, op) in &ops {
            assert_eq!(*offset, expect);
            expect += op.size();
        }
        assert_eq!(expect, enc.code.len());
    }

    #[test]
    fn listing_resolves_pool_operands() {
        let app = build_hanoi_like();
        let mut pool = ConstantPool::new();
        let enc = encode_method(&app, app.entry(), &mut pool).unwrap();
        let text = listing(&enc.code, &pool).unwrap();
        assert!(text.contains("ldc_w"), "{text}");
        assert!(text.contains("string \"hello\""), "{text}");
        assert!(text.contains("getstatic"), "{text}");
        assert!(text.contains("invokestatic"), "{text}");
    }

    #[test]
    fn truncation_is_detected() {
        let code = [0x10u8]; // bipush missing its immediate
        assert!(matches!(
            decode(&code),
            Err(DisasmError::TruncatedInstruction { at: 0 })
        ));
    }

    #[test]
    fn unknown_opcode_is_detected() {
        let code = [0xFFu8];
        assert!(matches!(
            decode(&code),
            Err(DisasmError::UnknownOpcode {
                opcode: 0xFF,
                at: 0
            })
        ));
    }
}
