//! Program containers: methods, classes, whole programs, and lowered
//! [`Application`]s ready for the transfer experiments.

use std::fmt;

use nonstrict_classfile::{ClassFile, CpIndex};

use crate::error::BytecodeError;
use crate::ids::{ClassId, MethodId};
use crate::instr::Instruction;

/// A static field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticDef {
    /// Field name.
    pub name: String,
    /// Field descriptor (always `I` in the integer model, but kept for
    /// realism in pool composition).
    pub descriptor: String,
    /// Initial value installed before `main` runs (preparation step).
    pub initial: i64,
    /// Whether to emit a `ConstantValue` attribute (static final).
    pub constant: bool,
}

impl StaticDef {
    /// An `int` static initialized to `initial`.
    #[must_use]
    pub fn int(name: impl Into<String>, initial: i64) -> Self {
        StaticDef {
            name: name.into(),
            descriptor: "I".to_owned(),
            initial,
            constant: false,
        }
    }
}

/// One method: signature, body, and local-data calibration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// Number of `int` arguments.
    pub arity: u16,
    /// Whether the method returns an `int` (`ireturn`) or is void.
    pub returns_value: bool,
    /// The body, in instruction-index space.
    pub body: Vec<Instruction>,
    /// Operand-stack limit; computed by verification in
    /// [`Program::new`].
    pub max_stack: u16,
    /// Local-slot count (arguments first).
    pub max_locals: u16,
    /// Number of `LineNumberTable` entries to emit — the main calibration
    /// knob for per-method *local data* (real 1.1-era javac emitted about
    /// one entry per source line).
    pub line_entries: u16,
}

impl MethodDef {
    /// Creates a method; `max_stack`/`max_locals` are finalized by
    /// [`Program::new`].
    #[must_use]
    pub fn new(name: impl Into<String>, arity: u16, body: Vec<Instruction>) -> Self {
        MethodDef {
            name: name.into(),
            arity,
            returns_value: false,
            body,
            max_stack: 0,
            max_locals: arity,
            line_entries: 0,
        }
    }

    /// The JVM descriptor string, e.g. `(II)I`.
    #[must_use]
    pub fn descriptor(&self) -> String {
        let mut d = String::with_capacity(self.arity as usize + 3);
        d.push('(');
        for _ in 0..self.arity {
            d.push('I');
        }
        d.push(')');
        d.push(if self.returns_value { 'I' } else { 'V' });
        d
    }

    /// Exact encoded bytecode size in bytes.
    #[must_use]
    pub fn code_size(&self) -> u32 {
        self.body.iter().map(Instruction::byte_size).sum()
    }

    /// Number of static instructions.
    #[must_use]
    pub fn instruction_count(&self) -> u32 {
        self.body.len() as u32
    }
}

/// One class: statics, methods (source order), and pool-composition
/// calibration data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassDef {
    /// Internal-form class name.
    pub name: String,
    /// Static fields.
    pub statics: Vec<StaticDef>,
    /// Methods in source order.
    pub methods: Vec<MethodDef>,
    /// Interfaces implemented (internal form names).
    pub interfaces: Vec<String>,
    /// `SourceFile` attribute value.
    pub source_file: Option<String>,
    /// String constants present in the pool but never referenced by
    /// structure or code (debug remnants; feeds Table 9's "% unused").
    pub unused_strings: Vec<String>,
    /// Integer constants present in the pool but never referenced.
    pub unused_ints: Vec<i32>,
}

impl ClassDef {
    /// Creates an empty class.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            ..ClassDef::default()
        }
    }

    /// Appends a method, returning its [`MethodId`] component index.
    pub fn add_method(&mut self, method: MethodDef) -> u16 {
        self.methods.push(method);
        (self.methods.len() - 1) as u16
    }

    /// Appends a static field, returning its field index.
    pub fn add_static(&mut self, field: StaticDef) -> u16 {
        self.statics.push(field);
        (self.statics.len() - 1) as u16
    }
}

/// A verified program: classes plus a designated entry method.
#[derive(Debug, Clone)]
pub struct Program {
    classes: Vec<ClassDef>,
    entry: MethodId,
    method_count: usize,
    /// Prefix sums for global method indexing.
    method_base: Vec<usize>,
}

impl Program {
    /// Builds and verifies a program.
    ///
    /// Verification checks branch targets, call targets, static
    /// references, local-slot bounds, stack discipline (computing each
    /// method's exact `max_stack`), and that no path falls off a method
    /// end.
    ///
    /// # Errors
    ///
    /// The first [`BytecodeError`] found.
    pub fn new(
        mut classes: Vec<ClassDef>,
        entry_class: &str,
        entry_method: &str,
    ) -> Result<Self, BytecodeError> {
        if classes.len() > u16::MAX as usize {
            return Err(BytecodeError::TooLarge("classes"));
        }
        for c in &classes {
            if c.methods.len() > u16::MAX as usize {
                return Err(BytecodeError::TooLarge("methods"));
            }
        }
        // Duplicate names make class lookup (and so first-use prediction
        // and incremental linking) ambiguous: fail closed.
        let mut names: Vec<&str> = classes.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(BytecodeError::DuplicateClassName(w[0].to_owned()));
        }
        let entry_ci = classes
            .iter()
            .position(|c| c.name == entry_class)
            .ok_or_else(|| BytecodeError::NoEntryClass(entry_class.to_owned()))?;
        let entry_mi = classes[entry_ci]
            .methods
            .iter()
            .position(|m| m.name == entry_method)
            .ok_or_else(|| BytecodeError::NoEntryMethod(entry_method.to_owned()))?;
        let entry = MethodId::new(entry_ci as u16, entry_mi as u16);

        let mut method_base = Vec::with_capacity(classes.len());
        let mut total = 0usize;
        for c in &classes {
            method_base.push(total);
            total += c.methods.len();
        }

        // Verify each method (also finalizes max_stack / max_locals).
        let snapshot = classes.clone();
        let view = ProgramView { classes: &snapshot };
        for (ci, class) in classes.iter_mut().enumerate() {
            for (mi, method) in class.methods.iter_mut().enumerate() {
                let id = MethodId::new(ci as u16, mi as u16);
                crate::verify::check_method(&view, id, method)?;
            }
        }

        Ok(Program {
            classes,
            entry,
            method_count: total,
            method_base,
        })
    }

    /// The entry method (`main`).
    #[must_use]
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// Re-verifies one method against the finished program — the
    /// incremental check the non-strict loader runs when the method's
    /// delimiter arrives (steps 3–4 of §3.1.1, per method).
    ///
    /// Beyond the structural checks of construction-time verification,
    /// this confirms the declared `max_stack` still matches what
    /// abstract interpretation computes, so a tampered `Code` attribute
    /// cannot slip through.
    ///
    /// # Errors
    ///
    /// The first [`BytecodeError`] found.
    pub fn verify_method(&self, id: MethodId) -> Result<(), BytecodeError> {
        let view = ProgramView {
            classes: &self.classes,
        };
        let method = self.method(id);
        let (max_stack, _) = crate::verify::analyze_method(&view, id, method)?;
        if max_stack != method.max_stack {
            return Err(BytecodeError::DeclaredLimitMismatch {
                method: id,
                declared_stack: method.max_stack,
                computed_stack: max_stack,
            });
        }
        Ok(())
    }

    /// All classes in source order.
    #[must_use]
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// Looks up a class.
    #[must_use]
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Looks up a method.
    #[must_use]
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.classes[id.class.0 as usize].methods[id.method as usize]
    }

    /// Whether `id` names an existing method.
    #[must_use]
    pub fn contains_method(&self, id: MethodId) -> bool {
        (id.class.0 as usize) < self.classes.len()
            && (id.method as usize) < self.classes[id.class.0 as usize].methods.len()
    }

    /// Total number of methods.
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.method_count
    }

    /// Total number of classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Dense global index of a method (for flat per-method tables).
    #[must_use]
    pub fn global_index(&self, id: MethodId) -> usize {
        self.method_base[id.class.0 as usize] + id.method as usize
    }

    /// Inverse of [`Program::global_index`].
    #[must_use]
    pub fn method_id_at(&self, global: usize) -> MethodId {
        let ci = match self.method_base.binary_search(&global) {
            Ok(i) => {
                // May land on an empty class's base; advance to the class
                // that actually owns this index.
                let mut i = i;
                while self.classes[i].methods.is_empty() {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        MethodId::new(ci as u16, (global - self.method_base[ci]) as u16)
    }

    /// Iterates `(MethodId, &MethodDef)` over all methods in source order.
    pub fn iter_methods(&self) -> impl Iterator<Item = (MethodId, &MethodDef)> {
        self.classes.iter().enumerate().flat_map(|(ci, c)| {
            c.methods
                .iter()
                .enumerate()
                .map(move |(mi, m)| (MethodId::new(ci as u16, mi as u16), m))
        })
    }

    /// Total static instruction count over all methods (Table 2's
    /// "Static Instructions").
    #[must_use]
    pub fn static_instruction_count(&self) -> u64 {
        self.iter_methods()
            .map(|(_, m)| u64::from(m.instruction_count()))
            .sum()
    }
}

/// A read-only view used during verification (before `Program` exists).
pub(crate) struct ProgramView<'a> {
    pub(crate) classes: &'a [ClassDef],
}

impl ProgramView<'_> {
    pub(crate) fn method(&self, id: MethodId) -> Option<&MethodDef> {
        self.classes
            .get(id.class.0 as usize)?
            .methods
            .get(id.method as usize)
    }

    pub(crate) fn static_exists(&self, class: u16, field: u16) -> bool {
        self.classes
            .get(class as usize)
            .is_some_and(|c| (field as usize) < c.statics.len())
    }
}

/// Which benchmark input to run — the paper uses a large **Test** input
/// (reported) and a smaller **Train** input (for realistic profiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Input {
    /// The reporting input.
    Test,
    /// The profiling input.
    Train,
}

impl fmt::Display for Input {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Input::Test => "test",
            Input::Train => "train",
        })
    }
}

/// A rational scale applied to serialized byte counts before they meet
/// the link model.
///
/// The paper's Table 3 transfer cycles imply 1.6–2.9× more wire bytes
/// than its Table 2 class-file sizes (its classes were BIT-instrumented
/// and carried transport overhead). `WireScale` is the per-application
/// calibration knob that reconciles the two; `WireScale::IDENTITY` turns
/// it off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireScale {
    /// Numerator.
    pub num: u32,
    /// Denominator.
    pub den: u32,
}

impl WireScale {
    /// No scaling.
    pub const IDENTITY: WireScale = WireScale { num: 1, den: 1 };

    /// A scale of `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: u32, den: u32) -> Self {
        assert!(den != 0, "wire scale denominator must be nonzero");
        WireScale { num, den }
    }

    /// Applies the scale to a byte count, rounding to nearest.
    #[must_use]
    pub fn apply(self, bytes: u32) -> u64 {
        (u64::from(bytes) * u64::from(self.num) + u64::from(self.den) / 2) / u64::from(self.den)
    }
}

impl Default for WireScale {
    fn default() -> Self {
        WireScale::IDENTITY
    }
}

/// A program lowered to class files, plus the per-benchmark simulation
/// parameters: everything the transfer experiments consume.
#[derive(Debug, Clone)]
pub struct Application {
    /// Benchmark name (e.g. `"Jess"`).
    pub name: String,
    /// The verified program.
    pub program: Program,
    /// Lowered class files, parallel to `program.classes()`, methods in
    /// source order.
    pub classes: Vec<ClassFile>,
    /// Per method (global index): constant-pool indices directly
    /// referenced by its encoded code.
    pub code_usage: Vec<Vec<CpIndex>>,
    /// Average machine cycles per bytecode instruction (the paper's
    /// Table 3 CPI; models the 500 MHz Alpha).
    pub cpi: u64,
    /// Wire-byte calibration (see [`WireScale`]).
    pub wire_scale: WireScale,
    /// Arguments passed to `main` for [`Input::Test`].
    pub test_args: Vec<i64>,
    /// Arguments passed to `main` for [`Input::Train`].
    pub train_args: Vec<i64>,
}

impl Application {
    /// Lowers `program` to class files and assembles an application.
    ///
    /// # Errors
    ///
    /// Propagates class-file construction failures.
    pub fn from_program(
        name: impl Into<String>,
        program: Program,
        cpi: u64,
    ) -> Result<Self, BytecodeError> {
        let lowered = crate::lower::lower_program(&program)?;
        Ok(Application {
            name: name.into(),
            program,
            classes: lowered.classes,
            code_usage: lowered.code_usage,
            cpi,
            wire_scale: WireScale::IDENTITY,
            test_args: Vec::new(),
            train_args: Vec::new(),
        })
    }

    /// The `main` arguments for `input`.
    #[must_use]
    pub fn args(&self, input: Input) -> &[i64] {
        match input {
            Input::Test => &self.test_args,
            Input::Train => &self.train_args,
        }
    }

    /// Total serialized size of all class files in bytes (unscaled).
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.classes.iter().map(|c| u64::from(c.total_size())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instruction as I;

    fn tiny_program() -> Program {
        let mut a = ClassDef::new("t/A");
        a.add_method(MethodDef::new("main", 0, vec![I::Return]));
        a.add_method(MethodDef::new("f", 1, vec![I::ILoad(0), I::IReturn]).with_return());
        let mut b = ClassDef::new("t/B");
        b.add_method(MethodDef::new("g", 0, vec![I::Return]));
        Program::new(vec![a, b], "t/A", "main").unwrap()
    }

    impl MethodDef {
        fn with_return(mut self) -> Self {
            self.returns_value = true;
            self
        }
    }

    #[test]
    fn entry_resolves() {
        let p = tiny_program();
        assert_eq!(p.entry(), MethodId::new(0, 0));
    }

    #[test]
    fn duplicate_class_names_fail_closed() {
        let mut a = ClassDef::new("t/A");
        a.add_method(MethodDef::new("main", 0, vec![I::Return]));
        let b = ClassDef::new("t/A");
        let err = Program::new(vec![a, b], "t/A", "main").unwrap_err();
        assert_eq!(err, BytecodeError::DuplicateClassName("t/A".to_owned()));
    }

    #[test]
    fn missing_entry_class_errors() {
        let a = ClassDef::new("t/A");
        let err = Program::new(vec![a], "t/Zed", "main").unwrap_err();
        assert!(matches!(err, BytecodeError::NoEntryClass(_)));
    }

    #[test]
    fn missing_entry_method_errors() {
        let a = ClassDef::new("t/A");
        let err = Program::new(vec![a], "t/A", "main").unwrap_err();
        assert!(matches!(err, BytecodeError::NoEntryMethod(_)));
    }

    #[test]
    fn global_index_roundtrips() {
        let p = tiny_program();
        for (id, _) in p.iter_methods() {
            assert_eq!(p.method_id_at(p.global_index(id)), id);
        }
        assert_eq!(p.method_count(), 3);
    }

    #[test]
    fn descriptor_forms() {
        let m0 = MethodDef::new("v", 0, vec![I::Return]);
        assert_eq!(m0.descriptor(), "()V");
        let mut m2 = MethodDef::new("f", 2, vec![I::IConst(0), I::IReturn]);
        m2.returns_value = true;
        assert_eq!(m2.descriptor(), "(II)I");
    }

    #[test]
    fn code_size_sums_instruction_sizes() {
        let m = MethodDef::new("m", 0, vec![I::IConst(0), I::IConst(1000), I::Return]);
        assert_eq!(m.code_size(), 1 + 3 + 1);
        assert_eq!(m.instruction_count(), 3);
    }

    #[test]
    fn wire_scale_rounds_to_nearest() {
        let s = WireScale::new(3, 2);
        assert_eq!(s.apply(100), 150);
        assert_eq!(s.apply(1), 2); // 1.5 rounds up
        assert_eq!(WireScale::IDENTITY.apply(7), 7);
    }

    #[test]
    fn static_instruction_count_sums() {
        let p = tiny_program();
        assert_eq!(p.static_instruction_count(), 1 + 2 + 1);
    }
}
