//! Error types for program construction and interpretation.

use std::error::Error;
use std::fmt;

use crate::ids::{ClassId, MethodId};

/// Errors from building, verifying, or encoding programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BytecodeError {
    /// The named entry class was not found in the program.
    NoEntryClass(String),
    /// The named entry method was not found in the entry class.
    NoEntryMethod(String),
    /// A branch target pointed outside the method body.
    BadBranchTarget {
        /// The offending method.
        method: MethodId,
        /// Index of the branching instruction.
        at: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A call referenced a method that does not exist.
    BadCallTarget {
        /// The calling method.
        method: MethodId,
        /// The dangling callee.
        target: MethodId,
    },
    /// A static access referenced a missing class or field.
    BadStaticRef {
        /// The accessing method.
        method: MethodId,
        /// Referenced class index.
        class: u16,
        /// Referenced field index.
        field: u16,
    },
    /// A method body does not end every path with a return.
    FallsOffEnd(MethodId),
    /// Operand-stack effect is inconsistent (underflow or mismatched
    /// depths at a join point).
    StackMismatch {
        /// The offending method.
        method: MethodId,
        /// Instruction index where the inconsistency was found.
        at: u32,
    },
    /// A local-variable slot index exceeded the method's `max_locals`.
    BadLocal {
        /// The offending method.
        method: MethodId,
        /// The out-of-range slot.
        slot: u16,
    },
    /// Two classes in one program share an internal name; first-use
    /// prediction and linking would be ambiguous, so loading fails
    /// closed.
    DuplicateClassName(String),
    /// A re-verified method's declared limits did not match what
    /// verification computed (a tampered or stale `Code` attribute).
    DeclaredLimitMismatch {
        /// The offending method.
        method: MethodId,
        /// Declared `max_stack`.
        declared_stack: u16,
        /// Computed `max_stack`.
        computed_stack: u16,
    },
    /// Too many classes or methods for the 16-bit id space.
    TooLarge(&'static str),
    /// An error bubbled up from class-file construction during lowering.
    ClassFile(nonstrict_classfile::ClassFileError),
}

impl fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoEntryClass(name) => write!(f, "entry class {name:?} not found"),
            Self::NoEntryMethod(name) => write!(f, "entry method {name:?} not found"),
            Self::BadBranchTarget { method, at, target } => {
                write!(
                    f,
                    "branch at {method}:{at} targets out-of-range instruction {target}"
                )
            }
            Self::BadCallTarget { method, target } => {
                write!(f, "call in {method} references missing method {target}")
            }
            Self::BadStaticRef {
                method,
                class,
                field,
            } => {
                write!(
                    f,
                    "static access in {method} references missing C{class}.f{field}"
                )
            }
            Self::FallsOffEnd(m) => write!(f, "method {m} can fall off the end of its code"),
            Self::StackMismatch { method, at } => {
                write!(
                    f,
                    "inconsistent operand stack in {method} at instruction {at}"
                )
            }
            Self::BadLocal { method, slot } => {
                write!(f, "local slot {slot} out of range in {method}")
            }
            Self::DuplicateClassName(name) => {
                write!(f, "duplicate class name {name:?} in program")
            }
            Self::DeclaredLimitMismatch {
                method,
                declared_stack,
                computed_stack,
            } => {
                write!(
                    f,
                    "method {method} declares max_stack {declared_stack} but verification computed {computed_stack}"
                )
            }
            Self::TooLarge(what) => write!(f, "too many {what} for 16-bit id space"),
            Self::ClassFile(e) => write!(f, "class file construction failed: {e}"),
        }
    }
}

impl Error for BytecodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::ClassFile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nonstrict_classfile::ClassFileError> for BytecodeError {
    fn from(e: nonstrict_classfile::ClassFileError) -> Self {
        BytecodeError::ClassFile(e)
    }
}

/// Errors raised while interpreting a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterpError {
    /// Pop from an empty operand stack.
    StackUnderflow(MethodId),
    /// Integer division or remainder by zero.
    DivisionByZero(MethodId),
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// The faulting method.
        method: MethodId,
        /// Index used.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// A value used as an array reference did not name a live array.
    BadArrayRef(MethodId),
    /// Negative array length at allocation.
    NegativeArraySize(MethodId),
    /// The configured instruction budget was exhausted (runaway guard).
    BudgetExhausted {
        /// Instructions executed when the budget tripped.
        executed: u64,
    },
    /// Call stack exceeded the configured depth limit.
    CallStackOverflow(MethodId),
    /// Static field index out of range at run time.
    BadStatic(ClassId, u16),
    /// `main` returned a value although declared void, or vice versa.
    ReturnMismatch(MethodId),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::StackUnderflow(m) => write!(f, "operand stack underflow in {m}"),
            Self::DivisionByZero(m) => write!(f, "division by zero in {m}"),
            Self::IndexOutOfBounds { method, index, len } => {
                write!(
                    f,
                    "array index {index} out of bounds for length {len} in {method}"
                )
            }
            Self::BadArrayRef(m) => write!(f, "dangling array reference in {m}"),
            Self::NegativeArraySize(m) => write!(f, "negative array size in {m}"),
            Self::BudgetExhausted { executed } => {
                write!(
                    f,
                    "instruction budget exhausted after {executed} instructions"
                )
            }
            Self::CallStackOverflow(m) => write!(f, "call stack overflow entering {m}"),
            Self::BadStatic(c, i) => write!(f, "static field {c}.f{i} out of range"),
            Self::ReturnMismatch(m) => write!(f, "return arity mismatch in {m}"),
        }
    }
}

impl Error for InterpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BytecodeError>();
        assert_send_sync::<InterpError>();
    }

    #[test]
    fn classfile_error_converts() {
        let e: BytecodeError = nonstrict_classfile::ClassFileError::ConstantPoolOverflow.into();
        assert!(matches!(e, BytecodeError::ClassFile(_)));
        assert!(Error::source(&e).is_some());
    }
}
