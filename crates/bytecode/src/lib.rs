//! # nonstrict-bytecode
//!
//! A JVM-flavoured bytecode substrate: a ~50-opcode integer instruction
//! set with real JVM opcode encodings and byte sizes, method/program
//! containers, control-flow graphs with loop analysis, a structural
//! verifier, and a fast stack-machine interpreter with instrumentation
//! hooks (the BIT analog of the ASPLOS '98 paper).
//!
//! The six benchmark programs in `nonstrict-workloads` are written against
//! this instruction set, lowered to real class files through [`lower`],
//! and executed for real through [`interp`] to produce the dynamic traces
//! and first-use profiles the paper's experiments need.
//!
//! ```
//! use nonstrict_bytecode::builder::MethodBuilder;
//! use nonstrict_bytecode::instr::Instruction as I;
//! use nonstrict_bytecode::program::{ClassDef, Program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A one-class program whose main computes 6 * 7.
//! let mut main = MethodBuilder::new("main", 0);
//! main.push(I::IConst(6)).push(I::IConst(7)).push(I::IMul).push(I::IReturn);
//! let mut class = ClassDef::new("demo/Main");
//! class.add_method(main.finish());
//! let program = Program::new(vec![class], "demo/Main", "main")?;
//! let mut interp = nonstrict_bytecode::interp::Interpreter::new(&program);
//! let result = interp.run(&[], &mut ())?;
//! assert_eq!(result, Some(42));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod cfg;
pub mod disasm;
pub mod encode;
pub mod error;
pub mod ids;
pub mod instr;
pub mod interp;
pub mod loops;
pub mod lower;
pub mod program;
pub mod verify;

pub use builder::MethodBuilder;
pub use disasm::{decode, listing, DisasmError, RawOp};
pub use encode::encode_method;
pub use error::{BytecodeError, InterpError};
pub use ids::{ClassId, MethodId};
pub use instr::{CallKind, Cond, Instruction, Label, RuntimeFn, StaticRef};
pub use interp::{EventSink, Interpreter};
pub use program::{Application, ClassDef, Input, MethodDef, Program, StaticDef};
pub use verify::{method_verify_cost, VERIFY_CYCLES_PER_CODE_BYTE, VERIFY_CYCLES_PER_INSTRUCTION};
