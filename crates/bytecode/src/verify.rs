//! Structural bytecode verification.
//!
//! This models steps 3–4 of the JVM's five-step class verification (§3.1.1
//! of the paper): per-method structural checks that run as each method
//! arrives. It validates branch targets, call targets, static references,
//! and stack discipline via abstract interpretation, and computes the
//! exact `max_stack`/`max_locals` the lowered `Code` attribute declares.

use crate::error::BytecodeError;
use crate::ids::MethodId;
use crate::instr::Instruction;
use crate::program::{MethodDef, ProgramView};

/// Pops/pushes of one instruction, given callee arities from `view`.
fn stack_effect(view: &ProgramView<'_>, instr: &Instruction) -> (u16, u16) {
    use Instruction as I;
    match instr {
        I::IConst(_) | I::LdcString(_) | I::ILoad(_) | I::GetStatic(_) => (0, 1),
        I::IStore(_) | I::Pop | I::If(..) | I::PutStatic(_) => (1, 0),
        I::IInc(..) | I::Nop | I::Goto(_) | I::Return => (0, 0),
        I::IAdd
        | I::ISub
        | I::IMul
        | I::IDiv
        | I::IRem
        | I::IAnd
        | I::IOr
        | I::IXor
        | I::IShl
        | I::IShr
        | I::IUShr => (2, 1),
        I::INeg | I::NewArray | I::ArrayLength => (1, 1),
        I::Dup => (1, 2),
        I::Swap => (2, 2),
        I::IALoad => (2, 1),
        I::IAStore => (3, 0),
        I::IfICmp(..) => (2, 0),
        I::IReturn => (1, 0),
        I::Invoke { target, .. } => {
            let (arity, ret) = view
                .method(*target)
                .map(|m| (m.arity, u16::from(m.returns_value)))
                .unwrap_or((0, 0));
            (arity, ret)
        }
        I::InvokeRuntime(rt) => rt.stack_effect(),
    }
}

/// Deterministic cycle charge for verifying one method at delimiter
/// arrival: the verifier makes a constant number of passes over the
/// instruction list (reference checks, then abstract interpretation),
/// plus a per-byte decode charge.
pub const VERIFY_CYCLES_PER_INSTRUCTION: u64 = 40;

/// Per-code-byte decode component of the verify charge.
pub const VERIFY_CYCLES_PER_CODE_BYTE: u64 = 6;

/// Cycles charged to verify `method` incrementally (the paper-model cost
/// of steps 3–4 for one method, used by the simulator's `verify_cycles`
/// accounting bucket).
#[must_use]
pub fn method_verify_cost(method: &MethodDef) -> u64 {
    u64::from(method.instruction_count()) * VERIFY_CYCLES_PER_INSTRUCTION
        + u64::from(method.code_size()) * VERIFY_CYCLES_PER_CODE_BYTE
}

/// Verifies `method` and finalizes its `max_stack` and `max_locals`.
///
/// # Errors
///
/// The first structural violation found; see [`BytecodeError`].
pub(crate) fn check_method(
    view: &ProgramView<'_>,
    id: MethodId,
    method: &mut MethodDef,
) -> Result<(), BytecodeError> {
    let (max_stack, max_locals) = analyze_method(view, id, method)?;
    method.max_stack = max_stack;
    method.max_locals = max_locals;
    Ok(())
}

/// Read-only verification pass: checks the method and returns the
/// computed `(max_stack, max_locals)` without mutating anything, so it
/// can re-run against a finished [`crate::program::Program`] when a
/// method streams in.
pub(crate) fn analyze_method(
    view: &ProgramView<'_>,
    id: MethodId,
    method: &MethodDef,
) -> Result<(u16, u16), BytecodeError> {
    let body = &method.body;
    let len = body.len() as u32;

    // Reference checks and max_locals.
    let mut max_local = method.arity;
    for (i, instr) in body.iter().enumerate() {
        if let Some(target) = instr.branch_target() {
            if target.0 >= len {
                return Err(BytecodeError::BadBranchTarget {
                    method: id,
                    at: i as u32,
                    target: target.0,
                });
            }
        }
        match instr {
            Instruction::Invoke { target, .. } if view.method(*target).is_none() => {
                return Err(BytecodeError::BadCallTarget {
                    method: id,
                    target: *target,
                });
            }
            Instruction::GetStatic(r) | Instruction::PutStatic(r)
                if !view.static_exists(r.class, r.field) =>
            {
                return Err(BytecodeError::BadStaticRef {
                    method: id,
                    class: r.class,
                    field: r.field,
                });
            }
            Instruction::ILoad(s) | Instruction::IStore(s) | Instruction::IInc(s, _) => {
                if *s == u16::MAX {
                    return Err(BytecodeError::BadLocal {
                        method: id,
                        slot: *s,
                    });
                }
                max_local = max_local.max(s + 1);
            }
            _ => {}
        }
    }

    // Abstract interpretation of stack depth.
    let mut depth_at: Vec<Option<u16>> = vec![None; body.len()];
    let mut max_depth: u16 = 0;
    let mut work: Vec<(u32, u16)> = Vec::new();
    if !body.is_empty() {
        work.push((0, 0));
    }
    while let Some((pc, depth)) = work.pop() {
        match depth_at[pc as usize] {
            Some(d) if d == depth => continue,
            Some(_) => return Err(BytecodeError::StackMismatch { method: id, at: pc }),
            None => depth_at[pc as usize] = Some(depth),
        }
        let instr = &body[pc as usize];
        let (pops, pushes) = stack_effect(view, instr);
        if depth < pops {
            return Err(BytecodeError::StackMismatch { method: id, at: pc });
        }
        let next_depth = depth - pops + pushes;
        max_depth = max_depth.max(next_depth);
        if let Some(t) = instr.branch_target() {
            work.push((t.0, next_depth));
        }
        if instr.falls_through() {
            if pc + 1 >= len {
                return Err(BytecodeError::FallsOffEnd(id));
            }
            work.push((pc + 1, next_depth));
        }
    }
    if body.is_empty() {
        return Err(BytecodeError::FallsOffEnd(id));
    }

    Ok((max_depth, max_local))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Instruction as I, Label, StaticRef};
    use crate::program::{ClassDef, MethodDef, Program, StaticDef};

    fn program_of(body: Vec<I>) -> Result<Program, BytecodeError> {
        let mut a = ClassDef::new("v/A");
        a.add_static(StaticDef::int("s", 0));
        a.add_method(MethodDef::new("main", 0, body));
        Program::new(vec![a], "v/A", "main")
    }

    #[test]
    fn straightline_ok_and_max_stack_computed() {
        let p = program_of(vec![I::IConst(1), I::IConst(2), I::IAdd, I::Pop, I::Return]).unwrap();
        let m = p.method(p.entry());
        assert_eq!(m.max_stack, 2);
    }

    #[test]
    fn falls_off_end_detected() {
        let err = program_of(vec![I::IConst(1), I::Pop]).unwrap_err();
        assert!(matches!(err, BytecodeError::FallsOffEnd(_)));
    }

    #[test]
    fn empty_body_rejected() {
        let err = program_of(vec![]).unwrap_err();
        assert!(matches!(err, BytecodeError::FallsOffEnd(_)));
    }

    #[test]
    fn underflow_detected() {
        let err = program_of(vec![I::IAdd, I::Return]).unwrap_err();
        assert!(matches!(err, BytecodeError::StackMismatch { .. }));
    }

    #[test]
    fn branch_out_of_range_detected() {
        let err = program_of(vec![I::Goto(Label(9)), I::Return]).unwrap_err();
        assert!(matches!(
            err,
            BytecodeError::BadBranchTarget { target: 9, .. }
        ));
    }

    #[test]
    fn inconsistent_join_depth_detected() {
        // Path A pushes 1 value then jumps to 3; path B jumps to 3 with 0.
        let err = program_of(vec![
            I::IConst(0),
            I::If(Cond::Eq, Label(3)), // depth 0 at 3 via this edge... but
            I::IConst(7),              // fallthrough pushes, then falls into 3 with depth 1
            I::Return,
        ])
        .unwrap_err();
        assert!(matches!(err, BytecodeError::StackMismatch { .. }));
    }

    #[test]
    fn bad_call_target_detected() {
        let err = program_of(vec![
            I::Invoke {
                kind: crate::instr::CallKind::Static,
                target: MethodId::new(5, 5),
            },
            I::Return,
        ])
        .unwrap_err();
        assert!(matches!(err, BytecodeError::BadCallTarget { .. }));
    }

    #[test]
    fn bad_static_detected() {
        let err = program_of(vec![
            I::GetStatic(StaticRef { class: 0, field: 9 }),
            I::Pop,
            I::Return,
        ])
        .unwrap_err();
        assert!(matches!(err, BytecodeError::BadStaticRef { field: 9, .. }));
    }

    #[test]
    fn max_locals_covers_highest_slot() {
        let p = program_of(vec![I::IConst(3), I::IStore(7), I::Return]).unwrap();
        assert_eq!(p.method(p.entry()).max_locals, 8);
    }

    #[test]
    fn loop_with_consistent_depth_ok() {
        // i = 10; while (i != 0) i--;  return
        let p = program_of(vec![
            I::IConst(10),
            I::IStore(0),
            I::ILoad(0),               // 2: loop head
            I::If(Cond::Eq, Label(6)), // exit
            I::IInc(0, -1),
            I::Goto(Label(2)),
            I::Return, // 6
        ])
        .unwrap();
        assert_eq!(p.method(p.entry()).max_stack, 1);
    }

    #[test]
    fn unreachable_code_is_tolerated() {
        let p = program_of(vec![I::Return, I::IAdd, I::IAdd, I::Return]);
        assert!(p.is_ok(), "dead code after return should not be verified");
    }

    #[test]
    fn incremental_reverify_accepts_every_verified_method() {
        let p = program_of(vec![I::IConst(1), I::IConst(2), I::IAdd, I::Pop, I::Return]).unwrap();
        for (id, _) in p.iter_methods() {
            p.verify_method(id).unwrap();
        }
    }

    #[test]
    fn verify_cost_is_positive_and_monotone_in_size() {
        let small = MethodDef::new("s", 0, vec![I::Return]);
        let big = MethodDef::new("b", 0, vec![I::IConst(1000), I::Pop, I::Return]);
        assert!(method_verify_cost(&small) > 0);
        assert!(method_verify_cost(&big) > method_verify_cost(&small));
    }
}
