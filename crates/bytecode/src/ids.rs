//! Identifiers for classes and methods within a [`crate::program::Program`].

use std::fmt;

/// Index of a class within a program's class list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u16);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifies a method by owning class and position in that class's
/// **source order** method list.
///
/// Restructuring permutes methods inside a class *file*, but `MethodId`s
/// are stable: they always refer to source order, and the restructured
/// layout is carried separately as a permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId {
    /// The owning class.
    pub class: ClassId,
    /// Position in the class's source-order method list.
    pub method: u16,
}

impl MethodId {
    /// Convenience constructor.
    #[must_use]
    pub fn new(class: u16, method: u16) -> Self {
        MethodId {
            class: ClassId(class),
            method,
        }
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.m{}", self.class, self.method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_class_major() {
        assert!(MethodId::new(0, 9) < MethodId::new(1, 0));
        assert!(MethodId::new(1, 0) < MethodId::new(1, 1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(MethodId::new(2, 3).to_string(), "C2.m3");
        assert_eq!(ClassId(7).to_string(), "C7");
    }
}
