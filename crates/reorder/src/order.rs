//! The first-use order abstraction shared by every reordering source.

use nonstrict_bytecode::{MethodId, Program};
use nonstrict_profile::FirstUseProfile;

/// A predicted first-use ordering over **all** methods of a program.
///
/// Orders come from three sources, matching the paper's three
/// configurations:
///
/// * `SCG` — [`crate::scg::static_first_use`] (§4.1);
/// * `Train` / `Test` — [`FirstUseOrder::from_profile`] (§4.2), which
///   places profiled methods in observed order and falls back to the
///   static estimate for methods the profiling run never invoked.
///
/// ```
/// use nonstrict_reorder::static_first_use;
///
/// let app = nonstrict_workloads::hanoi::build();
/// let order = static_first_use(&app.program);
/// // main is always predicted first
/// assert_eq!(order.order()[0], app.program.entry());
/// // and every class's restructured file leads with its first-used method
/// let layout = order.class_layout(app.program.entry().class);
/// assert_eq!(layout[0], app.program.entry().method);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirstUseOrder {
    order: Vec<MethodId>,
    /// Rank by global method index.
    rank: Vec<usize>,
}

impl FirstUseOrder {
    /// Builds from an explicit complete order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all of `program`'s
    /// methods (an internal invariant of the producers in this crate).
    #[must_use]
    pub fn from_order(program: &Program, order: Vec<MethodId>) -> Self {
        assert_eq!(
            order.len(),
            program.method_count(),
            "order must cover every method"
        );
        let mut rank = vec![usize::MAX; program.method_count()];
        for (i, &m) in order.iter().enumerate() {
            let g = program.global_index(m);
            assert_eq!(rank[g], usize::MAX, "duplicate method {m} in order");
            rank[g] = i;
        }
        FirstUseOrder { order, rank }
    }

    /// The source-order ordering (no restructuring) — the paper's strict
    /// baseline layout.
    #[must_use]
    pub fn source_order(program: &Program) -> Self {
        let order = program.iter_methods().map(|(id, _)| id).collect();
        Self::from_order(program, order)
    }

    /// Profile-guided ordering: profiled methods in observed first-use
    /// order, then every unexecuted method in the static-estimate order
    /// (§4.2: *"All procedures that are not executed are given a
    /// first-use ordering during placement using the static approach"*).
    #[must_use]
    pub fn from_profile(
        program: &Program,
        profile: &FirstUseProfile,
        static_fallback: &FirstUseOrder,
    ) -> Self {
        let mut order: Vec<MethodId> = profile.order().to_vec();
        let mut placed = vec![false; program.method_count()];
        for &m in &order {
            placed[program.global_index(m)] = true;
        }
        let mut rest: Vec<MethodId> = static_fallback
            .order
            .iter()
            .copied()
            .filter(|&m| !placed[program.global_index(m)])
            .collect();
        order.append(&mut rest);
        Self::from_order(program, order)
    }

    /// All methods, most-urgent first.
    #[must_use]
    pub fn order(&self) -> &[MethodId] {
        &self.order
    }

    /// Position of `method` in the order.
    #[must_use]
    pub fn rank(&self, program: &Program, method: MethodId) -> usize {
        self.rank[program.global_index(method)]
    }

    /// The methods of one class, most-urgent first — the order they get
    /// inside the restructured class file.
    #[must_use]
    pub fn class_layout(&self, class: nonstrict_bytecode::ClassId) -> Vec<u16> {
        self.order
            .iter()
            .filter(|m| m.class == class)
            .map(|m| m.method)
            .collect()
    }

    /// Classes in the order their *first* method appears — the order the
    /// interleaved file visits classes and the parallel schedule
    /// considers dependencies.
    #[must_use]
    pub fn class_order(&self) -> Vec<nonstrict_bytecode::ClassId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for m in &self.order {
            if seen.insert(m.class) {
                out.push(m.class);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_bytecode::builder::MethodBuilder;
    use nonstrict_bytecode::program::ClassDef;
    use std::collections::HashMap;

    fn three_method_program() -> Program {
        let mut a = ClassDef::new("o/A");
        for name in ["main", "x", "y"] {
            let mut b = MethodBuilder::new(name, 0);
            b.ret();
            a.add_method(b.finish());
        }
        let mut bclass = ClassDef::new("o/B");
        let mut m = MethodBuilder::new("z", 0);
        m.ret();
        bclass.add_method(m.finish());
        Program::new(vec![a, bclass], "o/A", "main").unwrap()
    }

    #[test]
    fn source_order_is_identity() {
        let p = three_method_program();
        let o = FirstUseOrder::source_order(&p);
        assert_eq!(o.rank(&p, MethodId::new(0, 0)), 0);
        assert_eq!(o.rank(&p, MethodId::new(1, 0)), 3);
    }

    #[test]
    fn profile_order_prepends_profiled_methods() {
        let p = three_method_program();
        let fallback = FirstUseOrder::source_order(&p);
        let profile = FirstUseProfile::from_parts(
            vec![MethodId::new(0, 0), MethodId::new(1, 0)],
            HashMap::new(),
            10,
        );
        let o = FirstUseOrder::from_profile(&p, &profile, &fallback);
        assert_eq!(
            o.order(),
            &[
                MethodId::new(0, 0),
                MethodId::new(1, 0),
                MethodId::new(0, 1),
                MethodId::new(0, 2)
            ]
        );
    }

    #[test]
    fn class_layout_filters_and_orders() {
        let p = three_method_program();
        let o = FirstUseOrder::from_order(
            &p,
            vec![
                MethodId::new(0, 2),
                MethodId::new(1, 0),
                MethodId::new(0, 0),
                MethodId::new(0, 1),
            ],
        );
        assert_eq!(
            o.class_layout(nonstrict_bytecode::ClassId(0)),
            vec![2, 0, 1]
        );
        assert_eq!(
            o.class_order(),
            vec![
                nonstrict_bytecode::ClassId(0),
                nonstrict_bytecode::ClassId(1)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "order must cover every method")]
    fn incomplete_order_rejected() {
        let p = three_method_program();
        let _ = FirstUseOrder::from_order(&p, vec![MethodId::new(0, 0)]);
    }
}
