//! Global-data partitioning (§7.3 of the paper).
//!
//! A class file's global data normally transfers in one piece before any
//! method can run. Partitioning splits it three ways:
//!
//! * **needed first** — the header, midsection, fields, class attributes,
//!   and every constant-pool entry the class *structure* references
//!   (names of fields, attribute names, this/super/interface classes):
//!   this is all that must precede execution;
//! * **method-level** — entries referenced only by method code or by a
//!   method's own name/descriptor: they ship in a per-method
//!   `GlobalMethodData` (GMD) chunk placed before that method;
//! * **unused** — pool residue referenced by nothing.
//!
//! [`ClassPartition::gmd_sizes`] assigns each shared entry to the
//! *earliest* method (in a given file order) that needs it, exactly as
//! the paper's GMD placement does: *"the GMD contains only the data in
//! the constant pool and attributes that are needed to execute up to and
//! including the procedure the GMD is placed before."*

use std::collections::{HashMap, HashSet};

use nonstrict_bytecode::Application;
use nonstrict_classfile::{Attribute, ClassFile, Constant, CpIndex};

/// The partition of one class's global data.
#[derive(Debug, Clone)]
pub struct ClassPartition {
    /// Total global-data bytes (header + pool + midsection + fields +
    /// class attributes).
    pub global_total: u64,
    /// Bytes that must transfer before any method runs.
    pub needed_first: u64,
    /// Bytes attributable to methods (union of all GMD content).
    pub in_methods: u64,
    /// Bytes referenced by nothing.
    pub unused: u64,
    /// Per source method: the pool entries its GMD may need (transitive,
    /// structural entries excluded). Shared entries appear in several
    /// methods here; [`ClassPartition::gmd_sizes`] deduplicates by first
    /// use.
    method_entries: Vec<Vec<CpIndex>>,
    /// Wire size of each pool entry.
    entry_size: HashMap<CpIndex, u32>,
}

impl ClassPartition {
    /// GMD byte sizes per file position, for methods laid out in
    /// `file_order` (source method indices). Each shared entry is
    /// charged to the earliest method that references it.
    #[must_use]
    pub fn gmd_sizes(&self, file_order: &[u16]) -> Vec<u64> {
        let mut claimed: HashSet<CpIndex> = HashSet::new();
        file_order
            .iter()
            .map(|&m| {
                let mut bytes = 0u64;
                for &e in &self.method_entries[m as usize] {
                    if claimed.insert(e) {
                        bytes += u64::from(self.entry_size[&e]);
                    }
                }
                bytes
            })
            .collect()
    }

    /// Number of methods this partition covers.
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.method_entries.len()
    }
}

/// Expands `idx` to itself plus everything it references, transitively.
fn closure(class: &ClassFile, idx: CpIndex, out: &mut HashSet<CpIndex>) {
    if idx.is_none() || !out.insert(idx) {
        return;
    }
    match class.constant_pool.get(idx) {
        Some(Constant::String { utf8 }) => closure(class, *utf8, out),
        Some(Constant::Class { name }) => closure(class, *name, out),
        Some(
            Constant::FieldRef {
                class: c,
                name_and_type,
            }
            | Constant::MethodRef {
                class: c,
                name_and_type,
            }
            | Constant::InterfaceMethodRef {
                class: c,
                name_and_type,
            },
        ) => {
            closure(class, *c, out);
            closure(class, *name_and_type, out);
        }
        Some(Constant::NameAndType { name, descriptor }) => {
            closure(class, *name, out);
            closure(class, *descriptor, out);
        }
        _ => {}
    }
}

/// Finds the pool index of a UTF-8 entry by content (attribute names).
fn utf8_index(class: &ClassFile, s: &str) -> Option<CpIndex> {
    class
        .constant_pool
        .iter()
        .find(|(_, c)| matches!(c, Constant::Utf8(t) if t == s))
        .map(|(i, _)| i)
}

fn attribute_roots(class: &ClassFile, attr: &Attribute, out: &mut HashSet<CpIndex>) {
    if let Some(i) = utf8_index(class, attr.name()) {
        closure(class, i, out);
    }
    match attr {
        Attribute::ConstantValue { value } => closure(class, *value, out),
        Attribute::SourceFile { file } => closure(class, *file, out),
        Attribute::Exceptions { classes } => {
            for c in classes {
                closure(class, *c, out);
            }
        }
        Attribute::Code { attributes, .. } => {
            for a in attributes {
                attribute_roots(class, a, out);
            }
        }
        _ => {}
    }
}

/// Partitions one class. `code_usage` holds, per source method, the pool
/// indices that method's encoded code references directly (from
/// lowering).
#[must_use]
pub fn partition_class(class: &ClassFile, code_usage: &[Vec<CpIndex>]) -> ClassPartition {
    debug_assert_eq!(code_usage.len(), class.methods.len());

    // Structural roots: everything the class needs before any method.
    let mut structural: HashSet<CpIndex> = HashSet::new();
    closure(class, class.this_class, &mut structural);
    closure(class, class.super_class, &mut structural);
    for &i in &class.interfaces {
        closure(class, i, &mut structural);
    }
    for f in &class.fields {
        closure(class, f.name, &mut structural);
        closure(class, f.descriptor, &mut structural);
        for a in &f.attributes {
            attribute_roots(class, a, &mut structural);
        }
    }
    for a in &class.attributes {
        attribute_roots(class, a, &mut structural);
    }
    // Attribute-name strings of method attributes ("Code",
    // "LineNumberTable") are needed to parse *any* method, so they are
    // structural too.
    for m in &class.methods {
        for a in &m.attributes {
            if let Some(i) = utf8_index(class, a.name()) {
                closure(class, i, &mut structural);
            }
        }
    }

    // Per-method entries: code references plus the method's own
    // name/descriptor, minus anything structural.
    let mut method_entries: Vec<Vec<CpIndex>> = Vec::with_capacity(class.methods.len());
    let mut in_method_union: HashSet<CpIndex> = HashSet::new();
    for (m, usage) in class.methods.iter().zip(code_usage) {
        let mut set: HashSet<CpIndex> = HashSet::new();
        closure(class, m.name, &mut set);
        closure(class, m.descriptor, &mut set);
        for &u in usage {
            closure(class, u, &mut set);
        }
        let mut entries: Vec<CpIndex> = set
            .into_iter()
            .filter(|e| !structural.contains(e))
            .collect();
        entries.sort_unstable();
        in_method_union.extend(entries.iter().copied());
        method_entries.push(entries);
    }

    let entry_size: HashMap<CpIndex, u32> = class
        .constant_pool
        .iter()
        .map(|(i, c)| (i, c.wire_size()))
        .collect();
    let size_of =
        |set: &HashSet<CpIndex>| -> u64 { set.iter().map(|i| u64::from(entry_size[i])).sum() };

    let in_methods = size_of(&in_method_union);
    let pool_total: u64 = u64::from(class.constant_pool.wire_size());
    let structural_pool = size_of(&structural);
    let unused = pool_total - structural_pool - in_methods;
    let global_total = u64::from(class.global_data_size());
    let needed_first = global_total - in_methods - unused;

    ClassPartition {
        global_total,
        needed_first,
        in_methods,
        unused,
        method_entries,
        entry_size,
    }
}

/// Partitions every class of `app`, using the code-usage map produced at
/// lowering.
#[must_use]
pub fn partition_app(app: &Application) -> Vec<ClassPartition> {
    let mut out = Vec::with_capacity(app.classes.len());
    let mut g = 0usize;
    for class in &app.classes {
        let n = class.methods.len();
        out.push(partition_class(class, &app.code_usage[g..g + n]));
        g += n;
    }
    out
}

/// A Table 9 row: the application-wide data breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionSummary {
    /// Method local data, KB.
    pub local_kb: f64,
    /// Global data, KB.
    pub global_kb: f64,
    /// Percent of global data needed before execution.
    pub pct_needed_first: f64,
    /// Percent of global data attributable to methods.
    pub pct_in_methods: f64,
    /// Percent of global data referenced by nothing.
    pub pct_unused: f64,
}

/// Summarizes `partitions` into the application's Table 9 row.
#[must_use]
pub fn summarize(app: &Application, partitions: &[ClassPartition]) -> PartitionSummary {
    let global: u64 = partitions.iter().map(|p| p.global_total).sum();
    let needed: u64 = partitions.iter().map(|p| p.needed_first).sum();
    let in_m: u64 = partitions.iter().map(|p| p.in_methods).sum();
    let unused: u64 = partitions.iter().map(|p| p.unused).sum();
    let local: u64 = app
        .classes
        .iter()
        .map(|c| {
            let s = nonstrict_classfile::SectionSizes::of(c);
            u64::from(s.local_data())
        })
        .sum();
    let pct = |x: u64| 100.0 * x as f64 / global.max(1) as f64;
    PartitionSummary {
        local_kb: local as f64 / 1024.0,
        global_kb: global as f64 / 1024.0,
        pct_needed_first: pct(needed),
        pct_in_methods: pct(in_m),
        pct_unused: pct(unused),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partitions_for(app: &Application) -> Vec<ClassPartition> {
        partition_app(app)
    }

    #[test]
    fn three_way_split_accounts_for_all_global_bytes() {
        let app = nonstrict_workloads::hanoi::build();
        for (p, class) in partitions_for(&app).iter().zip(&app.classes) {
            assert_eq!(
                p.needed_first + p.in_methods + p.unused,
                u64::from(class.global_data_size()),
                "partition must cover global data exactly"
            );
            assert!(
                p.needed_first > 0,
                "header and structure are always needed first"
            );
        }
    }

    #[test]
    fn gmd_sizes_sum_to_in_methods() {
        let app = nonstrict_workloads::testdes::build();
        for (ci, p) in partitions_for(&app).iter().enumerate() {
            let order: Vec<u16> = (0..app.classes[ci].methods.len() as u16).collect();
            let gmd = p.gmd_sizes(&order);
            assert_eq!(gmd.iter().sum::<u64>(), p.in_methods, "class {ci}");
        }
    }

    #[test]
    fn gmd_attribution_respects_order() {
        // A shared entry must be charged to whichever method comes first.
        let app = nonstrict_workloads::hanoi::build();
        let parts = partitions_for(&app);
        for (ci, p) in parts.iter().enumerate() {
            let n = app.classes[ci].methods.len() as u16;
            let fwd: Vec<u16> = (0..n).collect();
            let rev: Vec<u16> = (0..n).rev().collect();
            let g_fwd = p.gmd_sizes(&fwd);
            let g_rev = p.gmd_sizes(&rev);
            assert_eq!(
                g_fwd.iter().sum::<u64>(),
                g_rev.iter().sum::<u64>(),
                "total GMD bytes are order-independent"
            );
        }
    }

    #[test]
    fn unused_residue_is_detected() {
        let app = nonstrict_workloads::jess::build();
        let parts = partitions_for(&app);
        let unused: u64 = parts.iter().map(|p| p.unused).sum();
        assert!(unused > 0, "jess carries deliberate pool residue");
    }

    #[test]
    fn summary_percentages_total_one_hundred() {
        let app = nonstrict_workloads::jhlzip::build();
        let parts = partitions_for(&app);
        let s = summarize(&app, &parts);
        let total = s.pct_needed_first + s.pct_in_methods + s.pct_unused;
        assert!((total - 100.0).abs() < 1e-6, "{total}");
        assert!(
            s.pct_in_methods > s.pct_needed_first,
            "most globals live in methods"
        );
    }
}
