//! # nonstrict-reorder
//!
//! First-use procedure reordering and class-file restructuring (§4 and
//! §7.3 of the ASPLOS '98 paper):
//!
//! * [`scg`] — **static first-use estimation**: a modified depth-first
//!   traversal of the interprocedural control-flow graph that prioritizes
//!   paths with more static loops and defers loop-exit edges until a
//!   loop's blocks are exhausted (§4.1).
//! * [`order`] — the [`order::FirstUseOrder`] type and profile-guided
//!   ordering (§4.2), with static fallback for unexecuted methods.
//! * [`restructure`] — rewrites class files so methods appear in
//!   predicted first-use order, the layout non-strict transfer exploits.
//! * [`partition`] — global-data partitioning: classifies every
//!   constant-pool entry as *needed first*, *method-level* (GMD), or
//!   *unused* (Table 9), and sizes the per-method `GlobalMethodData`
//!   chunks (§7.3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod order;
pub mod partition;
pub mod restructure;
pub mod scg;

pub use order::FirstUseOrder;
pub use partition::{partition_app, partition_class, ClassPartition, PartitionSummary};
pub use restructure::{restructure, ClassLayout, RestructuredApp};
pub use scg::{static_first_use, static_first_use_plain};
