//! Static first-use estimation (§4.1 of the paper).
//!
//! The estimator predicts the order in which methods will first execute
//! using only the program text. It performs a modified depth-first
//! traversal of each method's basic-block CFG, descending into callees at
//! call sites (the interprocedural edges of the paper's combined graph):
//!
//! * at a conditional branch, it follows *"the path that contains the
//!   greatest number of static loops"* first — looping implies both code
//!   reuse (overlap opportunity) and likely early execution;
//! * edges that *exit* a loop are deferred on a placeholder stack (the
//!   paper's `(block, loop-header)` pairs) until every block inside the
//!   loop has been traversed, so call sites inside a loop body are
//!   predicted to run before the loop's continuation.
//!
//! The first time the traversal encounters a call to an unvisited
//! method, that method is appended to the predicted first-use order and
//! traversed recursively. Statically unreachable methods are appended in
//! source order at the end.

use nonstrict_bytecode::cfg::Cfg;
use nonstrict_bytecode::loops::LoopInfo;
use nonstrict_bytecode::{MethodId, Program};

use crate::order::FirstUseOrder;

/// Computes the static-call-graph first-use order for `program`.
#[must_use]
pub fn static_first_use(program: &Program) -> FirstUseOrder {
    first_use_with(program, Heuristics::LoopAware)
}

/// Ablation variant: a plain depth-first traversal with **no** loop
/// heuristics — branches are taken in textual order and loop exits are
/// not deferred. The paper's §4.1 heuristics exist to beat exactly this;
/// `benches/ablation.rs` and the ablation integration test compare the
/// two.
#[must_use]
pub fn static_first_use_plain(program: &Program) -> FirstUseOrder {
    first_use_with(program, Heuristics::Plain)
}

/// Which traversal refinements to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heuristics {
    LoopAware,
    Plain,
}

fn first_use_with(program: &Program, heuristics: Heuristics) -> FirstUseOrder {
    let mut state = Traversal {
        program,
        visited: vec![false; program.method_count()],
        order: Vec::with_capacity(program.method_count()),
        depth: 0,
        heuristics,
    };
    state.visit_method(program.entry());
    // Unreached methods: source order, at the end (§4.2's placement rule
    // applies them after every predicted method).
    for (id, _) in program.iter_methods() {
        if !state.visited[program.global_index(id)] {
            state.order.push(id);
        }
    }
    FirstUseOrder::from_order(program, state.order)
}

struct Traversal<'p> {
    program: &'p Program,
    visited: Vec<bool>,
    order: Vec<MethodId>,
    depth: usize,
    heuristics: Heuristics,
}

/// Recursion guard: programs here have at most a few thousand methods,
/// and the call-site descent recurses at most once per method.
const MAX_DEPTH: usize = 1 << 16;

impl Traversal<'_> {
    fn visit_method(&mut self, id: MethodId) {
        let g = self.program.global_index(id);
        if self.visited[g] || self.depth >= MAX_DEPTH {
            return;
        }
        self.visited[g] = true;
        self.order.push(id);
        self.depth += 1;
        self.walk_blocks(id);
        self.depth -= 1;
    }

    /// The modified DFS over one method's blocks.
    fn walk_blocks(&mut self, id: MethodId) {
        let body = &self.program.method(id).body;
        let cfg = Cfg::build(body);
        if cfg.is_empty() {
            return;
        }
        let loops = LoopInfo::analyze(&cfg);
        let sizes = loops.loop_sizes();
        // Unvisited-block count per loop, for exit deferral.
        let mut remaining = sizes.clone();
        let mut seen = vec![false; cfg.len()];
        // Main work stack plus the paper's placeholder stack of deferred
        // loop-exit edges: (exit block, loop header position).
        let mut work: Vec<usize> = vec![0];
        let mut deferred: Vec<(usize, usize)> = Vec::new();

        loop {
            let b = match work.pop() {
                Some(b) => b,
                None => {
                    // Pop placeholders whose loop has been fully walked
                    // first; if none qualify, take the most recent.
                    match deferred.pop() {
                        Some((block, _)) => block,
                        None => break,
                    }
                }
            };
            if seen[b] {
                continue;
            }
            seen[b] = true;
            for &hp in &loops.membership[b] {
                remaining[hp] = remaining[hp].saturating_sub(1);
            }

            // Descend into callees at call sites, in intra-block order.
            for &(_, callee) in &cfg.blocks[b].calls {
                self.visit_method(callee);
            }

            // Partition successors: in-loop edges continue now; edges
            // leaving a still-unfinished loop are deferred (loop-aware
            // mode only).
            let innermost = loops.innermost_loop(b, &sizes);
            let mut now: Vec<usize> = Vec::new();
            for &s in &cfg.blocks[b].succs {
                if seen[s] {
                    continue;
                }
                let defer = self.heuristics == Heuristics::LoopAware
                    && match innermost {
                        Some(hp) => !loops.in_loop(s, hp) && remaining[hp] > 0,
                        None => false,
                    };
                if defer {
                    deferred.push((s, innermost.expect("defer implies a loop")));
                } else {
                    now.push(s);
                }
            }
            match self.heuristics {
                // Loop-priority heuristic: follow the path with the most
                // reachable static loops first. The work stack is LIFO,
                // so push in ascending priority.
                Heuristics::LoopAware => now.sort_by_key(|&s| loops.reachable_loops[s]),
                // Plain DFS: textual order — push in reverse so the
                // fall-through successor pops first.
                Heuristics::Plain => now.reverse(),
            }
            work.extend(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_bytecode::builder::MethodBuilder;
    use nonstrict_bytecode::program::ClassDef;
    use nonstrict_bytecode::Cond;

    /// main: if (x) { call looper() (in a loop-rich path) } else { call flat() };
    /// then call tail().  SCG must predict looper before flat.
    #[test]
    fn loop_priority_guides_call_order() {
        let looper = MethodId::new(0, 1);
        let flat = MethodId::new(0, 2);
        let tail = MethodId::new(0, 3);

        let mut main = MethodBuilder::new("main", 1);
        let flat_path = main.new_label();
        let join = main.new_label();
        main.iload(0).if_(Cond::Eq, flat_path);
        // loopy path: a loop around the call
        main.iconst(3).istore(1);
        let head = main.new_label();
        let exit = main.new_label();
        main.bind(head);
        main.iload(1).if_(Cond::Le, exit);
        main.invoke(looper);
        main.iinc(1, -1).goto(head);
        main.bind(exit);
        main.goto(join);
        main.bind(flat_path);
        main.invoke(flat);
        main.bind(join);
        main.invoke(tail);
        main.ret();

        let mut c = ClassDef::new("s/A");
        c.add_method(main.finish());
        for name in ["looper", "flat", "tail"] {
            let mut b = MethodBuilder::new(name, 0);
            b.ret();
            c.add_method(b.finish());
        }
        let p = Program::new(vec![c], "s/A", "main").unwrap();
        let order = static_first_use(&p);
        assert!(
            order.rank(&p, looper) < order.rank(&p, flat),
            "loop-rich path should be predicted first: {:?}",
            order.order()
        );
        assert_eq!(order.rank(&p, p.entry()), 0);
    }

    /// Calls inside a loop must be ordered before calls on the loop's
    /// exit path.
    #[test]
    fn loop_body_calls_precede_exit_calls() {
        let inner = MethodId::new(0, 1);
        let after = MethodId::new(0, 2);

        let mut main = MethodBuilder::new("main", 0);
        main.iconst(3).istore(0);
        let head = main.new_label();
        let exit = main.new_label();
        main.bind(head);
        main.iload(0).if_(Cond::Le, exit);
        main.invoke(inner);
        main.iinc(0, -1).goto(head);
        main.bind(exit);
        main.invoke(after);
        main.ret();

        let mut c = ClassDef::new("s/B");
        c.add_method(main.finish());
        for name in ["inner", "after"] {
            let mut b = MethodBuilder::new(name, 0);
            b.ret();
            c.add_method(b.finish());
        }
        let p = Program::new(vec![c], "s/B", "main").unwrap();
        let order = static_first_use(&p);
        assert!(order.rank(&p, inner) < order.rank(&p, after));
    }

    #[test]
    fn unreachable_methods_go_last_in_source_order() {
        let mut c = ClassDef::new("s/C");
        let mut main = MethodBuilder::new("main", 0);
        main.invoke(MethodId::new(0, 3)).ret(); // calls only the last
        c.add_method(main.finish());
        for name in ["dead1", "dead2", "live"] {
            let mut b = MethodBuilder::new(name, 0);
            b.ret();
            c.add_method(b.finish());
        }
        let p = Program::new(vec![c], "s/C", "main").unwrap();
        let order = static_first_use(&p);
        assert_eq!(
            order.order(),
            &[
                MethodId::new(0, 0),
                MethodId::new(0, 3),
                MethodId::new(0, 1),
                MethodId::new(0, 2),
            ]
        );
    }

    #[test]
    fn recursion_terminates() {
        let me = MethodId::new(0, 0);
        let mut main = MethodBuilder::new("main", 0);
        let skip = main.new_label();
        main.iconst(0).if_(Cond::Ne, skip);
        main.invoke(me);
        main.bind(skip);
        main.ret();
        let mut c = ClassDef::new("s/D");
        c.add_method(main.finish());
        let p = Program::new(vec![c], "s/D", "main").unwrap();
        let order = static_first_use(&p);
        assert_eq!(order.order().len(), 1);
    }

    #[test]
    fn covers_whole_suite_without_panicking() {
        // Smoke: the estimator runs over a realistic generated program.
        let app = nonstrict_workloads::jhlzip::build();
        let order = static_first_use(&app.program);
        assert_eq!(order.order().len(), app.program.method_count());
        assert_eq!(order.rank(&app.program, app.program.entry()), 0);
    }
}
