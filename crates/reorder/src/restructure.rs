//! Class-file restructuring: methods rewritten into predicted first-use
//! order (the paper's Figure 3).
//!
//! Restructuring changes only the *order* of `method_info` structures
//! inside each class file; sizes, the constant pool, and semantics are
//! untouched. The transfer engines consume the resulting
//! [`ClassLayout`]s to know which method's bytes stream first.

use nonstrict_bytecode::{Application, ClassId};
use nonstrict_classfile::ClassFile;

use crate::order::FirstUseOrder;

/// The method layout of one restructured class file: source-order method
/// indices in the order they appear in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassLayout {
    /// The class.
    pub class: ClassId,
    /// `file_order[k]` = source index of the k-th method in the file.
    pub file_order: Vec<u16>,
}

impl ClassLayout {
    /// The file position of source method `m`.
    #[must_use]
    pub fn position_of(&self, m: u16) -> usize {
        self.file_order
            .iter()
            .position(|&x| x == m)
            .expect("method in layout")
    }
}

/// A restructured application: per-class layouts plus rebuilt class
/// files.
#[derive(Debug, Clone)]
pub struct RestructuredApp {
    /// One layout per class, in class order.
    pub layouts: Vec<ClassLayout>,
    /// Rebuilt class files with methods permuted into layout order.
    pub classes: Vec<ClassFile>,
}

/// Restructures every class of `app` according to `order`.
///
/// Total and per-section sizes are preserved exactly — the permutation
/// moves bytes, it does not add any (the method delimiters of non-strict
/// transfer are accounted by the transfer model, not the file).
#[must_use]
pub fn restructure(app: &Application, order: &FirstUseOrder) -> RestructuredApp {
    let mut layouts = Vec::with_capacity(app.classes.len());
    let mut classes = Vec::with_capacity(app.classes.len());
    for (ci, class) in app.classes.iter().enumerate() {
        let class_id = ClassId(ci as u16);
        let file_order = order.class_layout(class_id);
        debug_assert_eq!(file_order.len(), class.methods.len());
        let mut rebuilt = class.clone();
        rebuilt.methods = file_order
            .iter()
            .map(|&m| class.methods[m as usize].clone())
            .collect();
        layouts.push(ClassLayout {
            class: class_id,
            file_order,
        });
        classes.push(rebuilt);
    }
    RestructuredApp { layouts, classes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_bytecode::MethodId;

    fn sample() -> (Application, FirstUseOrder) {
        let app = nonstrict_workloads::hanoi::build();
        let order = crate::scg::static_first_use(&app.program);
        (app, order)
    }

    #[test]
    fn sizes_are_preserved_exactly() {
        let (app, order) = sample();
        let r = restructure(&app, &order);
        for (orig, new) in app.classes.iter().zip(&r.classes) {
            assert_eq!(orig.total_size(), new.total_size());
            assert_eq!(orig.global_data_size(), new.global_data_size());
            assert_eq!(orig.to_bytes().len(), new.to_bytes().len());
        }
    }

    #[test]
    fn layout_is_a_permutation() {
        let (app, order) = sample();
        let r = restructure(&app, &order);
        for (ci, layout) in r.layouts.iter().enumerate() {
            let mut sorted = layout.file_order.clone();
            sorted.sort_unstable();
            let expect: Vec<u16> = (0..app.classes[ci].methods.len() as u16).collect();
            assert_eq!(sorted, expect, "class {ci}");
        }
    }

    #[test]
    fn first_used_method_leads_its_class_file() {
        let (app, order) = sample();
        let r = restructure(&app, &order);
        // main is the program's first first-use, so it must be the first
        // method in class 0's restructured file.
        assert_eq!(r.layouts[0].file_order[0], app.program.entry().method);
        assert_eq!(r.layouts[0].position_of(app.program.entry().method), 0);
    }

    #[test]
    fn restructured_methods_match_originals() {
        let (app, order) = sample();
        let r = restructure(&app, &order);
        for (ci, layout) in r.layouts.iter().enumerate() {
            for (pos, &src) in layout.file_order.iter().enumerate() {
                assert_eq!(
                    r.classes[ci].methods[pos], app.classes[ci].methods[src as usize],
                    "class {ci} pos {pos}"
                );
            }
        }
        let _ = MethodId::new(0, 0); // silence unused import in cfg(test)
    }
}
