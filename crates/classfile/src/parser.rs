//! Parsing class files back from their wire format.
//!
//! [`parse`] is the inverse of [`ClassFile::to_bytes`]: it reconstructs
//! the full structure — constant pool (with two-slot `Long`/`Double`
//! handling), fields, methods, nested `Code` attributes — from bytes.
//! Round-tripping is byte-exact, which the property tests exploit; it
//! also makes the crate usable as a standalone class-file inspector.

use std::error::Error;
use std::fmt;

use crate::attribute::{Attribute, ExceptionTableEntry};
use crate::class::{AccessFlags, ClassFile, MAGIC};
use crate::constant_pool::{Constant, ConstantPool, CpIndex};
use crate::field::FieldInfo;
use crate::method::MethodInfo;

/// Errors produced while parsing a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The input ended before the structure did.
    UnexpectedEof {
        /// Byte offset where more input was required.
        at: usize,
    },
    /// The file does not start with `0xCAFEBABE`.
    BadMagic(u32),
    /// An unknown constant-pool tag byte.
    BadTag {
        /// The tag value.
        tag: u8,
        /// Byte offset of the tag.
        at: usize,
    },
    /// A UTF-8 constant held invalid UTF-8 (this model uses real UTF-8).
    BadUtf8 {
        /// Byte offset of the string data.
        at: usize,
    },
    /// Trailing bytes after the class structure.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// An attribute's declared length did not match its payload.
    AttributeLengthMismatch {
        /// The attribute name, if known.
        name: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof { at } => write!(f, "unexpected end of input at offset {at}"),
            Self::BadMagic(m) => write!(f, "bad magic {m:#010x}, expected 0xcafebabe"),
            Self::BadTag { tag, at } => write!(f, "unknown constant tag {tag} at offset {at}"),
            Self::BadUtf8 { at } => write!(f, "invalid utf-8 in constant at offset {at}"),
            Self::TrailingBytes { count } => write!(f, "{count} trailing bytes after class"),
            Self::AttributeLengthMismatch { name } => {
                write!(f, "attribute {name:?} length does not match payload")
            }
        }
    }
}

impl Error for ParseError {}

/// A bounds-checked big-endian cursor.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        if self.pos + n > self.bytes.len() {
            return Err(ParseError::UnexpectedEof { at: self.pos });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ParseError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ParseError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Parses a complete class file from its wire format.
///
/// ```
/// use nonstrict_classfile::{parse, ClassFileBuilder, MethodData};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ClassFileBuilder::new("demo/RoundTrip");
/// b.add_method(MethodData::new("run", "()V", vec![0xB1]))?;
/// let original = b.build()?;
/// let bytes = original.to_bytes();
/// let parsed = parse(&bytes)?;
/// assert_eq!(parsed.to_bytes(), bytes); // byte-exact round trip
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Any structural [`ParseError`]; the parse consumes the whole input or
/// fails.
pub fn parse(bytes: &[u8]) -> Result<ClassFile, ParseError> {
    let mut c = Cursor::new(bytes);
    let magic = c.u32()?;
    if magic != MAGIC {
        return Err(ParseError::BadMagic(magic));
    }
    let minor_version = c.u16()?;
    let major_version = c.u16()?;

    // Constant pool: count is slots + 1; Long/Double burn an extra slot.
    let count = c.u16()?;
    let mut pool = ConstantPool::new();
    let mut slot = 1u16;
    while slot < count {
        let at = c.pos;
        let tag = c.u8()?;
        let constant = match tag {
            1 => {
                let len = c.u16()? as usize;
                let data = c.take(len)?;
                let s = std::str::from_utf8(data)
                    .map_err(|_| ParseError::BadUtf8 { at })?
                    .to_owned();
                Constant::Utf8(s)
            }
            3 => Constant::Integer(c.u32()? as i32),
            4 => Constant::Float(f32::from_bits(c.u32()?)),
            5 => {
                let hi = u64::from(c.u32()?);
                let lo = u64::from(c.u32()?);
                Constant::Long(((hi << 32) | lo) as i64)
            }
            6 => {
                let hi = u64::from(c.u32()?);
                let lo = u64::from(c.u32()?);
                Constant::Double(f64::from_bits((hi << 32) | lo))
            }
            7 => Constant::Class {
                name: CpIndex(c.u16()?),
            },
            8 => Constant::String {
                utf8: CpIndex(c.u16()?),
            },
            9 => Constant::FieldRef {
                class: CpIndex(c.u16()?),
                name_and_type: CpIndex(c.u16()?),
            },
            10 => Constant::MethodRef {
                class: CpIndex(c.u16()?),
                name_and_type: CpIndex(c.u16()?),
            },
            11 => Constant::InterfaceMethodRef {
                class: CpIndex(c.u16()?),
                name_and_type: CpIndex(c.u16()?),
            },
            12 => Constant::NameAndType {
                name: CpIndex(c.u16()?),
                descriptor: CpIndex(c.u16()?),
            },
            tag => return Err(ParseError::BadTag { tag, at }),
        };
        slot += constant.slots();
        // `push` (not `intern`) preserves duplicates exactly as written.
        pool.push(constant)
            .expect("parsed pool fits: count field is u16");
    }

    let access_flags = AccessFlags(c.u16()?);
    let this_class = CpIndex(c.u16()?);
    let super_class = CpIndex(c.u16()?);
    let interfaces_count = c.u16()?;
    let mut interfaces = Vec::with_capacity(interfaces_count as usize);
    for _ in 0..interfaces_count {
        interfaces.push(CpIndex(c.u16()?));
    }

    let fields_count = c.u16()?;
    let mut fields = Vec::with_capacity(fields_count as usize);
    for _ in 0..fields_count {
        let access_flags = c.u16()?;
        let name = CpIndex(c.u16()?);
        let descriptor = CpIndex(c.u16()?);
        let attributes = parse_attributes(&mut c, &pool)?;
        fields.push(FieldInfo {
            access_flags,
            name,
            descriptor,
            attributes,
        });
    }

    let methods_count = c.u16()?;
    let mut methods = Vec::with_capacity(methods_count as usize);
    for _ in 0..methods_count {
        let access_flags = c.u16()?;
        let name = CpIndex(c.u16()?);
        let descriptor = CpIndex(c.u16()?);
        let attributes = parse_attributes(&mut c, &pool)?;
        methods.push(MethodInfo {
            access_flags,
            name,
            descriptor,
            attributes,
        });
    }

    let attributes = parse_attributes(&mut c, &pool)?;

    if c.pos != bytes.len() {
        return Err(ParseError::TrailingBytes {
            count: bytes.len() - c.pos,
        });
    }

    Ok(ClassFile {
        minor_version,
        major_version,
        constant_pool: pool,
        access_flags,
        this_class,
        super_class,
        interfaces,
        fields,
        methods,
        attributes,
    })
}

fn parse_attributes(c: &mut Cursor<'_>, pool: &ConstantPool) -> Result<Vec<Attribute>, ParseError> {
    let count = c.u16()?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(parse_attribute(c, pool)?);
    }
    Ok(out)
}

fn parse_attribute(c: &mut Cursor<'_>, pool: &ConstantPool) -> Result<Attribute, ParseError> {
    let name_idx = CpIndex(c.u16()?);
    let length = c.u32()? as usize;
    let name = pool.utf8_at(name_idx).unwrap_or("").to_owned();
    let end = c.pos + length;
    let attr = match name.as_str() {
        "Code" => {
            let max_stack = c.u16()?;
            let max_locals = c.u16()?;
            let code_len = c.u32()? as usize;
            let code = c.take(code_len)?.to_vec();
            let exc_count = c.u16()?;
            let mut exception_table = Vec::with_capacity(exc_count as usize);
            for _ in 0..exc_count {
                exception_table.push(ExceptionTableEntry {
                    start_pc: c.u16()?,
                    end_pc: c.u16()?,
                    handler_pc: c.u16()?,
                    catch_type: CpIndex(c.u16()?),
                });
            }
            let attributes = parse_attributes(c, pool)?;
            Attribute::Code {
                max_stack,
                max_locals,
                code,
                exception_table,
                attributes,
            }
        }
        "LineNumberTable" => {
            let n = c.u16()?;
            let mut entries = Vec::with_capacity(n as usize);
            for _ in 0..n {
                entries.push((c.u16()?, c.u16()?));
            }
            Attribute::LineNumberTable { entries }
        }
        "ConstantValue" => Attribute::ConstantValue {
            value: CpIndex(c.u16()?),
        },
        "SourceFile" => Attribute::SourceFile {
            file: CpIndex(c.u16()?),
        },
        "Exceptions" => {
            let n = c.u16()?;
            let mut classes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                classes.push(CpIndex(c.u16()?));
            }
            Attribute::Exceptions { classes }
        }
        _ => Attribute::Raw {
            name: name.clone(),
            bytes: c.take(length)?.to_vec(),
        },
    };
    if c.pos != end {
        return Err(ParseError::AttributeLengthMismatch { name });
    }
    Ok(attr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClassFileBuilder, MethodData};

    fn sample() -> ClassFile {
        let mut b = ClassFileBuilder::new("pk/Sample");
        b.source_file("Sample.java");
        b.interface("pk/Runnable");
        b.pool_mut().string("a literal").unwrap();
        b.pool_mut().intern(Constant::Integer(99)).unwrap();
        b.pool_mut().intern(Constant::Long(1 << 40)).unwrap();
        b.pool_mut().intern(Constant::Double(2.5)).unwrap();
        b.pool_mut().intern(Constant::Float(0.5)).unwrap();
        b.pool_mut().method_ref("pk/Other", "call", "(I)I").unwrap();
        b.add_static_field("counter", "I").unwrap();
        let mut md = MethodData::new("run", "()V", vec![0xB1, 0x00, 0xB1]);
        md.line_numbers(vec![(0, 3), (2, 4)]);
        b.add_method(md).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_is_byte_exact() {
        let original = sample();
        let bytes = original.to_bytes();
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.to_bytes(), bytes);
        assert_eq!(parsed.name().unwrap().0, "pk/Sample");
        assert_eq!(parsed.methods.len(), 1);
        assert_eq!(
            parsed.constant_pool.count_field(),
            original.constant_pool.count_field()
        );
    }

    #[test]
    fn parsed_structure_validates() {
        let bytes = sample().to_bytes();
        parse(&bytes).unwrap().validate().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0xDE;
        assert!(matches!(parse(&bytes), Err(ParseError::BadMagic(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample().to_bytes();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let r = parse(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly parsed");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            parse(&bytes),
            Err(ParseError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[10] = 99; // first constant's tag byte
        assert!(matches!(
            parse(&bytes),
            Err(ParseError::BadTag { tag: 99, .. })
        ));
    }

    #[test]
    fn workload_classes_roundtrip() {
        // The real benchmark class files parse back byte-exactly.
        let class = {
            let mut b = ClassFileBuilder::new("x/Big");
            for i in 0..40 {
                b.pool_mut().string(&format!("str{i}")).unwrap();
                b.add_method(MethodData::new(format!("m{i}"), "()V", vec![0xB1]))
                    .unwrap();
            }
            b.build().unwrap()
        };
        let bytes = class.to_bytes();
        assert_eq!(parse(&bytes).unwrap().to_bytes(), bytes);
    }
}
