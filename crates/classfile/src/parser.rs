//! Parsing class files back from their wire format.
//!
//! [`parse`] is the inverse of [`ClassFile::to_bytes`]: it reconstructs
//! the full structure — constant pool (with two-slot `Long`/`Double`
//! handling), fields, methods, nested `Code` attributes — from bytes.
//! Round-tripping is byte-exact, which the property tests exploit; it
//! also makes the crate usable as a standalone class-file inspector.

use std::error::Error;
use std::fmt;

use crate::attribute::{Attribute, ExceptionTableEntry};
use crate::class::{AccessFlags, ClassFile, MAGIC};
use crate::constant_pool::{Constant, ConstantPool, CpIndex};
use crate::field::FieldInfo;
use crate::method::MethodInfo;

/// Errors produced while parsing a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The input ended before the structure did.
    UnexpectedEof {
        /// Byte offset where more input was required.
        at: usize,
    },
    /// The file does not start with `0xCAFEBABE`.
    BadMagic(u32),
    /// An unknown constant-pool tag byte.
    BadTag {
        /// The tag value.
        tag: u8,
        /// Byte offset of the tag.
        at: usize,
    },
    /// A UTF-8 constant held invalid UTF-8 (this model uses real UTF-8).
    BadUtf8 {
        /// Byte offset of the string data.
        at: usize,
    },
    /// Trailing bytes after the class structure.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// An attribute's declared length did not match its payload.
    AttributeLengthMismatch {
        /// The attribute name, if known.
        name: String,
    },
    /// The constant-pool entries overran the 65,535-slot limit (a
    /// `Long`/`Double` entry near the end of a maximal pool burns one
    /// slot more than the count field admits).
    PoolOverflow {
        /// Byte offset of the offending entry.
        at: usize,
    },
    /// An attribute's name index did not resolve to a UTF-8 pool entry.
    /// Accepting it would build a structure that cannot re-serialize, so
    /// the parse fails closed instead.
    BadAttributeName {
        /// Byte offset of the name index.
        at: usize,
        /// The dangling or wrong-kind index.
        index: u16,
    },
    /// A `Code` attribute declared more bytecode than the wire format's
    /// `u16` code-length field can re-serialize.
    OversizedCode {
        /// The declared code length.
        len: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof { at } => write!(f, "unexpected end of input at offset {at}"),
            Self::BadMagic(m) => write!(f, "bad magic {m:#010x}, expected 0xcafebabe"),
            Self::BadTag { tag, at } => write!(f, "unknown constant tag {tag} at offset {at}"),
            Self::BadUtf8 { at } => write!(f, "invalid utf-8 in constant at offset {at}"),
            Self::TrailingBytes { count } => write!(f, "{count} trailing bytes after class"),
            Self::AttributeLengthMismatch { name } => {
                write!(f, "attribute {name:?} length does not match payload")
            }
            Self::PoolOverflow { at } => {
                write!(f, "constant pool overflows 65535 slots at offset {at}")
            }
            Self::BadAttributeName { at, index } => {
                write!(
                    f,
                    "attribute name index {index} at offset {at} is not a utf-8 pool entry"
                )
            }
            Self::OversizedCode { len } => {
                write!(
                    f,
                    "code attribute declares {len} bytes, beyond the u16 wire limit"
                )
            }
        }
    }
}

impl Error for ParseError {}

/// A bounds-checked big-endian cursor. Shared with the streaming
/// validator in [`crate::stream`].
pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        // Checked: `n` may be input-derived (attacker-controlled), so the
        // sum must not wrap on any platform.
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ParseError::UnexpectedEof { at: self.pos })?;
        if end > self.bytes.len() {
            return Err(ParseError::UnexpectedEof { at: self.pos });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ParseError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ParseError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Parses a complete class file from its wire format.
///
/// ```
/// use nonstrict_classfile::{parse, ClassFileBuilder, MethodData};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ClassFileBuilder::new("demo/RoundTrip");
/// b.add_method(MethodData::new("run", "()V", vec![0xB1]))?;
/// let original = b.build()?;
/// let bytes = original.to_bytes();
/// let parsed = parse(&bytes)?;
/// assert_eq!(parsed.to_bytes(), bytes); // byte-exact round trip
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Any structural [`ParseError`]; the parse consumes the whole input or
/// fails.
pub fn parse(bytes: &[u8]) -> Result<ClassFile, ParseError> {
    let mut c = Cursor::new(bytes);
    let magic = c.u32()?;
    if magic != MAGIC {
        return Err(ParseError::BadMagic(magic));
    }
    let minor_version = c.u16()?;
    let major_version = c.u16()?;

    // Constant pool: count is slots + 1; Long/Double burn an extra slot.
    let count = c.u16()?;
    let pool = parse_pool(&mut c, count)?;

    let access_flags = AccessFlags(c.u16()?);
    let this_class = CpIndex(c.u16()?);
    let super_class = CpIndex(c.u16()?);
    let interfaces_count = c.u16()?;
    let mut interfaces = Vec::with_capacity(interfaces_count as usize);
    for _ in 0..interfaces_count {
        interfaces.push(CpIndex(c.u16()?));
    }

    let fields_count = c.u16()?;
    let mut fields = Vec::with_capacity(fields_count as usize);
    for _ in 0..fields_count {
        fields.push(parse_field(&mut c, &pool)?);
    }

    let methods_count = c.u16()?;
    let mut methods = Vec::with_capacity(methods_count as usize);
    for _ in 0..methods_count {
        methods.push(parse_method(&mut c, &pool)?);
    }

    let attributes = parse_attributes(&mut c, &pool)?;

    if c.pos != bytes.len() {
        return Err(ParseError::TrailingBytes {
            count: bytes.len() - c.pos,
        });
    }

    Ok(ClassFile {
        minor_version,
        major_version,
        constant_pool: pool,
        access_flags,
        this_class,
        super_class,
        interfaces,
        fields,
        methods,
        attributes,
    })
}

/// Parses constant-pool entries until `count` slots are filled.
///
/// `Long`/`Double` entries burn two slots, so a hostile count can make
/// the last entry overrun slot 65,535; that is a typed
/// [`ParseError::PoolOverflow`], never a panic.
pub(crate) fn parse_pool(c: &mut Cursor<'_>, count: u16) -> Result<ConstantPool, ParseError> {
    let mut pool = ConstantPool::new();
    // Track slots in u32: a two-slot entry at slot 65534 would wrap u16.
    let mut slot = 1u32;
    while slot < u32::from(count) {
        let at = c.pos;
        let tag = c.u8()?;
        let constant = match tag {
            1 => {
                let len = c.u16()? as usize;
                let data = c.take(len)?;
                let s = std::str::from_utf8(data)
                    .map_err(|_| ParseError::BadUtf8 { at })?
                    .to_owned();
                Constant::Utf8(s)
            }
            3 => Constant::Integer(c.u32()? as i32),
            4 => Constant::Float(f32::from_bits(c.u32()?)),
            5 => {
                let hi = u64::from(c.u32()?);
                let lo = u64::from(c.u32()?);
                Constant::Long(((hi << 32) | lo) as i64)
            }
            6 => {
                let hi = u64::from(c.u32()?);
                let lo = u64::from(c.u32()?);
                Constant::Double(f64::from_bits((hi << 32) | lo))
            }
            7 => Constant::Class {
                name: CpIndex(c.u16()?),
            },
            8 => Constant::String {
                utf8: CpIndex(c.u16()?),
            },
            9 => Constant::FieldRef {
                class: CpIndex(c.u16()?),
                name_and_type: CpIndex(c.u16()?),
            },
            10 => Constant::MethodRef {
                class: CpIndex(c.u16()?),
                name_and_type: CpIndex(c.u16()?),
            },
            11 => Constant::InterfaceMethodRef {
                class: CpIndex(c.u16()?),
                name_and_type: CpIndex(c.u16()?),
            },
            12 => Constant::NameAndType {
                name: CpIndex(c.u16()?),
                descriptor: CpIndex(c.u16()?),
            },
            tag => return Err(ParseError::BadTag { tag, at }),
        };
        slot += u32::from(constant.slots());
        // `push` (not `intern`) preserves duplicates exactly as written.
        pool.push(constant)
            .map_err(|_| ParseError::PoolOverflow { at })?;
    }
    Ok(pool)
}

/// Parses one `field_info` structure.
pub(crate) fn parse_field(
    c: &mut Cursor<'_>,
    pool: &ConstantPool,
) -> Result<FieldInfo, ParseError> {
    let access_flags = c.u16()?;
    let name = CpIndex(c.u16()?);
    let descriptor = CpIndex(c.u16()?);
    let attributes = parse_attributes(c, pool)?;
    Ok(FieldInfo {
        access_flags,
        name,
        descriptor,
        attributes,
    })
}

/// Parses one `method_info` structure.
pub(crate) fn parse_method(
    c: &mut Cursor<'_>,
    pool: &ConstantPool,
) -> Result<MethodInfo, ParseError> {
    let access_flags = c.u16()?;
    let name = CpIndex(c.u16()?);
    let descriptor = CpIndex(c.u16()?);
    let attributes = parse_attributes(c, pool)?;
    Ok(MethodInfo {
        access_flags,
        name,
        descriptor,
        attributes,
    })
}

pub(crate) fn parse_attributes(
    c: &mut Cursor<'_>,
    pool: &ConstantPool,
) -> Result<Vec<Attribute>, ParseError> {
    let count = c.u16()?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(parse_attribute(c, pool)?);
    }
    Ok(out)
}

pub(crate) fn parse_attribute(
    c: &mut Cursor<'_>,
    pool: &ConstantPool,
) -> Result<Attribute, ParseError> {
    let at = c.pos;
    let name_idx = CpIndex(c.u16()?);
    let length = c.u32()? as usize;
    // A dangling or non-UTF-8 name index is rejected here: tolerating it
    // (e.g. as an anonymous raw attribute) would admit a structure that
    // panics on re-serialization, and this parser sits on the trust
    // boundary of the non-strict loader.
    let name = pool
        .utf8_at(name_idx)
        .map_err(|_| ParseError::BadAttributeName {
            at,
            index: name_idx.0,
        })?
        .to_owned();
    let end = c
        .pos
        .checked_add(length)
        .ok_or(ParseError::UnexpectedEof { at: c.pos })?;
    let attr = match name.as_str() {
        "Code" => {
            let max_stack = c.u16()?;
            let max_locals = c.u16()?;
            let code_len = c.u32()? as usize;
            if code_len > u16::MAX as usize {
                return Err(ParseError::OversizedCode { len: code_len });
            }
            let code = c.take(code_len)?.to_vec();
            let exc_count = c.u16()?;
            let mut exception_table = Vec::with_capacity(exc_count as usize);
            for _ in 0..exc_count {
                exception_table.push(ExceptionTableEntry {
                    start_pc: c.u16()?,
                    end_pc: c.u16()?,
                    handler_pc: c.u16()?,
                    catch_type: CpIndex(c.u16()?),
                });
            }
            let attributes = parse_attributes(c, pool)?;
            Attribute::Code {
                max_stack,
                max_locals,
                code,
                exception_table,
                attributes,
            }
        }
        "LineNumberTable" => {
            let n = c.u16()?;
            let mut entries = Vec::with_capacity(n as usize);
            for _ in 0..n {
                entries.push((c.u16()?, c.u16()?));
            }
            Attribute::LineNumberTable { entries }
        }
        "ConstantValue" => Attribute::ConstantValue {
            value: CpIndex(c.u16()?),
        },
        "SourceFile" => Attribute::SourceFile {
            file: CpIndex(c.u16()?),
        },
        "Exceptions" => {
            let n = c.u16()?;
            let mut classes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                classes.push(CpIndex(c.u16()?));
            }
            Attribute::Exceptions { classes }
        }
        _ => Attribute::Raw {
            name: name.clone(),
            bytes: c.take(length)?.to_vec(),
        },
    };
    if c.pos != end {
        return Err(ParseError::AttributeLengthMismatch { name });
    }
    Ok(attr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClassFileBuilder, MethodData};

    fn sample() -> ClassFile {
        let mut b = ClassFileBuilder::new("pk/Sample");
        b.source_file("Sample.java");
        b.interface("pk/Runnable");
        b.pool_mut().string("a literal").unwrap();
        b.pool_mut().intern(Constant::Integer(99)).unwrap();
        b.pool_mut().intern(Constant::Long(1 << 40)).unwrap();
        b.pool_mut().intern(Constant::Double(2.5)).unwrap();
        b.pool_mut().intern(Constant::Float(0.5)).unwrap();
        b.pool_mut().method_ref("pk/Other", "call", "(I)I").unwrap();
        b.add_static_field("counter", "I").unwrap();
        let mut md = MethodData::new("run", "()V", vec![0xB1, 0x00, 0xB1]);
        md.line_numbers(vec![(0, 3), (2, 4)]);
        b.add_method(md).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_is_byte_exact() {
        let original = sample();
        let bytes = original.to_bytes();
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.to_bytes(), bytes);
        assert_eq!(parsed.name().unwrap().0, "pk/Sample");
        assert_eq!(parsed.methods.len(), 1);
        assert_eq!(
            parsed.constant_pool.count_field(),
            original.constant_pool.count_field()
        );
    }

    #[test]
    fn parsed_structure_validates() {
        let bytes = sample().to_bytes();
        parse(&bytes).unwrap().validate().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0xDE;
        assert!(matches!(parse(&bytes), Err(ParseError::BadMagic(_))));
    }

    #[test]
    fn dangling_attribute_name_index_is_rejected() {
        // An attribute whose name index misses the pool (or hits a
        // non-UTF-8 entry) must fail with the typed error rather than
        // admit a structure that cannot re-serialize.
        let mut pool = ConstantPool::new();
        pool.intern(Constant::Integer(7)).unwrap(); // slot 1: not Utf8
        for index in [0u16, 1, 99] {
            let mut wire = Vec::new();
            wire.extend_from_slice(&index.to_be_bytes());
            wire.extend_from_slice(&0u32.to_be_bytes()); // empty payload
            let mut c = Cursor::new(&wire);
            assert!(
                matches!(
                    parse_attribute(&mut c, &pool),
                    Err(ParseError::BadAttributeName { index: i, .. }) if i == index
                ),
                "name index {index} must be rejected"
            );
        }
    }

    #[test]
    fn oversized_code_length_is_rejected() {
        // A hostile code_length above the u16 wire limit could never
        // re-serialize; the parse refuses it up front.
        let mut pool = ConstantPool::new();
        let code_name = pool.utf8("Code").unwrap();
        let mut wire = Vec::new();
        wire.extend_from_slice(&code_name.0.to_be_bytes());
        wire.extend_from_slice(&20u32.to_be_bytes()); // declared length
        wire.extend_from_slice(&1u16.to_be_bytes()); // max_stack
        wire.extend_from_slice(&1u16.to_be_bytes()); // max_locals
        wire.extend_from_slice(&0x0001_0000u32.to_be_bytes()); // code_length
        let mut c = Cursor::new(&wire);
        assert!(matches!(
            parse_attribute(&mut c, &pool),
            Err(ParseError::OversizedCode { len: 0x1_0000 })
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample().to_bytes();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let r = parse(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly parsed");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            parse(&bytes),
            Err(ParseError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[10] = 99; // first constant's tag byte
        assert!(matches!(
            parse(&bytes),
            Err(ParseError::BadTag { tag: 99, .. })
        ));
    }

    #[test]
    fn hostile_pool_count_overflow_is_a_typed_error() {
        // count = 0xFFFF, then an Integer and enough Longs that the last
        // two-slot entry overruns slot 65,535. Must be a typed error (the
        // old parser panicked here).
        let mut bytes = vec![0xCA, 0xFE, 0xBA, 0xBE, 0, 3, 0, 45, 0xFF, 0xFF];
        bytes.extend_from_slice(&[3, 0, 0, 0, 7]); // Integer: slot 1
        for _ in 0..32767 {
            bytes.push(5); // Long: two slots
            bytes.extend_from_slice(&[0; 8]);
        }
        match parse(&bytes) {
            Err(ParseError::PoolOverflow { .. }) => {}
            other => panic!("expected PoolOverflow, got {other:?}"),
        }
    }

    #[test]
    fn workload_classes_roundtrip() {
        // The real benchmark class files parse back byte-exactly.
        let class = {
            let mut b = ClassFileBuilder::new("x/Big");
            for i in 0..40 {
                b.pool_mut().string(&format!("str{i}")).unwrap();
                b.add_method(MethodData::new(format!("m{i}"), "()V", vec![0xB1]))
                    .unwrap();
            }
            b.build().unwrap()
        };
        let bytes = class.to_bytes();
        assert_eq!(parse(&bytes).unwrap().to_bytes(), bytes);
    }
}
