//! # nonstrict-classfile
//!
//! A faithful model of the JVM class-file format (as of the first-edition
//! JVM specification, the format the ASPLOS '98 paper targets) with exact
//! wire-format serialization.
//!
//! The non-strict-execution experiments in the companion crates never need
//! to *load* real class files — they need every **byte size** seen by the
//! transfer simulator to be a real, spec-accurate serialized size, and they
//! need the structural split the paper relies on:
//!
//! * **global data** — magic/version header, constant pool, access flags,
//!   this/super/interfaces, fields, and class-level attributes: everything a
//!   class needs before *any* method can run;
//! * per-method **local data** — the `method_info` header plus the `Code`
//!   attribute overhead (exception tables, line-number tables, …);
//! * per-method **code** — the bytecode bytes themselves.
//!
//! [`ClassFile::to_bytes`] produces the real wire format, and the section
//! accountants in [`layout`] reproduce the paper's Table 8/9 breakdowns.
//!
//! ```
//! use nonstrict_classfile::{ClassFileBuilder, MethodData};
//!
//! # fn main() -> Result<(), nonstrict_classfile::ClassFileError> {
//! let mut b = ClassFileBuilder::new("demo/Main");
//! let code = vec![0x10, 0x2A, 0xAC]; // bipush 42; ireturn
//! b.add_method(MethodData::new("main", "()I", code))?;
//! let class = b.build()?;
//! assert_eq!(class.to_bytes().len() as u32, class.total_size());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribute;
pub mod builder;
pub mod class;
pub mod constant_pool;
pub mod error;
pub mod field;
pub mod layout;
pub mod method;
pub mod parser;
pub mod stream;

pub use attribute::{Attribute, ExceptionTableEntry};
pub use builder::{ClassFileBuilder, MethodData};
pub use class::{AccessFlags, ClassFile, ClassName};
pub use constant_pool::{Constant, ConstantPool, ConstantTag, CpIndex};
pub use error::ClassFileError;
pub use field::FieldInfo;
pub use layout::{ConstantPoolBreakdown, GlobalDataBreakdown, SectionSizes};
pub use method::MethodInfo;
pub use parser::{parse, ParseError};
pub use stream::{
    stream_digests, stream_units, unit_digest, StreamError, StreamEvent, StreamLoader,
    METHOD_DELIMITER,
};
