//! A convenient builder for [`ClassFile`]s.

use crate::attribute::{Attribute, ExceptionTableEntry};
use crate::class::{AccessFlags, ClassFile};
use crate::constant_pool::{ConstantPool, CpIndex};
use crate::error::ClassFileError;
use crate::field::FieldInfo;
use crate::method::MethodInfo;

/// Everything needed to add one method to a class under construction.
#[derive(Debug, Clone)]
pub struct MethodData {
    name: String,
    descriptor: String,
    code: Vec<u8>,
    max_stack: u16,
    max_locals: u16,
    line_numbers: Vec<(u16, u16)>,
    exception_table: Vec<ExceptionTableEntry>,
    access_flags: u16,
}

impl MethodData {
    /// Creates a `public static` method with the given bytecode.
    #[must_use]
    pub fn new(name: impl Into<String>, descriptor: impl Into<String>, code: Vec<u8>) -> Self {
        MethodData {
            name: name.into(),
            descriptor: descriptor.into(),
            code,
            max_stack: 4,
            max_locals: 4,
            line_numbers: Vec::new(),
            exception_table: Vec::new(),
            access_flags: AccessFlags::PUBLIC | AccessFlags::STATIC,
        }
    }

    /// Sets the operand-stack and local-slot limits.
    pub fn limits(&mut self, max_stack: u16, max_locals: u16) -> &mut Self {
        self.max_stack = max_stack;
        self.max_locals = max_locals;
        self
    }

    /// Attaches a `LineNumberTable` with the given entries (this is the
    /// bulk of real methods' local data).
    pub fn line_numbers(&mut self, entries: Vec<(u16, u16)>) -> &mut Self {
        self.line_numbers = entries;
        self
    }

    /// Attaches exception-table entries.
    pub fn exception_table(&mut self, entries: Vec<ExceptionTableEntry>) -> &mut Self {
        self.exception_table = entries;
        self
    }

    /// Overrides the access flags.
    pub fn access_flags(&mut self, flags: u16) -> &mut Self {
        self.access_flags = flags;
        self
    }
}

/// Builds a [`ClassFile`] incrementally.
///
/// The builder owns the constant pool; callers may intern extra constants
/// through [`ClassFileBuilder::pool_mut`] (e.g. literals referenced from
/// bytecode) before or between member additions.
#[derive(Debug)]
pub struct ClassFileBuilder {
    name: String,
    super_name: String,
    pool: ConstantPool,
    fields: Vec<FieldInfo>,
    methods: Vec<MethodInfo>,
    interfaces: Vec<String>,
    source_file: Option<String>,
    access_flags: AccessFlags,
}

impl ClassFileBuilder {
    /// Starts a class named `name` (internal form, e.g. `pkg/Main`)
    /// extending `java/lang/Object`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ClassFileBuilder {
            name: name.into(),
            super_name: "java/lang/Object".to_owned(),
            pool: ConstantPool::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            interfaces: Vec::new(),
            source_file: None,
            access_flags: AccessFlags::default(),
        }
    }

    /// Sets the superclass (internal form).
    pub fn super_class(&mut self, name: impl Into<String>) -> &mut Self {
        self.super_name = name.into();
        self
    }

    /// Declares an implemented interface (internal form).
    pub fn interface(&mut self, name: impl Into<String>) -> &mut Self {
        self.interfaces.push(name.into());
        self
    }

    /// Attaches a `SourceFile` attribute.
    pub fn source_file(&mut self, file: impl Into<String>) -> &mut Self {
        self.source_file = Some(file.into());
        self
    }

    /// Mutable access to the constant pool for interning literals and
    /// symbolic references used by bytecode.
    pub fn pool_mut(&mut self) -> &mut ConstantPool {
        &mut self.pool
    }

    /// Adds a `static` field of the given descriptor.
    ///
    /// # Errors
    ///
    /// Propagates constant-pool capacity errors.
    pub fn add_static_field(&mut self, name: &str, descriptor: &str) -> Result<(), ClassFileError> {
        if self.fields.len() >= u16::MAX as usize {
            return Err(ClassFileError::TooManyMembers("fields"));
        }
        let n = self.pool.utf8(name)?;
        let d = self.pool.utf8(descriptor)?;
        self.fields.push(FieldInfo::new(
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            n,
            d,
        ));
        Ok(())
    }

    /// Adds a `static final` field with a `ConstantValue` attribute.
    ///
    /// # Errors
    ///
    /// Propagates constant-pool capacity errors.
    pub fn add_constant_field(
        &mut self,
        name: &str,
        descriptor: &str,
        value: CpIndex,
    ) -> Result<(), ClassFileError> {
        self.add_static_field(name, descriptor)?;
        self.pool.utf8("ConstantValue")?;
        self.fields
            .last_mut()
            .expect("just pushed")
            .attributes
            .push(Attribute::ConstantValue { value });
        Ok(())
    }

    /// Adds a method. Returns its index in the class's method list.
    ///
    /// # Errors
    ///
    /// [`ClassFileError::CodeTooLong`] if the bytecode exceeds 65,535
    /// bytes; pool-capacity errors otherwise.
    pub fn add_method(&mut self, data: MethodData) -> Result<usize, ClassFileError> {
        if self.methods.len() >= u16::MAX as usize {
            return Err(ClassFileError::TooManyMembers("methods"));
        }
        if data.code.len() > u16::MAX as usize {
            return Err(ClassFileError::CodeTooLong(data.code.len()));
        }
        let n = self.pool.utf8(data.name.as_str())?;
        let d = self.pool.utf8(data.descriptor.as_str())?;
        self.pool.utf8("Code")?;
        let mut nested = Vec::new();
        if !data.line_numbers.is_empty() {
            self.pool.utf8("LineNumberTable")?;
            nested.push(Attribute::LineNumberTable {
                entries: data.line_numbers,
            });
        }
        let mut m = MethodInfo::new(data.access_flags, n, d);
        m.attributes.push(Attribute::Code {
            max_stack: data.max_stack,
            max_locals: data.max_locals,
            code: data.code,
            exception_table: data.exception_table,
            attributes: nested,
        });
        self.methods.push(m);
        Ok(self.methods.len() - 1)
    }

    /// Finalizes the class file.
    ///
    /// # Errors
    ///
    /// Propagates constant-pool capacity errors; the result is validated
    /// before being returned.
    pub fn build(mut self) -> Result<ClassFile, ClassFileError> {
        let this_class = self.pool.class(&self.name.clone())?;
        let super_class = self.pool.class(&self.super_name.clone())?;
        let mut interfaces = Vec::with_capacity(self.interfaces.len());
        for i in std::mem::take(&mut self.interfaces) {
            interfaces.push(self.pool.class(&i)?);
        }
        let mut attributes = Vec::new();
        if let Some(sf) = self.source_file.take() {
            self.pool.utf8("SourceFile")?;
            let file = self.pool.utf8(sf)?;
            attributes.push(Attribute::SourceFile { file });
        }
        let class = ClassFile {
            minor_version: 3,
            major_version: 45,
            constant_pool: self.pool,
            access_flags: self.access_flags,
            this_class,
            super_class,
            interfaces,
            fields: self.fields,
            methods: self.methods,
            attributes,
        };
        class.validate()?;
        Ok(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_serializable_class() {
        let mut b = ClassFileBuilder::new("a/B");
        b.source_file("B.java");
        b.interface("a/I");
        b.add_static_field("x", "I").unwrap();
        let mut md = MethodData::new("run", "()V", vec![0xB1]);
        md.line_numbers(vec![(0, 10)]);
        b.add_method(md).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.to_bytes().len() as u32, c.total_size());
        assert_eq!(c.interfaces.len(), 1);
        assert_eq!(c.name().unwrap().0, "a/B");
    }

    #[test]
    fn constant_field_gets_constant_value_attribute() {
        let mut b = ClassFileBuilder::new("a/C");
        let v = b.pool_mut().intern(crate::Constant::Integer(42)).unwrap();
        b.add_constant_field("ANSWER", "I", v).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.fields[0].attributes.len(), 1);
    }

    #[test]
    fn oversized_code_rejected() {
        let mut b = ClassFileBuilder::new("a/D");
        let err = b.add_method(MethodData::new("m", "()V", vec![0; 70_000]));
        assert_eq!(err.unwrap_err(), ClassFileError::CodeTooLong(70_000));
    }

    #[test]
    fn method_indices_are_sequential() {
        let mut b = ClassFileBuilder::new("a/E");
        assert_eq!(
            b.add_method(MethodData::new("m0", "()V", vec![0xB1]))
                .unwrap(),
            0
        );
        assert_eq!(
            b.add_method(MethodData::new("m1", "()V", vec![0xB1]))
                .unwrap(),
            1
        );
    }
}
