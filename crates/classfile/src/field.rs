//! `field_info` structures — part of a class's global data.

use crate::attribute::Attribute;
use crate::constant_pool::{ConstantPool, CpIndex};
use crate::error::ClassFileError;

/// One field of a class (`field_info` in the wire format).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldInfo {
    /// Access flags (`ACC_PUBLIC`, `ACC_STATIC`, …).
    pub access_flags: u16,
    /// Constant-pool index of the field name (UTF-8).
    pub name: CpIndex,
    /// Constant-pool index of the field descriptor (UTF-8), e.g. `I`.
    pub descriptor: CpIndex,
    /// Field attributes (typically `ConstantValue` for static finals).
    pub attributes: Vec<Attribute>,
}

impl FieldInfo {
    /// Creates a field with no attributes.
    #[must_use]
    pub fn new(access_flags: u16, name: CpIndex, descriptor: CpIndex) -> Self {
        FieldInfo {
            access_flags,
            name,
            descriptor,
            attributes: Vec::new(),
        }
    }

    /// Exact serialized size: 2+2+2+2 header plus attributes.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        8 + self
            .attributes
            .iter()
            .map(Attribute::wire_size)
            .sum::<u32>()
    }

    /// Appends the wire encoding to `out`.
    ///
    /// # Errors
    ///
    /// Propagates attribute serialization failures.
    pub fn write(&self, cp: &ConstantPool, out: &mut Vec<u8>) -> Result<(), ClassFileError> {
        out.extend_from_slice(&self.access_flags.to_be_bytes());
        out.extend_from_slice(&self.name.0.to_be_bytes());
        out.extend_from_slice(&self.descriptor.0.to_be_bytes());
        out.extend_from_slice(&(self.attributes.len() as u16).to_be_bytes());
        for a in &self.attributes {
            a.write(cp, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_field_is_eight_bytes() {
        let f = FieldInfo::new(0x0009, CpIndex(1), CpIndex(2));
        assert_eq!(f.wire_size(), 8);
        let mut out = Vec::new();
        f.write(&ConstantPool::new(), &mut out).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn constant_value_attribute_adds_eight_bytes() {
        let mut cp = ConstantPool::new();
        cp.utf8("ConstantValue").unwrap();
        let mut f = FieldInfo::new(0x0019, CpIndex(1), CpIndex(2));
        f.attributes
            .push(Attribute::ConstantValue { value: CpIndex(3) });
        assert_eq!(f.wire_size(), 8 + 6 + 2);
        let mut out = Vec::new();
        f.write(&cp, &mut out).unwrap();
        assert_eq!(out.len() as u32, f.wire_size());
    }
}
