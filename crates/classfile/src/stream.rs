//! Verified-prefix streaming: the non-strict wire encoding and an
//! incremental validator that checks each unit the moment it arrives.
//!
//! The paper's non-strict format reorders a class file for transfer:
//! all **global data** first (the prelude — header, constant pool,
//! midsection, fields, class attributes), then each method's local data
//! and code closed by a two-byte **method delimiter** (§3). The moment a
//! delimiter arrives, the method it closes may run — which means the
//! receiver is linking code from a file it has only partially seen.
//!
//! [`StreamLoader`] is that receiver's trust boundary. It consumes the
//! stream incrementally — arbitrary chunk sizes, down to one byte at a
//! time — and validates every structure as soon as its bytes are
//! complete: the prelude gets the pool cross-reference checks of
//! verification steps 1–2 ([`ConstantPool::validate`]), each method gets
//! its name/descriptor resolution and delimiter check at arrival. A
//! violation is reported the moment the *prefix* containing it is
//! complete, as a typed [`StreamError`]; no input, however hostile, can
//! make the loader panic. A fully streamed class reassembles to a
//! [`ClassFile`] whose [`ClassFile::to_bytes`] round-trips byte-exactly.
//!
//! Unit sizes line up with the transfer simulator: the prelude is
//! exactly [`ClassFile::global_data_size`] bytes and each method unit is
//! its `method_info` wire size plus [`DELIMITER_BYTES`] — the same
//! accounting `netsim` charges on the link.
//!
//! ```
//! use nonstrict_classfile::{stream_units, ClassFileBuilder, MethodData, StreamLoader};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ClassFileBuilder::new("demo/Streamed");
//! b.add_method(MethodData::new("run", "()V", vec![0xB1]))?;
//! let class = b.build()?;
//!
//! let mut loader = StreamLoader::new();
//! for unit in stream_units(&class)? {
//!     loader.feed(&unit)?; // validated at arrival, unit by unit
//! }
//! let rebuilt = loader.finish()?;
//! assert_eq!(rebuilt.to_bytes(), class.to_bytes()); // byte-exact
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use crate::attribute::Attribute;
use crate::class::{AccessFlags, ClassFile, MAGIC};
use crate::constant_pool::{Constant, ConstantPool, CpIndex};
use crate::error::ClassFileError;
use crate::field::FieldInfo;
use crate::method::MethodInfo;
use crate::parser::{parse_attribute, parse_field, parse_method, parse_pool, Cursor, ParseError};

/// The two-byte method delimiter that closes each method unit (§3: "a
/// method delimiter is placed after each procedure and its data").
pub const METHOD_DELIMITER: [u8; 2] = [0xDE, 0x1F];

/// Number of delimiter bytes per method unit; matches the transfer
/// simulator's `DELIMITER_BYTES` charge.
pub const DELIMITER_BYTES: usize = METHOD_DELIMITER.len();

/// Errors produced by the streaming loader. Every variant is a clean
/// rejection: hostile input can reach any of these, never a panic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StreamError {
    /// A structure inside a unit failed to parse (offsets are relative
    /// to the start of the unit being consumed).
    Parse(ParseError),
    /// A completed structure failed semantic validation (dangling or
    /// wrong-kind constant-pool references).
    Semantic(ClassFileError),
    /// A method unit did not end with [`METHOD_DELIMITER`].
    BadDelimiter {
        /// File position of the offending method.
        index: usize,
    },
    /// Bytes kept arriving after the final declared method.
    TrailingBytes {
        /// Number of unconsumed bytes seen so far.
        count: usize,
    },
    /// `finish` was called before the full class had streamed in.
    Incomplete {
        /// Which structure was still in flight (`"prelude"` or
        /// `"methods"`).
        stage: &'static str,
    },
    /// The loader already rejected this stream; further input is
    /// refused.
    AlreadyFailed,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "stream parse error: {e}"),
            Self::Semantic(e) => write!(f, "stream validation error: {e}"),
            Self::BadDelimiter { index } => {
                write!(f, "method {index} is not closed by the method delimiter")
            }
            Self::TrailingBytes { count } => {
                write!(f, "{count} bytes after the final declared method")
            }
            Self::Incomplete { stage } => {
                write!(f, "stream ended while {stage} were still in flight")
            }
            Self::AlreadyFailed => write!(f, "stream already rejected; input refused"),
        }
    }
}

impl Error for StreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Parse(e) => Some(e),
            Self::Semantic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for StreamError {
    fn from(e: ParseError) -> Self {
        StreamError::Parse(e)
    }
}

impl From<ClassFileError> for StreamError {
    fn from(e: ClassFileError) -> Self {
        StreamError::Semantic(e)
    }
}

/// Progress notifications emitted by [`StreamLoader::feed`] as each
/// structure completes validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// The prelude (all global data) arrived and passed steps 1–2.
    Prelude {
        /// Constant-pool entries (not slots).
        pool_entries: usize,
        /// Field count.
        fields: usize,
        /// Methods the midsection declares; the stream must deliver
        /// exactly this many method units.
        methods_declared: usize,
    },
    /// A method arrived, validated, and its delimiter matched: it may
    /// now be linked and executed.
    Method {
        /// File position of the method.
        index: usize,
        /// Bytes of raw bytecode in its `Code` attribute.
        code_bytes: u32,
    },
    /// Every declared method has arrived; the class is complete.
    Complete,
}

/// Serializes a class into its non-strict transfer units: unit 0 is the
/// prelude (exactly [`ClassFile::global_data_size`] bytes), units
/// `1..=M` are each method's `method_info` followed by
/// [`METHOD_DELIMITER`].
///
/// # Errors
///
/// Propagates serialization failures for attribute names missing from
/// the pool (impossible for builder-produced classes).
pub fn stream_units(class: &ClassFile) -> Result<Vec<Vec<u8>>, ClassFileError> {
    let mut units = Vec::with_capacity(class.methods.len() + 1);
    let mut prelude = Vec::with_capacity(class.global_data_size() as usize);
    prelude.extend_from_slice(&MAGIC.to_be_bytes());
    prelude.extend_from_slice(&class.minor_version.to_be_bytes());
    prelude.extend_from_slice(&class.major_version.to_be_bytes());
    prelude.extend_from_slice(&class.constant_pool.count_field().to_be_bytes());
    class.constant_pool.write(&mut prelude);
    prelude.extend_from_slice(&class.access_flags.0.to_be_bytes());
    prelude.extend_from_slice(&class.this_class.0.to_be_bytes());
    prelude.extend_from_slice(&class.super_class.0.to_be_bytes());
    prelude.extend_from_slice(&(class.interfaces.len() as u16).to_be_bytes());
    for i in &class.interfaces {
        prelude.extend_from_slice(&i.0.to_be_bytes());
    }
    prelude.extend_from_slice(&(class.fields.len() as u16).to_be_bytes());
    prelude.extend_from_slice(&(class.methods.len() as u16).to_be_bytes());
    prelude.extend_from_slice(&(class.attributes.len() as u16).to_be_bytes());
    for f in &class.fields {
        f.write(&class.constant_pool, &mut prelude)?;
    }
    for a in &class.attributes {
        a.write(&class.constant_pool, &mut prelude)?;
    }
    units.push(prelude);
    for m in &class.methods {
        let mut unit = Vec::with_capacity(m.wire_size() as usize + DELIMITER_BYTES);
        m.write(&class.constant_pool, &mut unit)?;
        unit.extend_from_slice(&METHOD_DELIMITER);
        units.push(unit);
    }
    Ok(units)
}

/// Content-addressed digest of one transfer unit: FNV-1a 64 over the
/// unit's bytes, domain-separated by the unit's stream index so two
/// byte-identical units at different positions digest differently. This
/// is the per-unit fingerprint a transfer manifest publishes; a
/// receiver recomputing it over delivered bytes detects a mirror
/// serving stale or equivocating content at the unit boundary.
#[must_use]
pub fn unit_digest(index: usize, bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in (index as u64)
        .to_le_bytes()
        .into_iter()
        .chain(bytes.iter().copied())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-unit content digests of a class's non-strict stream, in unit
/// order: index 0 is the prelude, indices `1..=M` the delimiter-closed
/// method units. These are the entries a content-addressed unit
/// manifest carries for the class.
///
/// # Errors
///
/// Propagates serialization failures from [`stream_units`].
pub fn stream_digests(class: &ClassFile) -> Result<Vec<u64>, ClassFileError> {
    Ok(stream_units(class)?
        .iter()
        .enumerate()
        .map(|(i, u)| unit_digest(i, u))
        .collect())
}

/// Everything the prelude carries; held until [`StreamLoader::finish`]
/// reassembles the class.
struct PreludeParts {
    minor_version: u16,
    major_version: u16,
    constant_pool: ConstantPool,
    access_flags: AccessFlags,
    this_class: CpIndex,
    super_class: CpIndex,
    interfaces: Vec<CpIndex>,
    fields: Vec<FieldInfo>,
    attributes: Vec<Attribute>,
    methods_declared: usize,
}

enum Phase {
    Prelude,
    Methods { next: usize },
    Done,
    Failed,
}

/// Incremental verified-prefix loader for the non-strict unit stream.
///
/// Feed bytes in any chunking; each completed structure is validated at
/// once. See the [module docs](self) for an example.
pub struct StreamLoader {
    buf: Vec<u8>,
    phase: Phase,
    prelude: Option<PreludeParts>,
    methods: Vec<MethodInfo>,
}

impl Default for StreamLoader {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamLoader {
    /// A loader expecting the start of a class stream.
    #[must_use]
    pub fn new() -> Self {
        StreamLoader {
            buf: Vec::new(),
            phase: Phase::Prelude,
            prelude: None,
            methods: Vec::new(),
        }
    }

    /// Rebuilds a loader from locally cached transfer units after a
    /// connection loss, revalidating every byte.
    ///
    /// `cached_units` are the units the session journal's delivered
    /// watermark says survived the outage, in stream order starting at
    /// unit 0 (the prelude). The cache is *untrusted* — a torn write
    /// while the journal was being checkpointed can corrupt it — so
    /// nothing is skipped: each unit goes back through the same arrival
    /// validation a live stream gets. On success the loader stands
    /// exactly where the interrupted one did and the transfer continues
    /// with the next unit; on error the caller must discard the cache
    /// and restart the class from unit 0 (fail closed).
    ///
    /// # Errors
    ///
    /// The first [`StreamError`] the cached prefix exhibits.
    pub fn resume<U: AsRef<[u8]>>(cached_units: &[U]) -> Result<StreamLoader, StreamError> {
        let mut loader = StreamLoader::new();
        for unit in cached_units {
            loader.feed(unit.as_ref())?;
        }
        Ok(loader)
    }

    /// Methods fully received and validated so far.
    #[must_use]
    pub fn methods_received(&self) -> usize {
        self.methods.len()
    }

    /// Transfer units fully received and validated so far, in the
    /// simulator's numbering: unit 0 is the prelude, units `1..=M` the
    /// methods. This is the delivered watermark a session checkpoint
    /// records for the class.
    #[must_use]
    pub fn units_received(&self) -> usize {
        usize::from(self.prelude.is_some()) + self.methods.len()
    }

    /// Whether every declared unit has arrived and validated.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Consumes the next chunk of the stream, validating every structure
    /// that completes inside it and reporting each as a [`StreamEvent`].
    ///
    /// A chunk that merely ends mid-structure is not an error — the
    /// bytes are buffered and validation resumes on the next feed. An
    /// error means the *prefix received so far* is already invalid, no
    /// matter what bytes could follow; the loader then refuses further
    /// input.
    ///
    /// # Errors
    ///
    /// The first [`StreamError`] the accumulated prefix exhibits.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<StreamEvent>, StreamError> {
        if matches!(self.phase, Phase::Failed) {
            return Err(StreamError::AlreadyFailed);
        }
        self.buf.extend_from_slice(chunk);
        let mut events = Vec::new();
        loop {
            match self.phase {
                Phase::Prelude => {
                    let Some((parts, used)) =
                        try_parse_prelude(&self.buf).map_err(|e| self.fail(e))?
                    else {
                        break;
                    };
                    validate_prelude(&parts).map_err(|e| self.fail(e))?;
                    self.buf.drain(..used);
                    events.push(StreamEvent::Prelude {
                        pool_entries: parts.constant_pool.len(),
                        fields: parts.fields.len(),
                        methods_declared: parts.methods_declared,
                    });
                    let declared = parts.methods_declared;
                    self.prelude = Some(parts);
                    if declared == 0 {
                        self.phase = Phase::Done;
                        events.push(StreamEvent::Complete);
                    } else {
                        self.phase = Phase::Methods { next: 0 };
                    }
                }
                Phase::Methods { next } => {
                    let (parsed, declared) = {
                        let parts = self.prelude.as_ref().expect("prelude set before methods");
                        let r = try_parse_method_unit(&self.buf, &parts.constant_pool, next)
                            .and_then(|opt| match opt {
                                Some((m, used)) => validate_method(&m, &parts.constant_pool)
                                    .map(|()| Some((m, used))),
                                None => Ok(None),
                            });
                        (r, parts.methods_declared)
                    };
                    let Some((method, used)) = parsed.map_err(|e| self.fail(e))? else {
                        break;
                    };
                    self.buf.drain(..used);
                    events.push(StreamEvent::Method {
                        index: next,
                        code_bytes: method.code_size(),
                    });
                    self.methods.push(method);
                    if next + 1 == declared {
                        self.phase = Phase::Done;
                        events.push(StreamEvent::Complete);
                    } else {
                        self.phase = Phase::Methods { next: next + 1 };
                    }
                }
                Phase::Done => {
                    if !self.buf.is_empty() {
                        let count = self.buf.len();
                        return Err(self.fail(StreamError::TrailingBytes { count }));
                    }
                    break;
                }
                Phase::Failed => return Err(StreamError::AlreadyFailed),
            }
        }
        Ok(events)
    }

    /// Reassembles the fully streamed class.
    ///
    /// # Errors
    ///
    /// [`StreamError::Incomplete`] if units are still outstanding,
    /// [`StreamError::AlreadyFailed`] after a rejection.
    pub fn finish(self) -> Result<ClassFile, StreamError> {
        match self.phase {
            Phase::Done => {
                let p = self.prelude.expect("done implies prelude arrived");
                Ok(ClassFile {
                    minor_version: p.minor_version,
                    major_version: p.major_version,
                    constant_pool: p.constant_pool,
                    access_flags: p.access_flags,
                    this_class: p.this_class,
                    super_class: p.super_class,
                    interfaces: p.interfaces,
                    fields: p.fields,
                    methods: self.methods,
                    attributes: p.attributes,
                })
            }
            Phase::Prelude => Err(StreamError::Incomplete { stage: "prelude" }),
            Phase::Methods { .. } => Err(StreamError::Incomplete { stage: "methods" }),
            Phase::Failed => Err(StreamError::AlreadyFailed),
        }
    }

    fn fail(&mut self, e: StreamError) -> StreamError {
        self.phase = Phase::Failed;
        e
    }
}

/// Attempts to parse a complete prelude from the front of `bytes`.
/// `Ok(None)` means the prefix is consistent but incomplete.
fn try_parse_prelude(bytes: &[u8]) -> Result<Option<(PreludeParts, usize)>, StreamError> {
    let mut c = Cursor::new(bytes);
    match parse_prelude(&mut c) {
        Ok(parts) => Ok(Some((parts, c.pos))),
        Err(ParseError::UnexpectedEof { .. }) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

fn parse_prelude(c: &mut Cursor<'_>) -> Result<PreludeParts, ParseError> {
    let magic = c.u32()?;
    if magic != MAGIC {
        return Err(ParseError::BadMagic(magic));
    }
    let minor_version = c.u16()?;
    let major_version = c.u16()?;
    let count = c.u16()?;
    let constant_pool = parse_pool(c, count)?;
    let access_flags = AccessFlags(c.u16()?);
    let this_class = CpIndex(c.u16()?);
    let super_class = CpIndex(c.u16()?);
    let interfaces_count = c.u16()?;
    let mut interfaces = Vec::with_capacity(interfaces_count as usize);
    for _ in 0..interfaces_count {
        interfaces.push(CpIndex(c.u16()?));
    }
    let fields_count = c.u16()?;
    let methods_declared = c.u16()? as usize;
    let attributes_count = c.u16()?;
    let mut fields = Vec::with_capacity(fields_count as usize);
    for _ in 0..fields_count {
        fields.push(parse_field(c, &constant_pool)?);
    }
    let mut attributes = Vec::with_capacity(attributes_count as usize);
    for _ in 0..attributes_count {
        attributes.push(parse_attribute(c, &constant_pool)?);
    }
    Ok(PreludeParts {
        minor_version,
        major_version,
        constant_pool,
        access_flags,
        this_class,
        super_class,
        interfaces,
        fields,
        attributes,
        methods_declared,
    })
}

/// Attempts to parse one delimiter-closed method unit from the front of
/// `bytes`. `Ok(None)` means the prefix is consistent but incomplete.
fn try_parse_method_unit(
    bytes: &[u8],
    pool: &ConstantPool,
    index: usize,
) -> Result<Option<(MethodInfo, usize)>, StreamError> {
    let mut c = Cursor::new(bytes);
    let method = match parse_method(&mut c, pool) {
        Ok(m) => m,
        Err(ParseError::UnexpectedEof { .. }) => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    match c.take(DELIMITER_BYTES) {
        Ok(d) if d == METHOD_DELIMITER => Ok(Some((method, c.pos))),
        Ok(_) => Err(StreamError::BadDelimiter { index }),
        Err(_) => Ok(None),
    }
}

/// Steps 1–2 on the freshly arrived global data: pool cross-references,
/// this/super/interface class entries, field name/descriptor chains.
fn validate_prelude(p: &PreludeParts) -> Result<(), StreamError> {
    p.constant_pool.validate()?;
    match p.constant_pool.get(p.this_class) {
        Some(Constant::Class { name }) => {
            p.constant_pool.utf8_at(*name)?;
        }
        Some(_) => {
            return Err(ClassFileError::WrongConstantKind {
                index: p.this_class.0,
                expected: "Class",
            }
            .into())
        }
        None => return Err(ClassFileError::BadCpIndex(p.this_class.0).into()),
    }
    let class_entry = |idx: CpIndex| -> Result<(), StreamError> {
        match p.constant_pool.get(idx) {
            Some(Constant::Class { .. }) => Ok(()),
            Some(_) => Err(ClassFileError::WrongConstantKind {
                index: idx.0,
                expected: "Class",
            }
            .into()),
            None => Err(ClassFileError::BadCpIndex(idx.0).into()),
        }
    };
    if !p.super_class.is_none() {
        class_entry(p.super_class)?;
    }
    for &i in &p.interfaces {
        class_entry(i)?;
    }
    for f in &p.fields {
        p.constant_pool.utf8_at(f.name)?;
        p.constant_pool.utf8_at(f.descriptor)?;
    }
    Ok(())
}

/// Per-method arrival checks: the name/descriptor chains must resolve in
/// the already-validated pool.
fn validate_method(m: &MethodInfo, pool: &ConstantPool) -> Result<(), StreamError> {
    pool.utf8_at(m.name)?;
    pool.utf8_at(m.descriptor)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClassFileBuilder, MethodData};

    fn sample() -> ClassFile {
        let mut b = ClassFileBuilder::new("pk/Streamed");
        b.source_file("Streamed.java");
        b.interface("pk/Runnable");
        b.pool_mut().string("a literal").unwrap();
        b.pool_mut().intern(Constant::Long(1 << 40)).unwrap();
        b.add_static_field("counter", "I").unwrap();
        b.add_method(MethodData::new("run", "()V", vec![0xB1]))
            .unwrap();
        let mut md = MethodData::new("twice", "(I)I", vec![0x1A, 0x1A, 0x60, 0xAC]);
        md.line_numbers(vec![(0, 7)]);
        b.add_method(md).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn prelude_is_exactly_global_data_size() {
        let class = sample();
        let units = stream_units(&class).unwrap();
        assert_eq!(units[0].len() as u32, class.global_data_size());
        for (i, m) in class.methods.iter().enumerate() {
            assert_eq!(
                units[i + 1].len() as u32,
                m.wire_size() + DELIMITER_BYTES as u32
            );
        }
    }

    #[test]
    fn unit_stream_round_trips_byte_exactly() {
        let class = sample();
        let mut loader = StreamLoader::new();
        let mut events = Vec::new();
        for unit in stream_units(&class).unwrap() {
            events.extend(loader.feed(&unit).unwrap());
        }
        assert!(loader.is_complete());
        assert!(matches!(
            events[0],
            StreamEvent::Prelude {
                methods_declared: 2,
                ..
            }
        ));
        assert_eq!(events.last(), Some(&StreamEvent::Complete));
        assert_eq!(loader.finish().unwrap().to_bytes(), class.to_bytes());
    }

    #[test]
    fn one_byte_dribble_is_equivalent() {
        let class = sample();
        let stream: Vec<u8> = stream_units(&class).unwrap().concat();
        let mut loader = StreamLoader::new();
        let mut methods_seen = 0;
        for b in &stream {
            for e in loader.feed(std::slice::from_ref(b)).unwrap() {
                if matches!(e, StreamEvent::Method { .. }) {
                    methods_seen += 1;
                }
            }
        }
        assert_eq!(methods_seen, 2);
        assert_eq!(loader.finish().unwrap().to_bytes(), class.to_bytes());
    }

    #[test]
    fn every_truncation_is_incomplete_never_panics() {
        let class = sample();
        let stream: Vec<u8> = stream_units(&class).unwrap().concat();
        for cut in 0..stream.len() {
            let mut loader = StreamLoader::new();
            loader.feed(&stream[..cut]).unwrap();
            assert!(
                loader.finish().is_err(),
                "a {cut}-byte prefix of {} must not complete",
                stream.len()
            );
        }
    }

    #[test]
    fn corrupt_delimiter_is_rejected_at_arrival() {
        let class = sample();
        let mut units = stream_units(&class).unwrap();
        let last = units[1].len() - 1;
        units[1][last] ^= 0xFF;
        let mut loader = StreamLoader::new();
        loader.feed(&units[0]).unwrap();
        assert_eq!(
            loader.feed(&units[1]),
            Err(StreamError::BadDelimiter { index: 0 })
        );
        // The loader stays failed.
        assert_eq!(loader.feed(&units[2]), Err(StreamError::AlreadyFailed));
    }

    #[test]
    fn dangling_this_class_fails_prelude_validation() {
        let class = sample();
        let mut units = stream_units(&class).unwrap();
        // this_class lives right after the access flags.
        let off = (class.header_size() + class.constant_pool.wire_size() + 2) as usize;
        units[0][off] = 0xFF;
        units[0][off + 1] = 0xFF;
        let mut loader = StreamLoader::new();
        assert!(matches!(
            loader.feed(&units[0]),
            Err(StreamError::Semantic(_))
        ));
    }

    #[test]
    fn trailing_bytes_after_final_method_are_rejected() {
        let class = sample();
        let stream: Vec<u8> = stream_units(&class).unwrap().concat();
        let mut loader = StreamLoader::new();
        loader.feed(&stream).unwrap();
        assert!(matches!(
            loader.feed(&[0xAA]),
            Err(StreamError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn resume_from_every_watermark_completes_byte_exactly() {
        let class = sample();
        let units = stream_units(&class).unwrap();
        for watermark in 0..=units.len() {
            let mut loader = StreamLoader::resume(&units[..watermark]).unwrap();
            assert_eq!(loader.units_received(), watermark);
            for unit in &units[watermark..] {
                loader.feed(unit).unwrap();
            }
            assert_eq!(loader.units_received(), units.len());
            assert_eq!(loader.finish().unwrap().to_bytes(), class.to_bytes());
        }
    }

    #[test]
    fn resume_revalidates_the_cache_and_fails_closed_on_corruption() {
        let class = sample();
        let mut units = stream_units(&class).unwrap();
        let last = units[1].len() - 1;
        units[1][last] ^= 0xFF; // torn cache: method 0's delimiter is gone
        assert_eq!(
            StreamLoader::resume(&units[..2]).err(),
            Some(StreamError::BadDelimiter { index: 0 })
        );
    }

    #[test]
    fn units_received_counts_the_prelude_and_each_method() {
        let class = sample();
        let units = stream_units(&class).unwrap();
        let mut loader = StreamLoader::new();
        assert_eq!(loader.units_received(), 0);
        for (i, unit) in units.iter().enumerate() {
            loader.feed(unit).unwrap();
            assert_eq!(loader.units_received(), i + 1);
        }
    }

    #[test]
    fn unit_digests_are_content_addressed_and_position_separated() {
        let class = sample();
        let units = stream_units(&class).unwrap();
        let digests = stream_digests(&class).unwrap();
        assert_eq!(digests.len(), units.len());
        // Deterministic: same bytes, same digest.
        assert_eq!(digests, stream_digests(&class).unwrap());
        // Content-addressed: any single byte flip moves the digest.
        for (i, unit) in units.iter().enumerate() {
            for pos in [0, unit.len() / 2, unit.len() - 1] {
                let mut tampered = unit.clone();
                tampered[pos] ^= 0x01;
                assert_ne!(
                    unit_digest(i, &tampered),
                    digests[i],
                    "flip at unit {i} byte {pos} went undetected"
                );
            }
        }
        // Position-separated: identical bytes at different stream
        // indices digest differently.
        assert_ne!(unit_digest(0, &units[1]), unit_digest(1, &units[1]));
    }

    #[test]
    fn bad_magic_fails_on_the_first_complete_header() {
        let mut loader = StreamLoader::new();
        // Three bytes of garbage: not yet condemnable (magic incomplete).
        assert_eq!(loader.feed(&[0xCA, 0xFE, 0xBA]).unwrap(), vec![]);
        // The fourth byte completes a wrong magic: typed rejection.
        assert!(matches!(
            loader.feed(&[0x00]),
            Err(StreamError::Parse(ParseError::BadMagic(_)))
        ));
    }
}
