//! Class-file attributes (`attribute_info` structures).
//!
//! Attributes attach to the class itself (global data), to fields (global
//! data), and to methods (the method's *local data* in the paper's
//! terminology). Sizes follow the wire format: a two-byte name index, a
//! four-byte length, then the payload.

use crate::constant_pool::{ConstantPool, CpIndex};
use crate::error::ClassFileError;

/// One entry of a `Code` attribute's exception table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExceptionTableEntry {
    /// Start of the protected range (byte offset into the code).
    pub start_pc: u16,
    /// End of the protected range (exclusive).
    pub end_pc: u16,
    /// Handler entry point.
    pub handler_pc: u16,
    /// Constant-pool index of the caught class, or `CpIndex::NONE` for
    /// catch-all.
    pub catch_type: CpIndex,
}

impl ExceptionTableEntry {
    /// Wire size of one exception-table entry.
    pub const WIRE_SIZE: u32 = 8;
}

/// A class-file attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// The `Code` attribute of a method: the bytecode plus its local
    /// metadata. This is the unit the paper's *method delimiter* closes.
    Code {
        /// Maximum operand-stack depth.
        max_stack: u16,
        /// Number of local-variable slots.
        max_locals: u16,
        /// The raw bytecode.
        code: Vec<u8>,
        /// Exception handlers covering ranges of `code`.
        exception_table: Vec<ExceptionTableEntry>,
        /// Nested attributes (typically `LineNumberTable`).
        attributes: Vec<Attribute>,
    },
    /// `LineNumberTable`: pairs of (code offset, source line).
    LineNumberTable {
        /// The (start_pc, line_number) pairs.
        entries: Vec<(u16, u16)>,
    },
    /// `ConstantValue` for `static final` fields.
    ConstantValue {
        /// Index of the constant.
        value: CpIndex,
    },
    /// `SourceFile` on the class.
    SourceFile {
        /// Index of the file-name UTF-8 entry.
        file: CpIndex,
    },
    /// `Exceptions` on a method: the declared `throws` list.
    Exceptions {
        /// Class indices of the declared exception types.
        classes: Vec<CpIndex>,
    },
    /// Any other attribute, carried as opaque bytes (used to model
    /// vendor attributes and for size calibration).
    Raw {
        /// Attribute name (must be interned as UTF-8 when serializing).
        name: String,
        /// Opaque payload.
        bytes: Vec<u8>,
    },
}

impl Attribute {
    /// The attribute's name as it appears in the constant pool.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Attribute::Code { .. } => "Code",
            Attribute::LineNumberTable { .. } => "LineNumberTable",
            Attribute::ConstantValue { .. } => "ConstantValue",
            Attribute::SourceFile { .. } => "SourceFile",
            Attribute::Exceptions { .. } => "Exceptions",
            Attribute::Raw { name, .. } => name,
        }
    }

    /// Size of the payload (the wire `attribute_length` field).
    #[must_use]
    pub fn payload_size(&self) -> u32 {
        match self {
            Attribute::Code {
                code,
                exception_table,
                attributes,
                ..
            } => {
                2 + 2
                    + 4
                    + code.len() as u32
                    + 2
                    + ExceptionTableEntry::WIRE_SIZE * exception_table.len() as u32
                    + 2
                    + attributes.iter().map(Attribute::wire_size).sum::<u32>()
            }
            Attribute::LineNumberTable { entries } => 2 + 4 * entries.len() as u32,
            Attribute::ConstantValue { .. } => 2,
            Attribute::SourceFile { .. } => 2,
            Attribute::Exceptions { classes } => 2 + 2 * classes.len() as u32,
            Attribute::Raw { bytes, .. } => bytes.len() as u32,
        }
    }

    /// Total wire size: name index (2) + length (4) + payload.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        6 + self.payload_size()
    }

    /// Interns the attribute's name (and any nested names) into `cp` so
    /// serialization can emit real name indices.
    ///
    /// # Errors
    ///
    /// Propagates pool-capacity errors from [`ConstantPool::utf8`].
    pub fn intern_names(&self, cp: &mut ConstantPool) -> Result<(), ClassFileError> {
        cp.utf8(self.name())?;
        if let Attribute::Code { attributes, .. } = self {
            for a in attributes {
                a.intern_names(cp)?;
            }
        }
        Ok(())
    }

    /// Appends the wire encoding to `out`, resolving names through `cp`.
    ///
    /// # Errors
    ///
    /// Fails if a name was not interned beforehand (see
    /// [`Attribute::intern_names`]) or if the payload exceeds the length
    /// field.
    pub fn write(&self, cp: &ConstantPool, out: &mut Vec<u8>) -> Result<(), ClassFileError> {
        let name_idx = lookup_utf8(cp, self.name())?;
        out.extend_from_slice(&name_idx.0.to_be_bytes());
        out.extend_from_slice(&self.payload_size().to_be_bytes());
        match self {
            Attribute::Code {
                max_stack,
                max_locals,
                code,
                exception_table,
                attributes,
            } => {
                if code.len() > u16::MAX as usize {
                    return Err(ClassFileError::CodeTooLong(code.len()));
                }
                out.extend_from_slice(&max_stack.to_be_bytes());
                out.extend_from_slice(&max_locals.to_be_bytes());
                out.extend_from_slice(&(code.len() as u32).to_be_bytes());
                out.extend_from_slice(code);
                out.extend_from_slice(&(exception_table.len() as u16).to_be_bytes());
                for e in exception_table {
                    out.extend_from_slice(&e.start_pc.to_be_bytes());
                    out.extend_from_slice(&e.end_pc.to_be_bytes());
                    out.extend_from_slice(&e.handler_pc.to_be_bytes());
                    out.extend_from_slice(&e.catch_type.0.to_be_bytes());
                }
                out.extend_from_slice(&(attributes.len() as u16).to_be_bytes());
                for a in attributes {
                    a.write(cp, out)?;
                }
            }
            Attribute::LineNumberTable { entries } => {
                out.extend_from_slice(&(entries.len() as u16).to_be_bytes());
                for (pc, line) in entries {
                    out.extend_from_slice(&pc.to_be_bytes());
                    out.extend_from_slice(&line.to_be_bytes());
                }
            }
            Attribute::ConstantValue { value } => {
                out.extend_from_slice(&value.0.to_be_bytes());
            }
            Attribute::SourceFile { file } => {
                out.extend_from_slice(&file.0.to_be_bytes());
            }
            Attribute::Exceptions { classes } => {
                out.extend_from_slice(&(classes.len() as u16).to_be_bytes());
                for c in classes {
                    out.extend_from_slice(&c.0.to_be_bytes());
                }
            }
            Attribute::Raw { bytes, .. } => {
                out.extend_from_slice(bytes);
            }
        }
        Ok(())
    }
}

/// Finds an already-interned UTF-8 entry by content.
fn lookup_utf8(cp: &ConstantPool, s: &str) -> Result<CpIndex, ClassFileError> {
    for (idx, c) in cp.iter() {
        if let crate::constant_pool::Constant::Utf8(t) = c {
            if t == s {
                return Ok(idx);
            }
        }
    }
    Err(ClassFileError::BadCpIndex(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_attribute_size_counts_all_parts() {
        let a = Attribute::Code {
            max_stack: 4,
            max_locals: 3,
            code: vec![0; 10],
            exception_table: vec![ExceptionTableEntry::default()],
            attributes: vec![Attribute::LineNumberTable {
                entries: vec![(0, 1), (4, 2)],
            }],
        };
        // payload = 2+2+4+10 + 2+8 + 2 + (6 + 2+8)
        assert_eq!(a.payload_size(), 2 + 2 + 4 + 10 + 2 + 8 + 2 + (6 + 2 + 8));
        assert_eq!(a.wire_size(), a.payload_size() + 6);
    }

    #[test]
    fn write_matches_declared_size() {
        let mut cp = ConstantPool::new();
        let a = Attribute::Code {
            max_stack: 1,
            max_locals: 1,
            code: vec![0xB1], // return
            exception_table: vec![],
            attributes: vec![Attribute::LineNumberTable {
                entries: vec![(0, 7)],
            }],
        };
        a.intern_names(&mut cp).unwrap();
        let mut out = Vec::new();
        a.write(&cp, &mut out).unwrap();
        assert_eq!(out.len() as u32, a.wire_size());
    }

    #[test]
    fn raw_attribute_roundtrip_size() {
        let mut cp = ConstantPool::new();
        let a = Attribute::Raw {
            name: "Deprecated".into(),
            bytes: vec![],
        };
        a.intern_names(&mut cp).unwrap();
        let mut out = Vec::new();
        a.write(&cp, &mut out).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn write_without_interned_name_fails() {
        let cp = ConstantPool::new();
        let a = Attribute::SourceFile { file: CpIndex(1) };
        let mut out = Vec::new();
        assert!(a.write(&cp, &mut out).is_err());
    }

    #[test]
    fn oversized_code_rejected_at_write() {
        let mut cp = ConstantPool::new();
        let a = Attribute::Code {
            max_stack: 0,
            max_locals: 0,
            code: vec![0; 70_000],
            exception_table: vec![],
            attributes: vec![],
        };
        a.intern_names(&mut cp).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            a.write(&cp, &mut out),
            Err(ClassFileError::CodeTooLong(70_000))
        );
    }
}
