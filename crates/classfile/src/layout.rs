//! Section-size accounting: the machinery behind the paper's Table 8
//! (global data and constant-pool composition) and the global/local split
//! of Table 9.

use crate::class::ClassFile;
use crate::constant_pool::{Constant, ConstantPool};
use crate::method::MethodInfo;

/// Byte sizes of every top-level section of a class file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSizes {
    /// Magic, versions, pool count.
    pub header: u32,
    /// Constant-pool entries.
    pub constant_pool: u32,
    /// Access flags, this/super, interface table, count fields.
    pub midsection: u32,
    /// All `field_info` structures.
    pub fields: u32,
    /// Class-level attributes.
    pub class_attributes: u32,
    /// All methods' local data (headers, code-attribute overhead).
    pub method_local_data: u32,
    /// All methods' raw bytecode.
    pub method_code: u32,
}

impl SectionSizes {
    /// Measures `class`.
    #[must_use]
    pub fn of(class: &ClassFile) -> Self {
        let method_code: u32 = class.methods.iter().map(MethodInfo::code_size).sum();
        let methods_total = class.methods_size();
        SectionSizes {
            header: class.header_size(),
            constant_pool: class.constant_pool.wire_size(),
            midsection: class.midsection_size(),
            fields: class.fields_size(),
            class_attributes: class.class_attributes_size(),
            method_local_data: methods_total - method_code,
            method_code,
        }
    }

    /// Global data in the paper's sense.
    #[must_use]
    pub fn global_data(&self) -> u32 {
        self.header + self.constant_pool + self.midsection + self.fields + self.class_attributes
    }

    /// Local data in the paper's sense (method overhead, not code).
    #[must_use]
    pub fn local_data(&self) -> u32 {
        self.method_local_data
    }

    /// Total file size.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.global_data() + self.method_local_data + self.method_code
    }

    /// Component-wise sum, for aggregating a whole application.
    #[must_use]
    pub fn merged(self, other: SectionSizes) -> SectionSizes {
        SectionSizes {
            header: self.header + other.header,
            constant_pool: self.constant_pool + other.constant_pool,
            midsection: self.midsection + other.midsection,
            fields: self.fields + other.fields,
            class_attributes: self.class_attributes + other.class_attributes,
            method_local_data: self.method_local_data + other.method_local_data,
            method_code: self.method_code + other.method_code,
        }
    }
}

/// Byte totals per constant-pool entry kind — the right half of Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstantPoolBreakdown {
    /// `CONSTANT_Utf8` bytes.
    pub utf8: u32,
    /// `CONSTANT_Integer` bytes.
    pub integers: u32,
    /// `CONSTANT_Float` bytes.
    pub floats: u32,
    /// `CONSTANT_Long` bytes.
    pub longs: u32,
    /// `CONSTANT_Double` bytes.
    pub doubles: u32,
    /// `CONSTANT_String` bytes.
    pub strings: u32,
    /// `CONSTANT_Class` bytes.
    pub classes: u32,
    /// `CONSTANT_Fieldref` bytes.
    pub field_refs: u32,
    /// `CONSTANT_Methodref` bytes.
    pub method_refs: u32,
    /// `CONSTANT_NameAndType` bytes.
    pub name_and_type: u32,
    /// `CONSTANT_InterfaceMethodref` bytes.
    pub interface_method_refs: u32,
}

impl ConstantPoolBreakdown {
    /// Measures `pool`.
    #[must_use]
    pub fn of(pool: &ConstantPool) -> Self {
        let mut b = ConstantPoolBreakdown::default();
        for (_, c) in pool.iter() {
            let size = c.wire_size();
            match c {
                Constant::Utf8(_) => b.utf8 += size,
                Constant::Integer(_) => b.integers += size,
                Constant::Float(_) => b.floats += size,
                Constant::Long(_) => b.longs += size,
                Constant::Double(_) => b.doubles += size,
                Constant::String { .. } => b.strings += size,
                Constant::Class { .. } => b.classes += size,
                Constant::FieldRef { .. } => b.field_refs += size,
                Constant::MethodRef { .. } => b.method_refs += size,
                Constant::NameAndType { .. } => b.name_and_type += size,
                Constant::InterfaceMethodRef { .. } => b.interface_method_refs += size,
            }
        }
        b
    }

    /// Total bytes over all kinds.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.utf8
            + self.integers
            + self.floats
            + self.longs
            + self.doubles
            + self.strings
            + self.classes
            + self.field_refs
            + self.method_refs
            + self.name_and_type
            + self.interface_method_refs
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(self, o: ConstantPoolBreakdown) -> ConstantPoolBreakdown {
        ConstantPoolBreakdown {
            utf8: self.utf8 + o.utf8,
            integers: self.integers + o.integers,
            floats: self.floats + o.floats,
            longs: self.longs + o.longs,
            doubles: self.doubles + o.doubles,
            strings: self.strings + o.strings,
            classes: self.classes + o.classes,
            field_refs: self.field_refs + o.field_refs,
            method_refs: self.method_refs + o.method_refs,
            name_and_type: self.name_and_type + o.name_and_type,
            interface_method_refs: self.interface_method_refs + o.interface_method_refs,
        }
    }

    /// Percent (0–100) of the pool occupied by each kind, in Table 8's
    /// column order: Utf8, Ints, Float, Long, Double, String, Class, FRef,
    /// MRef, NandT, IMRef.
    #[must_use]
    pub fn percentages(&self) -> [f64; 11] {
        let t = f64::from(self.total().max(1));
        [
            f64::from(self.utf8),
            f64::from(self.integers),
            f64::from(self.floats),
            f64::from(self.longs),
            f64::from(self.doubles),
            f64::from(self.strings),
            f64::from(self.classes),
            f64::from(self.field_refs),
            f64::from(self.method_refs),
            f64::from(self.name_and_type),
            f64::from(self.interface_method_refs),
        ]
        .map(|v| 100.0 * v / t)
    }
}

/// The left half of Table 8: shares of the global data held by the major
/// sections.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GlobalDataBreakdown {
    /// Global-data bytes total.
    pub global_total: u32,
    /// Constant-pool bytes.
    pub constant_pool: u32,
    /// Field bytes.
    pub fields: u32,
    /// Class-attribute bytes.
    pub attributes: u32,
    /// Interface-table bytes.
    pub interfaces: u32,
    /// Per-kind pool composition.
    pub pool: ConstantPoolBreakdown,
}

impl GlobalDataBreakdown {
    /// Measures `class`.
    #[must_use]
    pub fn of(class: &ClassFile) -> Self {
        let sizes = SectionSizes::of(class);
        GlobalDataBreakdown {
            global_total: sizes.global_data(),
            constant_pool: sizes.constant_pool,
            fields: sizes.fields,
            attributes: sizes.class_attributes,
            interfaces: class.interfaces_size() - 2, // entries only, not the count field
            pool: ConstantPoolBreakdown::of(&class.constant_pool),
        }
    }

    /// Aggregates over many classes (for whole-application rows).
    #[must_use]
    pub fn of_all<'a>(classes: impl IntoIterator<Item = &'a ClassFile>) -> Self {
        classes.into_iter().map(GlobalDataBreakdown::of).fold(
            GlobalDataBreakdown::default(),
            |acc, b| GlobalDataBreakdown {
                global_total: acc.global_total + b.global_total,
                constant_pool: acc.constant_pool + b.constant_pool,
                fields: acc.fields + b.fields,
                attributes: acc.attributes + b.attributes,
                interfaces: acc.interfaces + b.interfaces,
                pool: acc.pool.merged(b.pool),
            },
        )
    }

    /// Percent (0–100) of global data in (CPool, Field, Attrib, Intfc) —
    /// Table 8's first four columns.
    #[must_use]
    pub fn section_percentages(&self) -> [f64; 4] {
        let t = f64::from(self.global_total.max(1));
        [
            f64::from(self.constant_pool),
            f64::from(self.fields),
            f64::from(self.attributes),
            f64::from(self.interfaces),
        ]
        .map(|v| 100.0 * v / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClassFileBuilder, MethodData};

    fn sample() -> ClassFile {
        let mut b = ClassFileBuilder::new("x/Y");
        b.source_file("Y.java");
        b.add_static_field("f", "I").unwrap();
        b.pool_mut().string("a literal").unwrap();
        b.pool_mut().intern(Constant::Integer(5)).unwrap();
        b.pool_mut().method_ref("x/Y", "m", "()V").unwrap();
        let mut md = MethodData::new("m", "()V", vec![0xB1, 0xB1, 0xB1]);
        md.line_numbers(vec![(0, 1), (1, 2)]);
        b.add_method(md).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sections_sum_to_total() {
        let c = sample();
        let s = SectionSizes::of(&c);
        assert_eq!(s.total(), c.total_size());
        assert_eq!(s.global_data(), c.global_data_size());
        assert_eq!(s.method_code, 3);
    }

    #[test]
    fn pool_breakdown_total_matches_pool_size() {
        let c = sample();
        let b = ConstantPoolBreakdown::of(&c.constant_pool);
        assert_eq!(b.total(), c.constant_pool.wire_size());
        assert!(b.utf8 > 0 && b.integers > 0 && b.strings > 0 && b.method_refs > 0);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let c = sample();
        let b = ConstantPoolBreakdown::of(&c.constant_pool);
        let sum: f64 = b.percentages().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn global_breakdown_sections_account_for_most_of_global() {
        let c = sample();
        let g = GlobalDataBreakdown::of(&c);
        let explained = g.constant_pool + g.fields + g.attributes + g.interfaces;
        // header + midsection are the only unexplained parts
        assert!(g.global_total - explained <= 30);
    }

    #[test]
    fn merged_aggregates() {
        let c = sample();
        let g1 = GlobalDataBreakdown::of(&c);
        let g2 = GlobalDataBreakdown::of_all([&c, &c]);
        assert_eq!(g2.global_total, 2 * g1.global_total);
        assert_eq!(g2.pool.total(), 2 * g1.pool.total());
    }
}
