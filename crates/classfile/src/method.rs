//! `method_info` structures and the local-data/code size split.
//!
//! The paper partitions every method's bytes into **code** (the raw
//! bytecode) and **local data** (everything else in the `method_info`:
//! header, `Code`-attribute overhead, exception tables, line-number
//! tables). Non-strict transfer ships a method as *local data then code*,
//! closed by a method delimiter (§5).

use crate::attribute::Attribute;
use crate::constant_pool::{ConstantPool, CpIndex};
use crate::error::ClassFileError;

/// One method of a class (`method_info` in the wire format).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodInfo {
    /// Access flags (`ACC_PUBLIC`, `ACC_STATIC`, …).
    pub access_flags: u16,
    /// Constant-pool index of the method name (UTF-8).
    pub name: CpIndex,
    /// Constant-pool index of the method descriptor (UTF-8), e.g. `(I)I`.
    pub descriptor: CpIndex,
    /// Method attributes; at most one should be a `Code` attribute.
    pub attributes: Vec<Attribute>,
}

impl MethodInfo {
    /// Creates a method with no attributes.
    #[must_use]
    pub fn new(access_flags: u16, name: CpIndex, descriptor: CpIndex) -> Self {
        MethodInfo {
            access_flags,
            name,
            descriptor,
            attributes: Vec::new(),
        }
    }

    /// The method's `Code` attribute, if present.
    #[must_use]
    pub fn code_attribute(&self) -> Option<&Attribute> {
        self.attributes
            .iter()
            .find(|a| matches!(a, Attribute::Code { .. }))
    }

    /// Size in bytes of the raw bytecode (zero for abstract/native
    /// methods).
    #[must_use]
    pub fn code_size(&self) -> u32 {
        match self.code_attribute() {
            Some(Attribute::Code { code, .. }) => code.len() as u32,
            _ => 0,
        }
    }

    /// Size in bytes of the method's *local data*: everything in the
    /// `method_info` except the raw bytecode.
    #[must_use]
    pub fn local_data_size(&self) -> u32 {
        self.wire_size() - self.code_size()
    }

    /// Exact serialized size: 8-byte header plus attributes.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        8 + self
            .attributes
            .iter()
            .map(Attribute::wire_size)
            .sum::<u32>()
    }

    /// Appends the wire encoding to `out`.
    ///
    /// # Errors
    ///
    /// Propagates attribute serialization failures.
    pub fn write(&self, cp: &ConstantPool, out: &mut Vec<u8>) -> Result<(), ClassFileError> {
        out.extend_from_slice(&self.access_flags.to_be_bytes());
        out.extend_from_slice(&self.name.0.to_be_bytes());
        out.extend_from_slice(&self.descriptor.0.to_be_bytes());
        out.extend_from_slice(&(self.attributes.len() as u16).to_be_bytes());
        for a in &self.attributes {
            a.write(cp, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::ExceptionTableEntry;

    fn method_with_code(code_len: usize) -> MethodInfo {
        let mut m = MethodInfo::new(0x0009, CpIndex(1), CpIndex(2));
        m.attributes.push(Attribute::Code {
            max_stack: 2,
            max_locals: 2,
            code: vec![0; code_len],
            exception_table: vec![ExceptionTableEntry::default()],
            attributes: vec![Attribute::LineNumberTable {
                entries: vec![(0, 1)],
            }],
        });
        m
    }

    #[test]
    fn local_data_plus_code_is_wire_size() {
        let m = method_with_code(20);
        assert_eq!(m.code_size(), 20);
        assert_eq!(m.local_data_size() + m.code_size(), m.wire_size());
    }

    #[test]
    fn abstract_method_has_no_code() {
        let m = MethodInfo::new(0x0401, CpIndex(1), CpIndex(2));
        assert_eq!(m.code_size(), 0);
        assert_eq!(m.local_data_size(), 8);
    }

    #[test]
    fn write_matches_wire_size() {
        let mut cp = ConstantPool::new();
        cp.utf8("Code").unwrap();
        cp.utf8("LineNumberTable").unwrap();
        let m = method_with_code(3);
        let mut out = Vec::new();
        m.write(&cp, &mut out).unwrap();
        assert_eq!(out.len() as u32, m.wire_size());
    }
}
