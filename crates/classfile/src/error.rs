//! Error type shared across the crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or serializing a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClassFileError {
    /// The constant pool exceeded the 65,535-slot limit imposed by the
    /// two-byte `constant_pool_count` field.
    ConstantPoolOverflow,
    /// A UTF-8 constant was longer than the 65,535-byte limit of the
    /// two-byte length prefix.
    Utf8TooLong(usize),
    /// A constant-pool index referred to a missing or out-of-range slot.
    BadCpIndex(u16),
    /// A constant-pool index referred to an entry of an unexpected kind,
    /// e.g. a `Class` constant whose `name` slot is not `Utf8`.
    WrongConstantKind {
        /// The index that was dereferenced.
        index: u16,
        /// What the referencing entry required there.
        expected: &'static str,
    },
    /// More than 65,535 interfaces, fields, or methods.
    TooManyMembers(&'static str),
    /// An attribute payload exceeded the four-byte length field.
    AttributeTooLong(usize),
    /// A method body exceeded the JVM's 65,535-byte code-length cap.
    CodeTooLong(usize),
}

impl fmt::Display for ClassFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ConstantPoolOverflow => write!(f, "constant pool exceeds 65535 slots"),
            Self::Utf8TooLong(n) => write!(f, "utf8 constant is {n} bytes, limit is 65535"),
            Self::BadCpIndex(i) => write!(f, "constant pool index {i} is invalid"),
            Self::WrongConstantKind { index, expected } => {
                write!(f, "constant pool index {index} is not a {expected} entry")
            }
            Self::TooManyMembers(what) => write!(f, "more than 65535 {what}"),
            Self::AttributeTooLong(n) => {
                write!(f, "attribute payload is {n} bytes, limit is 4294967295")
            }
            Self::CodeTooLong(n) => write!(f, "method code is {n} bytes, limit is 65535"),
        }
    }
}

impl Error for ClassFileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            ClassFileError::ConstantPoolOverflow.to_string(),
            ClassFileError::Utf8TooLong(70_000).to_string(),
            ClassFileError::BadCpIndex(3).to_string(),
            ClassFileError::WrongConstantKind {
                index: 1,
                expected: "Utf8",
            }
            .to_string(),
            ClassFileError::TooManyMembers("fields").to_string(),
            ClassFileError::AttributeTooLong(5).to_string(),
            ClassFileError::CodeTooLong(100_000).to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m:?} should not end with punctuation");
            assert!(
                m.chars().next().unwrap().is_lowercase(),
                "{m:?} should start lowercase"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClassFileError>();
    }
}
