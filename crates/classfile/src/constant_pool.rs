//! The class-file constant pool: the dominant component of a class's
//! *global data* (88–95% in the paper's Table 8).
//!
//! Entries follow the JVM specification's `cp_info` wire format exactly, so
//! [`ConstantPool::wire_size`] is the true number of bytes the pool occupies
//! in a serialized class file. `Long` and `Double` entries occupy **two**
//! slots, as in the spec.

use std::collections::HashMap;
use std::fmt;

use crate::error::ClassFileError;

/// A one-based index into the constant pool, as used by bytecode operands
/// and by other constant-pool entries.
///
/// Index `0` is reserved by the JVM specification to mean "no entry"; this
/// type can represent it (for optional references) but dereferencing it is
/// an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CpIndex(pub u16);

impl CpIndex {
    /// The reserved "no entry" index.
    pub const NONE: CpIndex = CpIndex(0);

    /// Whether this is the reserved null index.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for CpIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<CpIndex> for u16 {
    fn from(i: CpIndex) -> u16 {
        i.0
    }
}

/// The tag byte identifying each `cp_info` kind, with the values from the
/// JVM specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ConstantTag {
    /// `CONSTANT_Utf8` — modified UTF-8 string data.
    Utf8 = 1,
    /// `CONSTANT_Integer`.
    Integer = 3,
    /// `CONSTANT_Float`.
    Float = 4,
    /// `CONSTANT_Long` (occupies two pool slots).
    Long = 5,
    /// `CONSTANT_Double` (occupies two pool slots).
    Double = 6,
    /// `CONSTANT_Class`.
    Class = 7,
    /// `CONSTANT_String`.
    String = 8,
    /// `CONSTANT_Fieldref`.
    FieldRef = 9,
    /// `CONSTANT_Methodref`.
    MethodRef = 10,
    /// `CONSTANT_InterfaceMethodref`.
    InterfaceMethodRef = 11,
    /// `CONSTANT_NameAndType`.
    NameAndType = 12,
}

/// One constant-pool entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// String data in (modified) UTF-8; backs names, descriptors, and
    /// `String` literals. The paper's Table 8 shows Utf8 entries are 35–82%
    /// of the constant pool by size.
    Utf8(String),
    /// A 32-bit integer literal.
    Integer(i32),
    /// A 32-bit float literal.
    Float(f32),
    /// A 64-bit integer literal. Occupies two pool slots.
    Long(i64),
    /// A 64-bit float literal. Occupies two pool slots.
    Double(f64),
    /// A string literal; `utf8` must point at a [`Constant::Utf8`] entry.
    String {
        /// Index of the backing UTF-8 data.
        utf8: CpIndex,
    },
    /// A class reference; `name` must point at a [`Constant::Utf8`] entry
    /// holding the internal class name (e.g. `java/lang/Object`).
    Class {
        /// Index of the class-name UTF-8 entry.
        name: CpIndex,
    },
    /// A field reference.
    FieldRef {
        /// Index of the owning [`Constant::Class`].
        class: CpIndex,
        /// Index of the [`Constant::NameAndType`] describing the field.
        name_and_type: CpIndex,
    },
    /// A method reference.
    MethodRef {
        /// Index of the owning [`Constant::Class`].
        class: CpIndex,
        /// Index of the [`Constant::NameAndType`] describing the method.
        name_and_type: CpIndex,
    },
    /// An interface-method reference.
    InterfaceMethodRef {
        /// Index of the owning [`Constant::Class`].
        class: CpIndex,
        /// Index of the [`Constant::NameAndType`] describing the method.
        name_and_type: CpIndex,
    },
    /// A name/descriptor pair.
    NameAndType {
        /// Index of the name UTF-8 entry.
        name: CpIndex,
        /// Index of the descriptor UTF-8 entry.
        descriptor: CpIndex,
    },
}

impl Constant {
    /// The wire tag for this entry.
    #[must_use]
    pub fn tag(&self) -> ConstantTag {
        match self {
            Constant::Utf8(_) => ConstantTag::Utf8,
            Constant::Integer(_) => ConstantTag::Integer,
            Constant::Float(_) => ConstantTag::Float,
            Constant::Long(_) => ConstantTag::Long,
            Constant::Double(_) => ConstantTag::Double,
            Constant::String { .. } => ConstantTag::String,
            Constant::Class { .. } => ConstantTag::Class,
            Constant::FieldRef { .. } => ConstantTag::FieldRef,
            Constant::MethodRef { .. } => ConstantTag::MethodRef,
            Constant::InterfaceMethodRef { .. } => ConstantTag::InterfaceMethodRef,
            Constant::NameAndType { .. } => ConstantTag::NameAndType,
        }
    }

    /// Exact serialized size in bytes, including the tag byte.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        match self {
            Constant::Utf8(s) => 1 + 2 + s.len() as u32,
            Constant::Integer(_) | Constant::Float(_) => 1 + 4,
            Constant::Long(_) | Constant::Double(_) => 1 + 8,
            Constant::String { .. } | Constant::Class { .. } => 1 + 2,
            Constant::FieldRef { .. }
            | Constant::MethodRef { .. }
            | Constant::InterfaceMethodRef { .. }
            | Constant::NameAndType { .. } => 1 + 4,
        }
    }

    /// Number of constant-pool slots this entry occupies (2 for
    /// `Long`/`Double`, 1 otherwise).
    #[must_use]
    pub fn slots(&self) -> u16 {
        match self {
            Constant::Long(_) | Constant::Double(_) => 2,
            _ => 1,
        }
    }

    /// Append the wire encoding of this entry to `out`.
    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        out.push(self.tag() as u8);
        match self {
            Constant::Utf8(s) => {
                out.extend_from_slice(&(s.len() as u16).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Constant::Integer(v) => out.extend_from_slice(&v.to_be_bytes()),
            Constant::Float(v) => out.extend_from_slice(&v.to_bits().to_be_bytes()),
            Constant::Long(v) => out.extend_from_slice(&v.to_be_bytes()),
            Constant::Double(v) => out.extend_from_slice(&v.to_bits().to_be_bytes()),
            Constant::String { utf8: i } | Constant::Class { name: i } => {
                out.extend_from_slice(&i.0.to_be_bytes());
            }
            Constant::FieldRef {
                class: a,
                name_and_type: b,
            }
            | Constant::MethodRef {
                class: a,
                name_and_type: b,
            }
            | Constant::InterfaceMethodRef {
                class: a,
                name_and_type: b,
            }
            | Constant::NameAndType {
                name: a,
                descriptor: b,
            } => {
                out.extend_from_slice(&a.0.to_be_bytes());
                out.extend_from_slice(&b.0.to_be_bytes());
            }
        }
    }
}

/// A hashable key for interning; `f32`/`f64` are compared by bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum InternKey {
    Utf8(String),
    Integer(i32),
    Float(u32),
    Long(i64),
    Double(u64),
    String(CpIndex),
    Class(CpIndex),
    FieldRef(CpIndex, CpIndex),
    MethodRef(CpIndex, CpIndex),
    InterfaceMethodRef(CpIndex, CpIndex),
    NameAndType(CpIndex, CpIndex),
}

impl InternKey {
    fn of(c: &Constant) -> InternKey {
        match c {
            Constant::Utf8(s) => InternKey::Utf8(s.clone()),
            Constant::Integer(v) => InternKey::Integer(*v),
            Constant::Float(v) => InternKey::Float(v.to_bits()),
            Constant::Long(v) => InternKey::Long(*v),
            Constant::Double(v) => InternKey::Double(v.to_bits()),
            Constant::String { utf8 } => InternKey::String(*utf8),
            Constant::Class { name } => InternKey::Class(*name),
            Constant::FieldRef {
                class,
                name_and_type,
            } => InternKey::FieldRef(*class, *name_and_type),
            Constant::MethodRef {
                class,
                name_and_type,
            } => InternKey::MethodRef(*class, *name_and_type),
            Constant::InterfaceMethodRef {
                class,
                name_and_type,
            } => InternKey::InterfaceMethodRef(*class, *name_and_type),
            Constant::NameAndType { name, descriptor } => {
                InternKey::NameAndType(*name, *descriptor)
            }
        }
    }
}

/// The constant pool of one class file.
///
/// Entries are stored one-based, matching the wire format: the serialized
/// `constant_pool_count` is `slot count + 1` and `Long`/`Double` entries
/// burn an extra phantom slot.
#[derive(Debug, Clone, Default)]
pub struct ConstantPool {
    /// Entries in insertion order. `entries[i]` lives at slot `slot_of[i]`.
    entries: Vec<Constant>,
    /// Slot number of each entry (one-based).
    slots: Vec<u16>,
    /// Next free slot.
    next_slot: u16,
    /// Interning map from entry content to existing index.
    interned: HashMap<InternKey, CpIndex>,
}

impl ConstantPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        ConstantPool {
            entries: Vec::new(),
            slots: Vec::new(),
            next_slot: 1,
            interned: HashMap::new(),
        }
    }

    /// Adds `constant`, reusing an existing identical entry if present.
    ///
    /// # Errors
    ///
    /// Returns [`ClassFileError::ConstantPoolOverflow`] if the pool would
    /// exceed 65,535 slots, and [`ClassFileError::Utf8TooLong`] for UTF-8
    /// entries longer than 65,535 bytes.
    pub fn intern(&mut self, constant: Constant) -> Result<CpIndex, ClassFileError> {
        if let Constant::Utf8(s) = &constant {
            if s.len() > u16::MAX as usize {
                return Err(ClassFileError::Utf8TooLong(s.len()));
            }
        }
        let key = InternKey::of(&constant);
        if let Some(&idx) = self.interned.get(&key) {
            return Ok(idx);
        }
        self.push_new(constant, key)
    }

    /// Adds `constant` without interning (always a fresh slot). Used by the
    /// workload generators to model real-world duplication in constant
    /// pools.
    ///
    /// # Errors
    ///
    /// Same as [`ConstantPool::intern`].
    pub fn push(&mut self, constant: Constant) -> Result<CpIndex, ClassFileError> {
        if let Constant::Utf8(s) = &constant {
            if s.len() > u16::MAX as usize {
                return Err(ClassFileError::Utf8TooLong(s.len()));
            }
        }
        let key = InternKey::of(&constant);
        self.push_new(constant, key)
    }

    fn push_new(&mut self, constant: Constant, key: InternKey) -> Result<CpIndex, ClassFileError> {
        let slots_needed = constant.slots();
        let slot = self.next_slot;
        let end = slot as u32 + slots_needed as u32;
        // `next_slot` doubles as the wire `constant_pool_count`, a u16: an
        // end of 65,536 would silently wrap the count field to zero.
        if end > u16::MAX as u32 {
            return Err(ClassFileError::ConstantPoolOverflow);
        }
        self.next_slot = end as u16;
        let idx = CpIndex(slot);
        self.entries.push(constant);
        self.slots.push(slot);
        self.interned.entry(key).or_insert(idx);
        Ok(idx)
    }

    /// Convenience: intern a UTF-8 entry.
    ///
    /// # Errors
    ///
    /// Same as [`ConstantPool::intern`].
    pub fn utf8(&mut self, s: impl Into<String>) -> Result<CpIndex, ClassFileError> {
        self.intern(Constant::Utf8(s.into()))
    }

    /// Convenience: intern a `Class` entry (and its backing UTF-8 name).
    ///
    /// # Errors
    ///
    /// Same as [`ConstantPool::intern`].
    pub fn class(&mut self, name: &str) -> Result<CpIndex, ClassFileError> {
        let name = self.utf8(name)?;
        self.intern(Constant::Class { name })
    }

    /// Convenience: intern a `NameAndType` entry.
    ///
    /// # Errors
    ///
    /// Same as [`ConstantPool::intern`].
    pub fn name_and_type(
        &mut self,
        name: &str,
        descriptor: &str,
    ) -> Result<CpIndex, ClassFileError> {
        let name = self.utf8(name)?;
        let descriptor = self.utf8(descriptor)?;
        self.intern(Constant::NameAndType { name, descriptor })
    }

    /// Convenience: intern a `MethodRef` (and its class and name-and-type).
    ///
    /// # Errors
    ///
    /// Same as [`ConstantPool::intern`].
    pub fn method_ref(
        &mut self,
        class: &str,
        name: &str,
        descriptor: &str,
    ) -> Result<CpIndex, ClassFileError> {
        let class = self.class(class)?;
        let name_and_type = self.name_and_type(name, descriptor)?;
        self.intern(Constant::MethodRef {
            class,
            name_and_type,
        })
    }

    /// Convenience: intern a `FieldRef` (and its class and name-and-type).
    ///
    /// # Errors
    ///
    /// Same as [`ConstantPool::intern`].
    pub fn field_ref(
        &mut self,
        class: &str,
        name: &str,
        descriptor: &str,
    ) -> Result<CpIndex, ClassFileError> {
        let class = self.class(class)?;
        let name_and_type = self.name_and_type(name, descriptor)?;
        self.intern(Constant::FieldRef {
            class,
            name_and_type,
        })
    }

    /// Convenience: intern a `String` literal (and its backing UTF-8).
    ///
    /// # Errors
    ///
    /// Same as [`ConstantPool::intern`].
    pub fn string(&mut self, s: &str) -> Result<CpIndex, ClassFileError> {
        let utf8 = self.utf8(s)?;
        self.intern(Constant::String { utf8 })
    }

    /// Looks up an entry by index.
    #[must_use]
    pub fn get(&self, index: CpIndex) -> Option<&Constant> {
        if index.is_none() {
            return None;
        }
        // Slot numbers are strictly increasing, so binary search works.
        match self.slots.binary_search(&index.0) {
            Ok(pos) => Some(&self.entries[pos]),
            Err(_) => None,
        }
    }

    /// Resolves a `Utf8` entry to its string content.
    ///
    /// # Errors
    ///
    /// [`ClassFileError::BadCpIndex`] if `index` is invalid,
    /// [`ClassFileError::WrongConstantKind`] if the entry is not `Utf8`.
    pub fn utf8_at(&self, index: CpIndex) -> Result<&str, ClassFileError> {
        match self.get(index) {
            Some(Constant::Utf8(s)) => Ok(s),
            Some(_) => Err(ClassFileError::WrongConstantKind {
                index: index.0,
                expected: "Utf8",
            }),
            None => Err(ClassFileError::BadCpIndex(index.0)),
        }
    }

    /// Iterates over `(index, entry)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (CpIndex, &Constant)> {
        self.slots
            .iter()
            .zip(self.entries.iter())
            .map(|(&s, c)| (CpIndex(s), c))
    }

    /// Number of entries (not slots).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The wire `constant_pool_count` field: number of slots plus one.
    #[must_use]
    pub fn count_field(&self) -> u16 {
        self.next_slot
    }

    /// Exact serialized size of the pool **entries** in bytes (excluding
    /// the two-byte count field, which the class header accounts for).
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        self.entries.iter().map(Constant::wire_size).sum()
    }

    /// Checks that every index embedded in an entry points at an existing
    /// entry of the right kind (the paper's verification "step 2" covers
    /// this structural check of global data).
    ///
    /// # Errors
    ///
    /// [`ClassFileError::BadCpIndex`] or
    /// [`ClassFileError::WrongConstantKind`] on the first violation.
    pub fn validate(&self) -> Result<(), ClassFileError> {
        let expect =
            |idx: CpIndex, pred: fn(&Constant) -> bool, what: &'static str| match self.get(idx) {
                Some(c) if pred(c) => Ok(()),
                Some(_) => Err(ClassFileError::WrongConstantKind {
                    index: idx.0,
                    expected: what,
                }),
                None => Err(ClassFileError::BadCpIndex(idx.0)),
            };
        let is_utf8 = |c: &Constant| matches!(c, Constant::Utf8(_));
        let is_class = |c: &Constant| matches!(c, Constant::Class { .. });
        let is_nat = |c: &Constant| matches!(c, Constant::NameAndType { .. });
        for (_, entry) in self.iter() {
            match entry {
                Constant::String { utf8 } => expect(*utf8, is_utf8, "Utf8")?,
                Constant::Class { name } => expect(*name, is_utf8, "Utf8")?,
                Constant::FieldRef {
                    class,
                    name_and_type,
                }
                | Constant::MethodRef {
                    class,
                    name_and_type,
                }
                | Constant::InterfaceMethodRef {
                    class,
                    name_and_type,
                } => {
                    expect(*class, is_class, "Class")?;
                    expect(*name_and_type, is_nat, "NameAndType")?;
                }
                Constant::NameAndType { name, descriptor } => {
                    expect(*name, is_utf8, "Utf8")?;
                    expect(*descriptor, is_utf8, "Utf8")?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Append the wire encoding of all entries to `out` (entries only; the
    /// count field is written by the class serializer).
    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        for e in &self.entries {
            e.write(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_reuses_identical_entries() {
        let mut cp = ConstantPool::new();
        let a = cp.utf8("hello").unwrap();
        let b = cp.utf8("hello").unwrap();
        assert_eq!(a, b);
        assert_eq!(cp.len(), 1);
    }

    #[test]
    fn push_does_not_dedupe() {
        let mut cp = ConstantPool::new();
        let a = cp.push(Constant::Utf8("x".into())).unwrap();
        let b = cp.push(Constant::Utf8("x".into())).unwrap();
        assert_ne!(a, b);
        assert_eq!(cp.len(), 2);
    }

    #[test]
    fn long_and_double_take_two_slots() {
        let mut cp = ConstantPool::new();
        let l = cp.intern(Constant::Long(1)).unwrap();
        let next = cp.utf8("after").unwrap();
        assert_eq!(l, CpIndex(1));
        assert_eq!(next, CpIndex(3), "long must burn slot 2");
        assert_eq!(cp.count_field(), 4);
    }

    #[test]
    fn wire_sizes_match_spec() {
        assert_eq!(Constant::Utf8("abc".into()).wire_size(), 1 + 2 + 3);
        assert_eq!(Constant::Integer(7).wire_size(), 5);
        assert_eq!(Constant::Float(1.0).wire_size(), 5);
        assert_eq!(Constant::Long(7).wire_size(), 9);
        assert_eq!(Constant::Double(1.0).wire_size(), 9);
        assert_eq!(Constant::String { utf8: CpIndex(1) }.wire_size(), 3);
        assert_eq!(Constant::Class { name: CpIndex(1) }.wire_size(), 3);
        assert_eq!(
            Constant::MethodRef {
                class: CpIndex(1),
                name_and_type: CpIndex(2)
            }
            .wire_size(),
            5
        );
    }

    #[test]
    fn method_ref_builds_transitive_entries() {
        let mut cp = ConstantPool::new();
        let m = cp.method_ref("pkg/A", "foo", "()V").unwrap();
        assert!(matches!(cp.get(m), Some(Constant::MethodRef { .. })));
        // Class + its utf8, NameAndType + 2 utf8, MethodRef = 6 entries.
        assert_eq!(cp.len(), 6);
        cp.validate().unwrap();
    }

    #[test]
    fn validate_rejects_dangling_reference() {
        let mut cp = ConstantPool::new();
        cp.intern(Constant::Class { name: CpIndex(99) }).unwrap();
        assert_eq!(cp.validate(), Err(ClassFileError::BadCpIndex(99)));
    }

    #[test]
    fn validate_rejects_wrong_kind() {
        let mut cp = ConstantPool::new();
        let i = cp.intern(Constant::Integer(3)).unwrap();
        cp.intern(Constant::Class { name: i }).unwrap();
        assert!(matches!(
            cp.validate(),
            Err(ClassFileError::WrongConstantKind { .. })
        ));
    }

    #[test]
    fn get_by_index_respects_phantom_slots() {
        let mut cp = ConstantPool::new();
        cp.intern(Constant::Long(1)).unwrap();
        let s = cp.utf8("s").unwrap();
        assert!(cp.get(CpIndex(2)).is_none(), "phantom slot must be empty");
        assert!(matches!(cp.get(s), Some(Constant::Utf8(_))));
        assert!(cp.get(CpIndex(0)).is_none());
        assert!(cp.get(CpIndex(100)).is_none());
    }

    #[test]
    fn utf8_too_long_rejected() {
        let mut cp = ConstantPool::new();
        let huge = "x".repeat(70_000);
        assert_eq!(cp.utf8(huge), Err(ClassFileError::Utf8TooLong(70_000)));
    }

    #[test]
    fn wire_size_sums_entries() {
        let mut cp = ConstantPool::new();
        cp.utf8("abc").unwrap();
        cp.intern(Constant::Integer(1)).unwrap();
        assert_eq!(cp.wire_size(), 6 + 5);
        let mut bytes = Vec::new();
        cp.write(&mut bytes);
        assert_eq!(bytes.len() as u32, cp.wire_size());
    }
}
