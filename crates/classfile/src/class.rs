//! The top-level `ClassFile` structure and its wire serialization.

use std::fmt;

use crate::attribute::Attribute;
use crate::constant_pool::{ConstantPool, CpIndex};
use crate::error::ClassFileError;
use crate::field::FieldInfo;
use crate::method::MethodInfo;

/// Class access flags (a subset sufficient for the 1998-era format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessFlags(pub u16);

impl AccessFlags {
    /// `ACC_PUBLIC`.
    pub const PUBLIC: u16 = 0x0001;
    /// `ACC_FINAL`.
    pub const FINAL: u16 = 0x0010;
    /// `ACC_SUPER` (always set by 1.1-era compilers).
    pub const SUPER: u16 = 0x0020;
    /// `ACC_INTERFACE`.
    pub const INTERFACE: u16 = 0x0200;
    /// `ACC_ABSTRACT`.
    pub const ABSTRACT: u16 = 0x0400;
    /// `ACC_STATIC` (members).
    pub const STATIC: u16 = 0x0008;
}

impl Default for AccessFlags {
    fn default() -> Self {
        AccessFlags(Self::PUBLIC | Self::SUPER)
    }
}

/// An internal-form class name, e.g. `benchmarks/jess/Rete`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassName(pub String);

impl ClassName {
    /// The simple (unqualified) name after the last `/`.
    #[must_use]
    pub fn simple(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or(&self.0)
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ClassName {
    fn from(s: &str) -> Self {
        ClassName(s.to_owned())
    }
}

impl From<String> for ClassName {
    fn from(s: String) -> Self {
        ClassName(s)
    }
}

/// A complete class file.
///
/// Field order mirrors the wire format. Use [`crate::ClassFileBuilder`] to
/// construct one conveniently.
#[derive(Debug, Clone)]
pub struct ClassFile {
    /// Minor version (JDK 1.1 emitted 45.3).
    pub minor_version: u16,
    /// Major version.
    pub major_version: u16,
    /// The constant pool.
    pub constant_pool: ConstantPool,
    /// Class access flags.
    pub access_flags: AccessFlags,
    /// Constant-pool index of this class's `Class` entry.
    pub this_class: CpIndex,
    /// Constant-pool index of the superclass, or `CpIndex::NONE` for
    /// `java/lang/Object`.
    pub super_class: CpIndex,
    /// Implemented interfaces (constant-pool `Class` indices).
    pub interfaces: Vec<CpIndex>,
    /// Fields (global data).
    pub fields: Vec<FieldInfo>,
    /// Methods, in file order. The order is what the paper's restructuring
    /// permutes.
    pub methods: Vec<MethodInfo>,
    /// Class-level attributes (global data; typically `SourceFile`).
    pub attributes: Vec<Attribute>,
}

/// The class-file magic number.
pub const MAGIC: u32 = 0xCAFE_BABE;

impl ClassFile {
    /// The class's internal name, resolved through the pool.
    ///
    /// # Errors
    ///
    /// Fails if `this_class` does not resolve to a `Class`→`Utf8` chain.
    pub fn name(&self) -> Result<ClassName, ClassFileError> {
        match self.constant_pool.get(self.this_class) {
            Some(crate::constant_pool::Constant::Class { name }) => {
                Ok(ClassName(self.constant_pool.utf8_at(*name)?.to_owned()))
            }
            Some(_) => Err(ClassFileError::WrongConstantKind {
                index: self.this_class.0,
                expected: "Class",
            }),
            None => Err(ClassFileError::BadCpIndex(self.this_class.0)),
        }
    }

    /// Resolves a method's name through the pool.
    ///
    /// # Errors
    ///
    /// Fails if the name index is not a UTF-8 entry.
    pub fn method_name(&self, index: usize) -> Result<&str, ClassFileError> {
        self.constant_pool.utf8_at(self.methods[index].name)
    }

    /// Size in bytes of the fixed header: magic, versions, and the
    /// constant-pool count field.
    #[must_use]
    pub fn header_size(&self) -> u32 {
        4 + 2 + 2 + 2
    }

    /// Size in bytes of the post-pool class metadata: access flags,
    /// this/super, interface table (with count), and the field/method/
    /// attribute count fields.
    #[must_use]
    pub fn midsection_size(&self) -> u32 {
        2 + 2 + 2 + 2 + 2 * self.interfaces.len() as u32 + 2 + 2 + 2
    }

    /// Size of the interface table itself (count field + entries).
    #[must_use]
    pub fn interfaces_size(&self) -> u32 {
        2 + 2 * self.interfaces.len() as u32
    }

    /// Size of all fields.
    #[must_use]
    pub fn fields_size(&self) -> u32 {
        self.fields.iter().map(FieldInfo::wire_size).sum()
    }

    /// Size of all class-level attributes.
    #[must_use]
    pub fn class_attributes_size(&self) -> u32 {
        self.attributes.iter().map(Attribute::wire_size).sum()
    }

    /// Size of all methods (local data + code).
    #[must_use]
    pub fn methods_size(&self) -> u32 {
        self.methods.iter().map(MethodInfo::wire_size).sum()
    }

    /// The paper's **global data**: everything that must arrive before any
    /// method of the class can execute — header, constant pool, flags,
    /// interfaces, fields, class attributes, and all the count fields.
    #[must_use]
    pub fn global_data_size(&self) -> u32 {
        self.header_size()
            + self.constant_pool.wire_size()
            + self.midsection_size()
            + self.fields_size()
            + self.class_attributes_size()
    }

    /// Total serialized size of the class file.
    #[must_use]
    pub fn total_size(&self) -> u32 {
        self.global_data_size() + self.methods_size()
    }

    /// Serializes the class to its exact wire format.
    ///
    /// Note the produced layout places methods *after* all global data,
    /// matching both the real format and the paper's transfer model
    /// (global data first, then each method's local data and code).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_size() as usize);
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.extend_from_slice(&self.minor_version.to_be_bytes());
        out.extend_from_slice(&self.major_version.to_be_bytes());
        out.extend_from_slice(&self.constant_pool.count_field().to_be_bytes());
        self.constant_pool.write(&mut out);
        out.extend_from_slice(&self.access_flags.0.to_be_bytes());
        out.extend_from_slice(&self.this_class.0.to_be_bytes());
        out.extend_from_slice(&self.super_class.0.to_be_bytes());
        out.extend_from_slice(&(self.interfaces.len() as u16).to_be_bytes());
        for i in &self.interfaces {
            out.extend_from_slice(&i.0.to_be_bytes());
        }
        out.extend_from_slice(&(self.fields.len() as u16).to_be_bytes());
        for f in &self.fields {
            f.write(&self.constant_pool, &mut out)
                .expect("builder interned all names");
        }
        out.extend_from_slice(&(self.methods.len() as u16).to_be_bytes());
        for m in &self.methods {
            m.write(&self.constant_pool, &mut out)
                .expect("builder interned all names");
        }
        out.extend_from_slice(&(self.attributes.len() as u16).to_be_bytes());
        for a in &self.attributes {
            a.write(&self.constant_pool, &mut out)
                .expect("builder interned all names");
        }
        out
    }

    /// Validates structural integrity: pool cross-references, member name
    /// and descriptor indices. This models steps 1–2 of the JVM's
    /// five-step verification (§3.1.1), the part that can run as soon as
    /// the global data has transferred.
    ///
    /// # Errors
    ///
    /// The first structural violation found.
    pub fn validate(&self) -> Result<(), ClassFileError> {
        self.constant_pool.validate()?;
        self.name()?;
        for f in &self.fields {
            self.constant_pool.utf8_at(f.name)?;
            self.constant_pool.utf8_at(f.descriptor)?;
        }
        for m in &self.methods {
            self.constant_pool.utf8_at(m.name)?;
            self.constant_pool.utf8_at(m.descriptor)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClassFileBuilder, MethodData};

    fn sample() -> ClassFile {
        let mut b = ClassFileBuilder::new("pkg/Sample");
        b.add_method(MethodData::new("main", "()V", vec![0xB1]))
            .unwrap();
        b.add_method(MethodData::new("foo", "(I)I", vec![0x1A, 0xAC]))
            .unwrap();
        b.add_static_field("counter", "I").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn to_bytes_length_equals_total_size() {
        let c = sample();
        assert_eq!(c.to_bytes().len() as u32, c.total_size());
    }

    #[test]
    fn global_plus_methods_is_total() {
        let c = sample();
        assert_eq!(c.global_data_size() + c.methods_size(), c.total_size());
    }

    #[test]
    fn magic_and_versions_lead_the_file() {
        let c = sample();
        let bytes = c.to_bytes();
        assert_eq!(&bytes[0..4], &[0xCA, 0xFE, 0xBA, 0xBE]);
        assert_eq!(u16::from_be_bytes([bytes[6], bytes[7]]), 45);
    }

    #[test]
    fn name_resolves() {
        let c = sample();
        assert_eq!(c.name().unwrap().0, "pkg/Sample");
        assert_eq!(c.name().unwrap().simple(), "Sample");
    }

    #[test]
    fn validate_passes_for_builder_output() {
        sample().validate().unwrap();
    }

    #[test]
    fn method_name_resolves() {
        let c = sample();
        assert_eq!(c.method_name(0).unwrap(), "main");
        assert_eq!(c.method_name(1).unwrap(), "foo");
    }
}
